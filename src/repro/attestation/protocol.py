"""Wire messages of the attestation protocol (paper Figure 2).

The verifier sends a challenge ``(id_S, i, N)`` naming the attested program,
supplying the program input ``i`` and a fresh nonce ``N``.  The prover runs
``S`` under the requested attestation scheme and answers with the measured
path ``P = (A, L)`` and the report signature ``R = sign(P || N; sk)``.

Both messages carry a ``scheme`` field (the registry name of the attestation
backend, see :mod:`repro.schemes`) so one wire format serves LO-FAT, C-FLAT
and static attestation alike, and both round-trip bidirectionally:
``to_bytes`` / ``from_bytes`` are byte-exact inverses, ``to_json`` /
``from_json`` carry the same content for logs and transcripts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lofat.metadata import LazyLoopMetadata, LoopMetadata

#: Hard caps of the wire format's length fields.
MAX_NONCE_BYTES = 0xFFFF
MAX_PROGRAM_ID_BYTES = 0xFFFF
MAX_SCHEME_BYTES = 0xFF


def _read_block(blob: bytes, offset: int, width: int) -> Tuple[bytes, int]:
    """Read a length-prefixed block (``width``-byte little-endian length)."""
    length = int.from_bytes(blob[offset:offset + width], "little")
    offset += width
    block = blob[offset:offset + length]
    if len(block) != length:
        raise ValueError("truncated message: expected %d more bytes" % length)
    return block, offset + length


@dataclass(frozen=True)
class AttestationChallenge:
    """Verifier -> prover: attest ``program_id`` on ``inputs`` under ``scheme``."""

    program_id: str
    inputs: Tuple[int, ...]
    nonce: bytes
    scheme: str = "lofat"

    def __post_init__(self) -> None:
        if len(self.nonce) > MAX_NONCE_BYTES:
            raise ValueError(
                "nonce of %d bytes exceeds the wire format's %d-byte limit"
                % (len(self.nonce), MAX_NONCE_BYTES)
            )

    def to_bytes(self) -> bytes:
        """Canonical serialisation (transcripts, logging, tests)."""
        scheme = self.scheme.encode("utf-8")
        if len(scheme) > MAX_SCHEME_BYTES:
            raise ValueError("scheme name too long for the wire format")
        program = self.program_id.encode("utf-8")
        if len(program) > MAX_PROGRAM_ID_BYTES:
            raise ValueError("program id too long for the wire format")
        blob = len(scheme).to_bytes(1, "little") + scheme
        blob += len(program).to_bytes(2, "little") + program
        blob += len(self.inputs).to_bytes(2, "little")
        for value in self.inputs:
            blob += (value & 0xFFFFFFFF).to_bytes(4, "little")
        blob += len(self.nonce).to_bytes(2, "little") + self.nonce
        return blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AttestationChallenge":
        """Deserialise (inverse of :meth:`to_bytes`; byte-exact round trip).

        Input values come back as the unsigned 32-bit words that were put on
        the wire.
        """
        scheme, offset = _read_block(blob, 0, 1)
        program, offset = _read_block(blob, offset, 2)
        count = int.from_bytes(blob[offset:offset + 2], "little")
        offset += 2
        inputs = []
        for _ in range(count):
            word = blob[offset:offset + 4]
            if len(word) != 4:
                raise ValueError("truncated challenge inputs")
            inputs.append(int.from_bytes(word, "little"))
            offset += 4
        nonce, offset = _read_block(blob, offset, 2)
        if offset != len(blob):
            raise ValueError("trailing bytes after challenge")
        return cls(
            program_id=program.decode("utf-8"),
            inputs=tuple(inputs),
            nonce=nonce,
            scheme=scheme.decode("utf-8"),
        )

    def to_json(self) -> str:
        """JSON rendering (logs and transcripts; inverse is :meth:`from_json`)."""
        return json.dumps({
            "scheme": self.scheme,
            "program_id": self.program_id,
            "inputs": list(self.inputs),
            "nonce": self.nonce.hex(),
        }, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "AttestationChallenge":
        document = json.loads(payload)
        return cls(
            program_id=str(document["program_id"]),
            inputs=tuple(int(v) for v in document["inputs"]),
            nonce=bytes.fromhex(document["nonce"]),
            scheme=str(document.get("scheme", "lofat")),
        )


@dataclass
class AttestationReport:
    """Prover -> verifier: the measured path ``P = (A, L)`` plus signature ``R``.

    Attributes:
        program_id: identifier of the attested program (echoed from the
            challenge).
        measurement: the scheme's cumulative measurement ``A`` (64 bytes for
            the control-flow hashes, 32 for the static image hash).
        metadata: the auxiliary metadata ``L`` (empty for schemes without
            loop compression).
        nonce: the challenge nonce the report responds to.
        signature: ``R = sign(A || L || N; sk)``.
        exit_code: program exit status (reported for operational visibility;
            not part of the signed payload in the paper's protocol).
        output: program output (idem).
        scheme: registry name of the scheme that produced the measurement.
    """

    program_id: str
    measurement: bytes
    metadata: LoopMetadata
    nonce: bytes
    signature: bytes
    exit_code: int = 0
    output: str = ""
    scheme: str = "lofat"

    @property
    def payload(self) -> bytes:
        """The byte string covered by the signature: ``A || L``."""
        return self.measurement + self.metadata.to_bytes()

    @property
    def size_bytes(self) -> int:
        """Approximate report size on the wire (measurement + L + signature)."""
        return len(self.measurement) + self.metadata.size_bytes + len(self.signature)

    def to_bytes(self) -> bytes:
        """Canonical serialisation (byte-exact inverse: :meth:`from_bytes`)."""
        scheme = self.scheme.encode("utf-8")
        if len(scheme) > MAX_SCHEME_BYTES:
            raise ValueError("scheme name too long for the wire format")
        program = self.program_id.encode("utf-8")
        if len(program) > MAX_PROGRAM_ID_BYTES:
            raise ValueError("program id too long for the wire format")
        if len(self.nonce) > MAX_NONCE_BYTES:
            raise ValueError("nonce too long for the wire format")
        metadata = self.metadata.to_bytes()
        output = self.output.encode("utf-8")
        blob = len(scheme).to_bytes(1, "little") + scheme
        blob += len(program).to_bytes(2, "little") + program
        blob += len(self.measurement).to_bytes(2, "little") + self.measurement
        blob += len(metadata).to_bytes(4, "little") + metadata
        blob += len(self.nonce).to_bytes(2, "little") + self.nonce
        blob += len(self.signature).to_bytes(2, "little") + self.signature
        blob += (self.exit_code & 0xFFFFFFFF).to_bytes(4, "little")
        blob += len(output).to_bytes(4, "little") + output
        return blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AttestationReport":
        """Deserialise (inverse of :meth:`to_bytes`)."""
        scheme, offset = _read_block(blob, 0, 1)
        program, offset = _read_block(blob, offset, 2)
        measurement, offset = _read_block(blob, offset, 2)
        metadata_bytes, offset = _read_block(blob, offset, 4)
        # Framing-validated now (malformed metadata raises here, as the wire
        # contract promises); the record objects materialise only if a
        # consumer iterates them -- the verifier's accept path never does.
        metadata = LazyLoopMetadata(metadata_bytes)
        nonce, offset = _read_block(blob, offset, 2)
        signature, offset = _read_block(blob, offset, 2)
        exit_word = int.from_bytes(blob[offset:offset + 4], "little")
        exit_code = exit_word - (1 << 32) if exit_word >= (1 << 31) else exit_word
        offset += 4
        output, offset = _read_block(blob, offset, 4)
        if offset != len(blob):
            raise ValueError("trailing bytes after report")
        return cls(
            program_id=program.decode("utf-8"),
            measurement=measurement,
            metadata=metadata,
            nonce=nonce,
            signature=signature,
            exit_code=exit_code,
            output=output.decode("utf-8"),
            scheme=scheme.decode("utf-8"),
        )

    def to_json(self) -> str:
        """JSON rendering (logs and transcripts; inverse is :meth:`from_json`)."""
        return json.dumps({
            "scheme": self.scheme,
            "program_id": self.program_id,
            "measurement": self.measurement.hex(),
            "metadata": self.metadata.to_bytes().hex(),
            "nonce": self.nonce.hex(),
            "signature": self.signature.hex(),
            "exit_code": self.exit_code,
            "output": self.output,
        }, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "AttestationReport":
        document = json.loads(payload)
        return cls(
            program_id=str(document["program_id"]),
            measurement=bytes.fromhex(document["measurement"]),
            metadata=LoopMetadata.from_bytes(bytes.fromhex(document["metadata"])),
            nonce=bytes.fromhex(document["nonce"]),
            signature=bytes.fromhex(document["signature"]),
            exit_code=int(document.get("exit_code", 0)),
            output=str(document.get("output", "")),
            scheme=str(document.get("scheme", "lofat")),
        )

    def describe(self) -> dict:
        """Summary dictionary used by reports and the protocol experiment."""
        return {
            "scheme": self.scheme,
            "program_id": self.program_id,
            "measurement": self.measurement.hex()[:32] + "...",
            "metadata_bytes": self.metadata.size_bytes,
            "loop_executions": len(self.metadata),
            "report_bytes": self.size_bytes,
            "exit_code": self.exit_code,
        }
