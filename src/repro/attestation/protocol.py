"""Wire messages of the attestation protocol (paper Figure 2).

The verifier sends a challenge ``(id_S, i, N)`` naming the attested program,
supplying the program input ``i`` and a fresh nonce ``N``.  The prover runs
``S`` under LO-FAT and answers with the program path ``P = (A, L)`` and the
report signature ``R = sign(P || N; sk)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lofat.metadata import LoopMetadata


@dataclass(frozen=True)
class AttestationChallenge:
    """Verifier -> prover: attest program ``program_id`` on input ``inputs``."""

    program_id: str
    inputs: Tuple[int, ...]
    nonce: bytes

    def to_bytes(self) -> bytes:
        """Canonical serialisation (useful for transcripts and logging)."""
        blob = self.program_id.encode("utf-8")
        blob = len(blob).to_bytes(2, "little") + blob
        blob += len(self.inputs).to_bytes(2, "little")
        for value in self.inputs:
            blob += (value & 0xFFFFFFFF).to_bytes(4, "little")
        blob += len(self.nonce).to_bytes(1, "little") + self.nonce
        return blob


@dataclass
class AttestationReport:
    """Prover -> verifier: the measured path ``P = (A, L)`` plus signature ``R``.

    Attributes:
        program_id: identifier of the attested program (echoed from the
            challenge).
        measurement: the cumulative SHA3-512 hash ``A`` (64 bytes).
        metadata: the loop metadata ``L``.
        nonce: the challenge nonce the report responds to.
        signature: ``R = sign(A || L || N; sk)``.
        exit_code: program exit status (reported for operational visibility;
            not part of the signed payload in the paper's protocol).
        output: program output (idem).
    """

    program_id: str
    measurement: bytes
    metadata: LoopMetadata
    nonce: bytes
    signature: bytes
    exit_code: int = 0
    output: str = ""

    @property
    def payload(self) -> bytes:
        """The byte string covered by the signature: ``A || L``."""
        return self.measurement + self.metadata.to_bytes()

    @property
    def size_bytes(self) -> int:
        """Approximate report size on the wire (measurement + L + signature)."""
        return len(self.measurement) + self.metadata.size_bytes + len(self.signature)

    def describe(self) -> dict:
        """Summary dictionary used by reports and the protocol experiment."""
        return {
            "program_id": self.program_id,
            "measurement": self.measurement.hex()[:32] + "...",
            "metadata_bytes": self.metadata.size_bytes,
            "loop_executions": len(self.metadata),
            "report_bytes": self.size_bytes,
            "exit_code": self.exit_code,
        }
