"""The verifier.

Per the protocol (paper §3), the verifier:

1. performs a one-time offline analysis of the program (CFG + loop
   information),
2. issues challenges containing the program input ``i``, a fresh nonce and
   the attestation scheme the prover must answer with,
3. on receiving the report, checks the signature, the nonce and that the
   report's scheme matches the challenged one (fail closed on mismatch), and
4. checks that the reported path ``P = (A, L)`` corresponds to a valid
   execution of the program's CFG under input ``i``.

Step 4 is implemented in three complementary modes:

* **Golden replay** (the default): the verifier, who owns the program binary
  and chose the input, re-measures the program through the challenged
  scheme's own :meth:`reference_measurement` and compares the resulting
  ``(A, L)``.  This is the strongest check and mirrors how C-FLAT/LO-FAT
  verifiers are evaluated in practice (known-input attestation).
* **Measurement database**: expected measurements for a set of inputs are
  precomputed and looked up; useful when the verifier wants O(1) verification
  cost online.  Keys include the scheme name, so LO-FAT and C-FLAT references
  for the same (program, input) never collide.
* **Structural CFG checks**: independent of the input, the metadata ``L`` is
  validated against the static CFG (every reported loop entry must be the
  target of a backward edge; path encodings must be consistent with the loop
  body).  These checks catch malformed metadata and are also applied in the
  two modes above; schemes without loop metadata pass them trivially.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attestation.crypto import fresh_nonce, verify_signature
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cfg.builder import ControlFlowGraph, build_cfg
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.paths import PathChecker
from repro.cpu.core import CpuConfig
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.lofat.metadata import LoopMetadata
from repro.schemes import get_scheme
# Re-exported for backward compatibility: these historically lived here.
from repro.schemes.base import VerdictReason, VerificationResult  # noqa: F401


@dataclass
class ProgramKnowledge:
    """Everything the verifier precomputes offline for one program."""

    program: Program
    cfg: ControlFlowGraph
    loops: List[NaturalLoop]
    path_checker: PathChecker
    #: Addresses that are plausible run-time loop entries: targets of
    #: backward CFG edges (the heuristic LO-FAT applies in hardware).
    backward_edge_targets: frozenset
    #: Every instruction address of the program; precomputed once so the
    #: per-report structural metadata checks are set lookups, not a fresh
    #: set build per verification (the attestation server verifies
    #: thousands of reports against one analysis).
    instruction_addresses: frozenset = frozenset()


#: Process-wide cache of offline program analyses, keyed by program digest.
#: The CFG, loop structure and path checker are read-only once built, so
#: every Verifier instance in this process (and every campaign run) shares
#: one analysis per distinct binary instead of re-deriving it.
_KNOWLEDGE_CACHE: Dict[str, ProgramKnowledge] = {}

#: Growth bound for the knowledge cache: a long-lived service registering a
#: stream of distinct binaries must not accumulate analyses forever.
_KNOWLEDGE_CACHE_MAX = 64

#: Growth bound for a verifier's memoised structural verdicts: benign
#: metadata repeats, attack metadata is mostly distinct, so the cache is
#: cleared wholesale when a flood of distinct L values fills it.
_STRUCTURAL_CACHE_MAX = 4096

#: Guards the evict-then-insert sequence below.  Reads stay lock-free (a
#: dict get is atomic under the GIL and the cached analyses are immutable);
#: the lock only keeps two threads from interleaving the eviction with an
#: insert, which could otherwise drop a just-added entry.  The attestation
#: server computes cold references on executor threads, so this cache is
#: the one piece of verifier state reachable from more than one thread.
_KNOWLEDGE_CACHE_LOCK = threading.Lock()


def clear_knowledge_cache() -> None:
    """Drop all cached offline analyses (used by tests and benchmarks)."""
    _KNOWLEDGE_CACHE.clear()


class Verifier:
    """The remote verifier V (scheme-agnostic)."""

    def __init__(
        self,
        lofat_config: Optional[LoFatConfig] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.lofat_config = lofat_config or LoFatConfig()
        self.cpu_config = cpu_config
        #: Per-scheme configurations the verifier replays references with;
        #: the historical ``lofat_config`` argument seeds the ``lofat`` entry.
        self._scheme_configs: Dict[str, object] = {"lofat": self.lofat_config}
        self._programs: Dict[str, ProgramKnowledge] = {}
        self._verification_keys: Dict[str, bytes] = {}
        self._outstanding_nonces: Dict[bytes, AttestationChallenge] = {}
        self._used_nonces: set = set()
        #: (scheme, program_id, inputs) -> (A, serialized L).
        self._measurement_db: Dict[
            Tuple[str, str, Tuple[int, ...]], Tuple[bytes, bytes]
        ] = {}
        #: Memoised structural verdicts keyed by (program_id, serialized L).
        #: A standing verifier sees the same benign metadata thousands of
        #: times; the CFG checks are pure in the program analysis and the
        #: metadata bytes, so each distinct L is checked once.
        self._structural_cache: Dict[Tuple[str, bytes], VerificationResult] = {}

    # ------------------------------------------------------- provisioning
    def register_program(self, program_id: str, program: Program) -> ProgramKnowledge:
        """Offline pre-processing: build and store the program's CFG.

        The analysis is cached process-wide by program digest, so registering
        the same binary again (under any id, on any Verifier instance) is an
        O(lookup) operation.
        """
        knowledge = _KNOWLEDGE_CACHE.get(program.digest)
        if knowledge is None:
            cfg = build_cfg(program)
            loops = find_natural_loops(cfg)
            backward_targets = set()
            for block in cfg.blocks:
                terminator = block.terminator
                if terminator.is_conditional_branch or terminator.is_direct_jump:
                    target = terminator.address + terminator.imm
                    if target <= terminator.address:
                        backward_targets.add(target)
            knowledge = ProgramKnowledge(
                program=program,
                cfg=cfg,
                loops=loops,
                path_checker=PathChecker(cfg),
                backward_edge_targets=frozenset(backward_targets),
                instruction_addresses=frozenset(
                    instr.address for instr in program.instructions
                ),
            )
            with _KNOWLEDGE_CACHE_LOCK:
                if len(_KNOWLEDGE_CACHE) >= _KNOWLEDGE_CACHE_MAX:
                    _KNOWLEDGE_CACHE.clear()
                _KNOWLEDGE_CACHE[program.digest] = knowledge
        self._programs[program_id] = knowledge
        return knowledge

    def register_device_key(self, device_id: str, verification_key: bytes) -> None:
        """Provision the verification key of a prover device."""
        self._verification_keys[device_id] = verification_key

    def clear_device_keys(self) -> None:
        """Drop all provisioned device keys (fail closed until re-provisioned).

        The attestation server bounds its wire-provisioned device table
        with this; reports from a dropped device are rejected with
        ``BAD_SIGNATURE`` until its key is registered again.
        """
        self._verification_keys.clear()

    def configure_scheme(self, scheme: str, config=None) -> None:
        """Provision the configuration used when replaying ``scheme`` references."""
        backend = get_scheme(scheme)
        if config is None or isinstance(config, dict):
            config = backend.configure(config or {})
        self._scheme_configs[scheme] = config
        if scheme == "lofat":
            self.lofat_config = config

    def scheme_config(self, scheme: str):
        """The configuration this verifier replays ``scheme`` references with."""
        config = self._scheme_configs.get(scheme)
        if config is None:
            config = get_scheme(scheme).default_config()
            self._scheme_configs[scheme] = config
        return config

    def precompute_measurement(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ) -> Tuple[bytes, bytes]:
        """Populate the measurement database for (scheme, program, input).

        Returns the expected ``(A, serialized L)`` pair.
        """
        measurement = self._reference_measurement(program_id, inputs, scheme)
        key = (scheme, program_id, tuple(inputs))
        self._measurement_db[key] = (
            measurement.measurement, measurement.metadata.to_bytes(),
        )
        return self._measurement_db[key]

    def seed_measurement(
        self,
        program_id: str,
        inputs: Sequence[int],
        measurement: bytes,
        metadata_bytes: bytes,
        scheme: str = "lofat",
    ) -> None:
        """Install an externally computed reference ``(A, serialized L)``.

        The campaign service uses this to share one
        :class:`repro.service.MeasurementDatabase` across verifier instances:
        the database computes (or looks up) the expected measurement keyed by
        scheme, program digest and configuration, then seeds it here so
        :meth:`verify` in ``"database"`` mode is a pure lookup.
        """
        self._measurement_db[(scheme, program_id, tuple(inputs))] = (
            measurement,
            metadata_bytes,
        )

    def export_measurement_database(self) -> str:
        """Serialise the measurement database to JSON (for persistence).

        The database contains only public reference values (expected A and L
        per known input), so it can be stored or shared freely.
        """
        entries = [
            {
                "scheme": scheme,
                "program_id": program_id,
                "inputs": list(inputs),
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (scheme, program_id, inputs), (measurement, metadata)
            in sorted(self._measurement_db.items())
        ]
        return json.dumps({"version": 1, "entries": entries}, indent=2)

    def import_measurement_database(self, payload: str) -> int:
        """Load a database previously produced by :meth:`export_measurement_database`.

        Returns the number of imported entries.  Entries for unregistered
        programs are imported as well (the program may be registered later);
        existing entries with the same key are overwritten.  Entries written
        before the scheme field existed default to ``"lofat"``.
        """
        document = json.loads(payload)
        if document.get("version") != 1:
            raise ValueError("unsupported measurement database version")
        count = 0
        for entry in document.get("entries", []):
            key = (
                str(entry.get("scheme", "lofat")),
                entry["program_id"],
                tuple(int(v) for v in entry["inputs"]),
            )
            self._measurement_db[key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
            count += 1
        return count

    # ----------------------------------------------------------- protocol
    def challenge(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ) -> AttestationChallenge:
        """Create a fresh challenge for ``program_id`` with input ``inputs``.

        ``scheme`` names the attestation backend the prover must answer with
        (resolved against the registry so typos fail here, not at verify
        time).
        """
        if program_id not in self._programs:
            raise KeyError("program %r is not registered" % program_id)
        get_scheme(scheme)  # fail fast on unknown schemes
        nonce = fresh_nonce()
        challenge = AttestationChallenge(
            program_id=program_id, inputs=tuple(inputs), nonce=nonce,
            scheme=scheme,
        )
        self._outstanding_nonces[nonce] = challenge
        return challenge

    def outstanding_challenge(
        self, nonce: bytes
    ) -> Optional[AttestationChallenge]:
        """The challenge an unanswered ``nonce`` belongs to, or None.

        The attestation server uses this to find what a report answers for
        (and thus which reference to warm) without reaching into the nonce
        table; it does not consume the nonce.
        """
        return self._outstanding_nonces.get(nonce)

    def discard_challenge(self, nonce: bytes) -> bool:
        """Withdraw an outstanding challenge (fail closed).

        Connection-oriented verifiers call this when a prover disconnects
        with challenges unanswered: the nonce is moved to the used set, so a
        report answering it later is rejected as ``NONCE_REUSED`` rather
        than lingering verifiable forever.  Returns True when a challenge
        was actually withdrawn.
        """
        challenge = self._outstanding_nonces.pop(nonce, None)
        if challenge is None:
            return False
        self._used_nonces.add(nonce)
        return True

    def verify(
        self,
        report: AttestationReport,
        device_id: str = "prover-0",
        mode: str = "replay",
    ) -> VerificationResult:
        """Check an attestation report.

        ``mode`` selects how the measurement itself is validated:
        ``"replay"`` (golden replay), ``"database"`` (precomputed
        measurements) or ``"structural"`` (CFG checks only).
        """
        if report.program_id not in self._programs:
            return VerificationResult(False, VerdictReason.UNKNOWN_PROGRAM)

        challenge = self._outstanding_nonces.get(report.nonce)
        if challenge is None:
            reason = (
                VerdictReason.NONCE_REUSED
                if report.nonce in self._used_nonces
                else VerdictReason.UNKNOWN_NONCE
            )
            return VerificationResult(False, reason)

        # Fail closed on binding disagreements before any measurement
        # comparison: the report must answer for the challenged program (the
        # program id is not covered by the signature, so a compromised
        # prover could otherwise answer a challenge on A with a valid run of
        # B) and under the challenged scheme; a report naming a scheme this
        # verifier does not know is rejected too.
        if report.program_id != challenge.program_id:
            return VerificationResult(
                False, VerdictReason.PROGRAM_MISMATCH,
                "challenged program %r but report answers for %r"
                % (challenge.program_id, report.program_id),
            )
        if report.scheme != challenge.scheme:
            return VerificationResult(
                False, VerdictReason.SCHEME_MISMATCH,
                "challenged scheme %r but report carries %r"
                % (challenge.scheme, report.scheme),
            )
        try:
            scheme = get_scheme(report.scheme)
        except KeyError:
            return VerificationResult(
                False, VerdictReason.SCHEME_MISMATCH,
                "report names unknown scheme %r" % report.scheme,
            )

        key = self._verification_keys.get(device_id)
        if key is None or not verify_signature(
            report.payload, report.nonce, report.signature, key
        ):
            return VerificationResult(False, VerdictReason.BAD_SIGNATURE)

        # The nonce is consumed whether or not the path checks pass: replaying
        # the same report later must be rejected as stale.
        del self._outstanding_nonces[report.nonce]
        self._used_nonces.add(report.nonce)

        cache_key = (report.program_id, report.metadata.to_bytes())
        structural = self._structural_cache.get(cache_key)
        if structural is None:
            structural = self._check_metadata_structure(
                report.program_id, report.metadata)
            if len(self._structural_cache) >= _STRUCTURAL_CACHE_MAX:
                self._structural_cache.clear()
            self._structural_cache[cache_key] = structural
        if not structural.accepted:
            return structural

        if mode == "structural":
            return VerificationResult(True, VerdictReason.ACCEPTED,
                                      "structural checks only")
        if mode == "database":
            expected = self._measurement_db.get(
                (report.scheme, report.program_id, tuple(challenge.inputs))
            )
            if expected is None:
                return VerificationResult(False, VerdictReason.NO_REFERENCE)
            return scheme.verify(report, expected)

        # Golden replay through the scheme's own reference measurement.
        reference = self._reference_measurement(
            report.program_id, challenge.inputs, report.scheme
        )
        return scheme.verify(
            report, (reference.measurement, reference.metadata.to_bytes())
        )

    # -------------------------------------------------------------- internals
    def _reference_measurement(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ):
        """Re-measure the program through the scheme's trusted reference.

        For execution-dependent schemes this replays the program in the
        verifier's simulator, streaming records straight into a fresh session
        (no trace accumulation); repeat replays of the same binary reuse the
        decoded-instruction cache.  Returns a
        :class:`repro.schemes.SchemeMeasurement`.
        """
        knowledge = self._programs[program_id]
        backend = get_scheme(scheme)
        return backend.reference_measurement(
            knowledge.program,
            inputs,
            config=self.scheme_config(scheme),
            cpu_config=self.cpu_config,
        )

    def _check_metadata_structure(
        self, program_id: str, metadata: LoopMetadata
    ) -> VerificationResult:
        """Validate the loop metadata against the static CFG.

        Schemes that report no loop metadata (C-FLAT as modelled here,
        static attestation) pass vacuously.
        """
        knowledge = self._programs[program_id]
        instruction_addresses = knowledge.instruction_addresses
        try:
            records = list(metadata)
        except ValueError as error:
            # Lazily deserialised metadata surfaces parse failures here;
            # fail closed exactly like any other malformed L.
            return VerificationResult(
                False, VerdictReason.METADATA_CFG_VIOLATION,
                "loop metadata does not deserialise: %s" % error,
            )
        for record in records:
            if record.entry not in instruction_addresses:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not a program address" % record.entry,
                )
            if record.entry not in knowledge.backward_edge_targets:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not the target of any backward edge"
                    % record.entry,
                )
            if record.iterations < len(record.paths):
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x reports fewer iterations than distinct paths"
                    % record.entry,
                )
            iteration_sum = sum(path.iterations for path in record.paths)
            if iteration_sum != record.iterations:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x iteration counts are inconsistent" % record.entry,
                )
        return VerificationResult(True, VerdictReason.ACCEPTED)
