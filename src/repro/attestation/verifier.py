"""The verifier.

Per the protocol (paper §3), the verifier:

1. performs a one-time offline analysis of the program (CFG + loop
   information),
2. issues challenges containing the program input ``i``, a fresh nonce and
   the attestation scheme the prover must answer with,
3. on receiving the report, checks the signature, the nonce and that the
   report's scheme matches the challenged one (fail closed on mismatch), and
4. checks that the reported path ``P = (A, L)`` corresponds to a valid
   execution of the program's CFG under input ``i``.

Step 4 is implemented in three complementary modes:

* **Golden replay** (the default): the verifier, who owns the program binary
  and chose the input, re-measures the program through the challenged
  scheme's own :meth:`reference_measurement` and compares the resulting
  ``(A, L)``.  This is the strongest check and mirrors how C-FLAT/LO-FAT
  verifiers are evaluated in practice (known-input attestation).
* **Measurement database**: expected measurements for a set of inputs are
  precomputed and looked up; useful when the verifier wants O(1) verification
  cost online.  Keys include the scheme name, so LO-FAT and C-FLAT references
  for the same (program, input) never collide.
* **Structural CFG checks**: independent of the input, the metadata ``L`` is
  validated against the static CFG (every reported loop entry must be the
  target of a backward edge; path encodings must be consistent with the loop
  body).  These checks catch malformed metadata and are also applied in the
  two modes above; schemes without loop metadata pass them trivially.

On top of the structural checks, an installed :class:`repro.dataflow.policy.
StaticPolicy` pre-screens reports against statically *proven* facts: a loop
record naming an entry outside the proven loop forest, or an iteration count
outside the proven trip-count interval, is rejected with
``POLICY_VIOLATION`` before any simulation or replay is spent on the report.
The offline analysis itself is shared with every other static consumer
through :func:`repro.dataflow.analyze_program`.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence, Tuple

from repro.attestation.crypto import fresh_nonce, verify_signature
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cpu.core import CpuConfig
from repro.dataflow.policy import StaticPolicy
from repro.dataflow.program import (
    ProgramAnalysis,
    analyze_program,
    clear_analysis_cache,
)
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.lofat.metadata import LoopMetadata
from repro.schemes import get_scheme
# Re-exported for backward compatibility: these historically lived here.
from repro.schemes.base import VerdictReason, VerificationResult  # noqa: F401

#: Historical name for the verifier's offline program analysis.  The class
#: moved to ``repro.dataflow.program`` (where the dataflow passes live) and
#: grew lazy interval/loop-bound/liveness passes; the attribute surface the
#: verifier relies on (``program``, ``cfg``, ``loops``, ``path_checker``,
#: ``backward_edge_targets``, ``instruction_addresses``) is unchanged.
ProgramKnowledge = ProgramAnalysis

#: Growth bound for a verifier's memoised structural verdicts: benign
#: metadata repeats, attack metadata is mostly distinct, so the cache is
#: cleared wholesale when a flood of distinct L values fills it.
_STRUCTURAL_CACHE_MAX = 4096


def clear_knowledge_cache() -> None:
    """Drop all cached offline analyses (used by tests and benchmarks)."""
    clear_analysis_cache()


class Verifier:
    """The remote verifier V (scheme-agnostic)."""

    def __init__(
        self,
        lofat_config: Optional[LoFatConfig] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.lofat_config = lofat_config or LoFatConfig()
        self.cpu_config = cpu_config
        #: Per-scheme configurations the verifier replays references with;
        #: the historical ``lofat_config`` argument seeds the ``lofat`` entry.
        self._scheme_configs: Dict[str, object] = {"lofat": self.lofat_config}
        self._programs: Dict[str, ProgramKnowledge] = {}
        self._verification_keys: Dict[str, bytes] = {}
        self._outstanding_nonces: Dict[bytes, AttestationChallenge] = {}
        self._used_nonces: set = set()
        #: (scheme, program_id, inputs) -> (A, serialized L).
        self._measurement_db: Dict[
            Tuple[str, str, Tuple[int, ...]], Tuple[bytes, bytes]
        ] = {}
        #: Memoised structural verdicts keyed by (program_id, serialized L).
        #: A standing verifier sees the same benign metadata thousands of
        #: times; the CFG checks are pure in the program analysis, the
        #: installed policy and the metadata bytes, so each distinct L is
        #: checked once (the cache is cleared when a policy is installed).
        self._structural_cache: Dict[Tuple[str, bytes], VerificationResult] = {}
        #: Per-program StaticPolicy artifacts enforced before replay/lookup.
        self._policies: Dict[str, StaticPolicy] = {}

    # ------------------------------------------------------- provisioning
    def register_program(self, program_id: str, program: Program) -> ProgramKnowledge:
        """Offline pre-processing: build and store the program's analysis.

        Delegates to the shared :func:`repro.dataflow.analyze_program` entry
        point, which caches one analysis per program digest process-wide, so
        registering the same binary again (under any id, on any Verifier
        instance) is an O(lookup) operation and the dataflow passes are
        computed at most once per binary.
        """
        knowledge = analyze_program(program)
        self._programs[program_id] = knowledge
        return knowledge

    def install_policy(
        self, program_id: str, policy: Optional[StaticPolicy] = None
    ) -> StaticPolicy:
        """Enforce a :class:`StaticPolicy` on ``program_id``'s reports.

        With ``policy=None`` the policy is derived from the registered
        program's own analysis (the common case); passing an explicit policy
        supports artifacts shipped from another process via the measurement
        database.  A policy whose ``program_digest`` disagrees with the
        registered binary is rejected — enforcing facts proven about a
        different image would be unsound in both directions.
        """
        knowledge = self._programs.get(program_id)
        if knowledge is None:
            raise KeyError("program %r is not registered" % program_id)
        if policy is None:
            policy = knowledge.policy
        elif policy.program_digest != knowledge.program.digest:
            raise ValueError(
                "policy digest %s does not match program %r (digest %s)"
                % (policy.program_digest, program_id, knowledge.program.digest)
            )
        self._policies[program_id] = policy
        # Memoised structural verdicts were computed under the old policy.
        self._structural_cache.clear()
        return policy

    def installed_policy(self, program_id: str) -> Optional[StaticPolicy]:
        """The policy currently enforced for ``program_id``, if any."""
        return self._policies.get(program_id)

    def register_device_key(self, device_id: str, verification_key: bytes) -> None:
        """Provision the verification key of a prover device."""
        self._verification_keys[device_id] = verification_key

    def clear_device_keys(self) -> None:
        """Drop all provisioned device keys (fail closed until re-provisioned).

        The attestation server bounds its wire-provisioned device table
        with this; reports from a dropped device are rejected with
        ``BAD_SIGNATURE`` until its key is registered again.
        """
        self._verification_keys.clear()

    def configure_scheme(self, scheme: str, config=None) -> None:
        """Provision the configuration used when replaying ``scheme`` references."""
        backend = get_scheme(scheme)
        if config is None or isinstance(config, dict):
            config = backend.configure(config or {})
        self._scheme_configs[scheme] = config
        if scheme == "lofat":
            self.lofat_config = config

    def scheme_config(self, scheme: str):
        """The configuration this verifier replays ``scheme`` references with."""
        config = self._scheme_configs.get(scheme)
        if config is None:
            config = get_scheme(scheme).default_config()
            self._scheme_configs[scheme] = config
        return config

    def precompute_measurement(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ) -> Tuple[bytes, bytes]:
        """Populate the measurement database for (scheme, program, input).

        Returns the expected ``(A, serialized L)`` pair.
        """
        measurement = self._reference_measurement(program_id, inputs, scheme)
        key = (scheme, program_id, tuple(inputs))
        self._measurement_db[key] = (
            measurement.measurement, measurement.metadata.to_bytes(),
        )
        return self._measurement_db[key]

    def seed_measurement(
        self,
        program_id: str,
        inputs: Sequence[int],
        measurement: bytes,
        metadata_bytes: bytes,
        scheme: str = "lofat",
    ) -> None:
        """Install an externally computed reference ``(A, serialized L)``.

        The campaign service uses this to share one
        :class:`repro.service.MeasurementDatabase` across verifier instances:
        the database computes (or looks up) the expected measurement keyed by
        scheme, program digest and configuration, then seeds it here so
        :meth:`verify` in ``"database"`` mode is a pure lookup.
        """
        self._measurement_db[(scheme, program_id, tuple(inputs))] = (
            measurement,
            metadata_bytes,
        )

    def export_measurement_database(self) -> str:
        """Serialise the measurement database to JSON (for persistence).

        The database contains only public reference values (expected A and L
        per known input), so it can be stored or shared freely.
        """
        entries = [
            {
                "scheme": scheme,
                "program_id": program_id,
                "inputs": list(inputs),
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (scheme, program_id, inputs), (measurement, metadata)
            in sorted(self._measurement_db.items())
        ]
        return json.dumps({"version": 1, "entries": entries}, indent=2)

    def import_measurement_database(self, payload: str) -> int:
        """Load a database previously produced by :meth:`export_measurement_database`.

        Returns the number of imported entries.  Entries for unregistered
        programs are imported as well (the program may be registered later);
        existing entries with the same key are overwritten.  Entries written
        before the scheme field existed default to ``"lofat"``.
        """
        document = json.loads(payload)
        if document.get("version") != 1:
            raise ValueError("unsupported measurement database version")
        count = 0
        for entry in document.get("entries", []):
            key = (
                str(entry.get("scheme", "lofat")),
                entry["program_id"],
                tuple(int(v) for v in entry["inputs"]),
            )
            self._measurement_db[key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
            count += 1
        return count

    # ----------------------------------------------------------- protocol
    def challenge(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ) -> AttestationChallenge:
        """Create a fresh challenge for ``program_id`` with input ``inputs``.

        ``scheme`` names the attestation backend the prover must answer with
        (resolved against the registry so typos fail here, not at verify
        time).
        """
        if program_id not in self._programs:
            raise KeyError("program %r is not registered" % program_id)
        get_scheme(scheme)  # fail fast on unknown schemes
        nonce = fresh_nonce()
        challenge = AttestationChallenge(
            program_id=program_id, inputs=tuple(inputs), nonce=nonce,
            scheme=scheme,
        )
        self._outstanding_nonces[nonce] = challenge
        return challenge

    def outstanding_challenge(
        self, nonce: bytes
    ) -> Optional[AttestationChallenge]:
        """The challenge an unanswered ``nonce`` belongs to, or None.

        The attestation server uses this to find what a report answers for
        (and thus which reference to warm) without reaching into the nonce
        table; it does not consume the nonce.
        """
        return self._outstanding_nonces.get(nonce)

    def discard_challenge(self, nonce: bytes) -> bool:
        """Withdraw an outstanding challenge (fail closed).

        Connection-oriented verifiers call this when a prover disconnects
        with challenges unanswered: the nonce is moved to the used set, so a
        report answering it later is rejected as ``NONCE_REUSED`` rather
        than lingering verifiable forever.  Returns True when a challenge
        was actually withdrawn.
        """
        challenge = self._outstanding_nonces.pop(nonce, None)
        if challenge is None:
            return False
        self._used_nonces.add(nonce)
        return True

    def verify(
        self,
        report: AttestationReport,
        device_id: str = "prover-0",
        mode: str = "replay",
    ) -> VerificationResult:
        """Check an attestation report.

        ``mode`` selects how the measurement itself is validated:
        ``"replay"`` (golden replay), ``"database"`` (precomputed
        measurements) or ``"structural"`` (CFG checks only).
        """
        if report.program_id not in self._programs:
            return VerificationResult(False, VerdictReason.UNKNOWN_PROGRAM)

        challenge = self._outstanding_nonces.get(report.nonce)
        if challenge is None:
            reason = (
                VerdictReason.NONCE_REUSED
                if report.nonce in self._used_nonces
                else VerdictReason.UNKNOWN_NONCE
            )
            return VerificationResult(False, reason)

        # Fail closed on binding disagreements before any measurement
        # comparison: the report must answer for the challenged program (the
        # program id is not covered by the signature, so a compromised
        # prover could otherwise answer a challenge on A with a valid run of
        # B) and under the challenged scheme; a report naming a scheme this
        # verifier does not know is rejected too.
        if report.program_id != challenge.program_id:
            return VerificationResult(
                False, VerdictReason.PROGRAM_MISMATCH,
                "challenged program %r but report answers for %r"
                % (challenge.program_id, report.program_id),
            )
        if report.scheme != challenge.scheme:
            return VerificationResult(
                False, VerdictReason.SCHEME_MISMATCH,
                "challenged scheme %r but report carries %r"
                % (challenge.scheme, report.scheme),
            )
        try:
            scheme = get_scheme(report.scheme)
        except KeyError:
            return VerificationResult(
                False, VerdictReason.SCHEME_MISMATCH,
                "report names unknown scheme %r" % report.scheme,
            )

        key = self._verification_keys.get(device_id)
        if key is None or not verify_signature(
            report.payload, report.nonce, report.signature, key
        ):
            return VerificationResult(False, VerdictReason.BAD_SIGNATURE)

        # The nonce is consumed whether or not the path checks pass: replaying
        # the same report later must be rejected as stale.
        del self._outstanding_nonces[report.nonce]
        self._used_nonces.add(report.nonce)

        cache_key = (report.program_id, report.metadata.to_bytes())
        structural = self._structural_cache.get(cache_key)
        if structural is None:
            structural = self._check_metadata_structure(
                report.program_id, report.metadata)
            if len(self._structural_cache) >= _STRUCTURAL_CACHE_MAX:
                self._structural_cache.clear()
            self._structural_cache[cache_key] = structural
        if not structural.accepted:
            return structural

        if mode == "structural":
            return VerificationResult(True, VerdictReason.ACCEPTED,
                                      "structural checks only")
        if mode == "database":
            expected = self._measurement_db.get(
                (report.scheme, report.program_id, tuple(challenge.inputs))
            )
            if expected is None:
                return VerificationResult(False, VerdictReason.NO_REFERENCE)
            return scheme.verify(report, expected)

        # Golden replay through the scheme's own reference measurement.
        reference = self._reference_measurement(
            report.program_id, challenge.inputs, report.scheme
        )
        return scheme.verify(
            report, (reference.measurement, reference.metadata.to_bytes())
        )

    # -------------------------------------------------------------- internals
    def _reference_measurement(
        self, program_id: str, inputs: Sequence[int], scheme: str = "lofat"
    ):
        """Re-measure the program through the scheme's trusted reference.

        For execution-dependent schemes this replays the program in the
        verifier's simulator, streaming records straight into a fresh session
        (no trace accumulation); repeat replays of the same binary reuse the
        decoded-instruction cache.  Returns a
        :class:`repro.schemes.SchemeMeasurement`.
        """
        knowledge = self._programs[program_id]
        backend = get_scheme(scheme)
        return backend.reference_measurement(
            knowledge.program,
            inputs,
            config=self.scheme_config(scheme),
            cpu_config=self.cpu_config,
        )

    def _check_metadata_structure(
        self, program_id: str, metadata: LoopMetadata
    ) -> VerificationResult:
        """Validate the loop metadata against the static CFG and policy.

        Schemes that report no loop metadata (C-FLAT as modelled here,
        static attestation) pass vacuously.  When a :class:`StaticPolicy`
        is installed for the program, each loop record is additionally
        screened against the proven loop-entry set and trip-count
        intervals — rejecting infeasible reports here costs a few set
        lookups instead of a full golden replay.
        """
        knowledge = self._programs[program_id]
        instruction_addresses = knowledge.instruction_addresses
        policy = self._policies.get(program_id)
        try:
            records = list(metadata)
        except ValueError as error:
            # Lazily deserialised metadata surfaces parse failures here;
            # fail closed exactly like any other malformed L.
            return VerificationResult(
                False, VerdictReason.METADATA_CFG_VIOLATION,
                "loop metadata does not deserialise: %s" % error,
            )
        for record in records:
            if policy is not None:
                detail = policy.check_loop_record(record.entry, record.iterations)
                if detail is not None:
                    return VerificationResult(
                        False, VerdictReason.POLICY_VIOLATION, detail
                    )
            if record.entry not in instruction_addresses:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not a program address" % record.entry,
                )
            if record.entry not in knowledge.backward_edge_targets:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not the target of any backward edge"
                    % record.entry,
                )
            if record.iterations < len(record.paths):
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x reports fewer iterations than distinct paths"
                    % record.entry,
                )
            iteration_sum = sum(path.iterations for path in record.paths)
            if iteration_sum != record.iterations:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x iteration counts are inconsistent" % record.entry,
                )
        return VerificationResult(True, VerdictReason.ACCEPTED)
