"""The verifier.

Per the protocol (paper §3), the verifier:

1. performs a one-time offline analysis of the program (CFG + loop
   information),
2. issues challenges containing the program input ``i`` and a fresh nonce,
3. on receiving the report, checks the signature and the nonce, and
4. checks that the reported path ``P = (A, L)`` corresponds to a valid
   execution of the program's CFG under input ``i``.

Step 4 is implemented in three complementary modes:

* **Golden replay** (the default): the verifier, who owns the program binary
  and chose the input, re-executes the program in its own trusted simulator
  with an identical LO-FAT model and compares the resulting ``(A, L)``.  This
  is the strongest check and mirrors how C-FLAT/LO-FAT verifiers are
  evaluated in practice (known-input attestation).
* **Measurement database**: expected measurements for a set of inputs are
  precomputed and looked up; useful when the verifier wants O(1) verification
  cost online.
* **Structural CFG checks**: independent of the input, the metadata ``L`` is
  validated against the static CFG (every reported loop entry must be the
  target of a backward edge; path encodings must be consistent with the loop
  body).  These checks catch malformed metadata and are also applied in the
  two modes above.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attestation.crypto import fresh_nonce, verify_signature
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cfg.builder import ControlFlowGraph, build_cfg
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.paths import PathChecker
from repro.cpu.core import Cpu, CpuConfig
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine
from repro.lofat.metadata import LoopMetadata


class VerdictReason(enum.Enum):
    """Why a report was accepted or rejected."""

    ACCEPTED = "accepted"
    UNKNOWN_PROGRAM = "unknown_program"
    UNKNOWN_NONCE = "unknown_nonce"
    NONCE_REUSED = "nonce_reused"
    BAD_SIGNATURE = "bad_signature"
    MEASUREMENT_MISMATCH = "measurement_mismatch"
    METADATA_MISMATCH = "metadata_mismatch"
    METADATA_CFG_VIOLATION = "metadata_cfg_violation"
    NO_REFERENCE = "no_reference_measurement"


@dataclass
class VerificationResult:
    """The verifier's verdict on one attestation report."""

    accepted: bool
    reason: VerdictReason
    detail: str = ""

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class ProgramKnowledge:
    """Everything the verifier precomputes offline for one program."""

    program: Program
    cfg: ControlFlowGraph
    loops: List[NaturalLoop]
    path_checker: PathChecker
    #: Addresses that are plausible run-time loop entries: targets of
    #: backward CFG edges (the heuristic LO-FAT applies in hardware).
    backward_edge_targets: frozenset


#: Process-wide cache of offline program analyses, keyed by program digest.
#: The CFG, loop structure and path checker are read-only once built, so
#: every Verifier instance in this process (and every campaign run) shares
#: one analysis per distinct binary instead of re-deriving it.
_KNOWLEDGE_CACHE: Dict[str, ProgramKnowledge] = {}

#: Growth bound for the knowledge cache: a long-lived service registering a
#: stream of distinct binaries must not accumulate analyses forever.
_KNOWLEDGE_CACHE_MAX = 64


def clear_knowledge_cache() -> None:
    """Drop all cached offline analyses (used by tests and benchmarks)."""
    _KNOWLEDGE_CACHE.clear()


class Verifier:
    """The remote verifier V."""

    def __init__(
        self,
        lofat_config: Optional[LoFatConfig] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.lofat_config = lofat_config or LoFatConfig()
        self.cpu_config = cpu_config
        self._programs: Dict[str, ProgramKnowledge] = {}
        self._verification_keys: Dict[str, bytes] = {}
        self._outstanding_nonces: Dict[bytes, AttestationChallenge] = {}
        self._used_nonces: set = set()
        self._measurement_db: Dict[Tuple[str, Tuple[int, ...]], Tuple[bytes, bytes]] = {}

    # ------------------------------------------------------- provisioning
    def register_program(self, program_id: str, program: Program) -> ProgramKnowledge:
        """Offline pre-processing: build and store the program's CFG.

        The analysis is cached process-wide by program digest, so registering
        the same binary again (under any id, on any Verifier instance) is an
        O(lookup) operation.
        """
        knowledge = _KNOWLEDGE_CACHE.get(program.digest)
        if knowledge is None:
            cfg = build_cfg(program)
            loops = find_natural_loops(cfg)
            backward_targets = set()
            for block in cfg.blocks:
                terminator = block.terminator
                if terminator.is_conditional_branch or terminator.is_direct_jump:
                    target = terminator.address + terminator.imm
                    if target <= terminator.address:
                        backward_targets.add(target)
            knowledge = ProgramKnowledge(
                program=program,
                cfg=cfg,
                loops=loops,
                path_checker=PathChecker(cfg),
                backward_edge_targets=frozenset(backward_targets),
            )
            if len(_KNOWLEDGE_CACHE) >= _KNOWLEDGE_CACHE_MAX:
                _KNOWLEDGE_CACHE.clear()
            _KNOWLEDGE_CACHE[program.digest] = knowledge
        self._programs[program_id] = knowledge
        return knowledge

    def register_device_key(self, device_id: str, verification_key: bytes) -> None:
        """Provision the verification key of a prover device."""
        self._verification_keys[device_id] = verification_key

    def precompute_measurement(
        self, program_id: str, inputs: Sequence[int]
    ) -> Tuple[bytes, bytes]:
        """Populate the measurement database for (program, input).

        Returns the expected ``(A, serialized L)`` pair.
        """
        measurement, metadata = self._reference_measurement(program_id, inputs)
        key = (program_id, tuple(inputs))
        self._measurement_db[key] = (measurement, metadata.to_bytes())
        return self._measurement_db[key]

    def seed_measurement(
        self,
        program_id: str,
        inputs: Sequence[int],
        measurement: bytes,
        metadata_bytes: bytes,
    ) -> None:
        """Install an externally computed reference ``(A, serialized L)``.

        The campaign service uses this to share one
        :class:`repro.service.MeasurementDatabase` across verifier instances:
        the database computes (or looks up) the expected measurement keyed by
        program digest and configuration, then seeds it here so
        :meth:`verify` in ``"database"`` mode is a pure lookup.
        """
        self._measurement_db[(program_id, tuple(inputs))] = (
            measurement,
            metadata_bytes,
        )

    def export_measurement_database(self) -> str:
        """Serialise the measurement database to JSON (for persistence).

        The database contains only public reference values (expected A and L
        per known input), so it can be stored or shared freely.
        """
        entries = [
            {
                "program_id": program_id,
                "inputs": list(inputs),
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (program_id, inputs), (measurement, metadata)
            in sorted(self._measurement_db.items())
        ]
        return json.dumps({"version": 1, "entries": entries}, indent=2)

    def import_measurement_database(self, payload: str) -> int:
        """Load a database previously produced by :meth:`export_measurement_database`.

        Returns the number of imported entries.  Entries for unregistered
        programs are imported as well (the program may be registered later);
        existing entries with the same key are overwritten.
        """
        document = json.loads(payload)
        if document.get("version") != 1:
            raise ValueError("unsupported measurement database version")
        count = 0
        for entry in document.get("entries", []):
            key = (entry["program_id"], tuple(int(v) for v in entry["inputs"]))
            self._measurement_db[key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
            count += 1
        return count

    # ----------------------------------------------------------- protocol
    def challenge(self, program_id: str, inputs: Sequence[int]) -> AttestationChallenge:
        """Create a fresh challenge for ``program_id`` with input ``inputs``."""
        if program_id not in self._programs:
            raise KeyError("program %r is not registered" % program_id)
        nonce = fresh_nonce()
        challenge = AttestationChallenge(
            program_id=program_id, inputs=tuple(inputs), nonce=nonce
        )
        self._outstanding_nonces[nonce] = challenge
        return challenge

    def verify(
        self,
        report: AttestationReport,
        device_id: str = "prover-0",
        mode: str = "replay",
    ) -> VerificationResult:
        """Check an attestation report.

        ``mode`` selects how the measurement itself is validated:
        ``"replay"`` (golden replay), ``"database"`` (precomputed
        measurements) or ``"structural"`` (CFG checks only).
        """
        if report.program_id not in self._programs:
            return VerificationResult(False, VerdictReason.UNKNOWN_PROGRAM)

        challenge = self._outstanding_nonces.get(report.nonce)
        if challenge is None:
            reason = (
                VerdictReason.NONCE_REUSED
                if report.nonce in self._used_nonces
                else VerdictReason.UNKNOWN_NONCE
            )
            return VerificationResult(False, reason)

        key = self._verification_keys.get(device_id)
        if key is None or not verify_signature(
            report.payload, report.nonce, report.signature, key
        ):
            return VerificationResult(False, VerdictReason.BAD_SIGNATURE)

        # The nonce is consumed whether or not the path checks pass: replaying
        # the same report later must be rejected as stale.
        del self._outstanding_nonces[report.nonce]
        self._used_nonces.add(report.nonce)

        structural = self._check_metadata_structure(report.program_id, report.metadata)
        if not structural.accepted:
            return structural

        if mode == "structural":
            return VerificationResult(True, VerdictReason.ACCEPTED,
                                      "structural checks only")
        if mode == "database":
            expected = self._measurement_db.get(
                (report.program_id, tuple(challenge.inputs))
            )
            if expected is None:
                return VerificationResult(False, VerdictReason.NO_REFERENCE)
            expected_measurement, expected_metadata = expected
            if expected_measurement != report.measurement:
                return VerificationResult(False, VerdictReason.MEASUREMENT_MISMATCH)
            if expected_metadata != report.metadata.to_bytes():
                return VerificationResult(False, VerdictReason.METADATA_MISMATCH)
            return VerificationResult(True, VerdictReason.ACCEPTED)

        # Golden replay.
        expected_measurement, expected_metadata = self._reference_measurement(
            report.program_id, challenge.inputs
        )
        if expected_measurement != report.measurement:
            return VerificationResult(
                False, VerdictReason.MEASUREMENT_MISMATCH,
                "reported A does not match the verifier's replay",
            )
        if expected_metadata.to_bytes() != report.metadata.to_bytes():
            return VerificationResult(
                False, VerdictReason.METADATA_MISMATCH,
                "reported loop metadata L does not match the verifier's replay",
            )
        return VerificationResult(True, VerdictReason.ACCEPTED)

    # -------------------------------------------------------------- internals
    def _reference_measurement(
        self, program_id: str, inputs: Sequence[int]
    ) -> Tuple[bytes, LoopMetadata]:
        """Replay the program in the verifier's trusted simulator.

        The replay streams records straight into the LO-FAT model without
        accumulating a trace: only the measurement matters here, and repeat
        replays of the same binary reuse the decoded-instruction cache.
        """
        knowledge = self._programs[program_id]
        config = replace(self.cpu_config or CpuConfig(), collect_trace=False)
        cpu = Cpu(knowledge.program, inputs=list(inputs), config=config)
        engine = LoFatEngine(self.lofat_config)
        cpu.attach_monitor(engine.observe)
        cpu.run()
        measurement = engine.finalize()
        return measurement.measurement, measurement.metadata

    def _check_metadata_structure(
        self, program_id: str, metadata: LoopMetadata
    ) -> VerificationResult:
        """Validate the loop metadata against the static CFG."""
        knowledge = self._programs[program_id]
        instruction_addresses = {
            instr.address for instr in knowledge.program.instructions
        }
        for record in metadata:
            if record.entry not in instruction_addresses:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not a program address" % record.entry,
                )
            if record.entry not in knowledge.backward_edge_targets:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop entry %#x is not the target of any backward edge"
                    % record.entry,
                )
            if record.iterations < len(record.paths):
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x reports fewer iterations than distinct paths"
                    % record.entry,
                )
            iteration_sum = sum(path.iterations for path in record.paths)
            if iteration_sum != record.iterations:
                return VerificationResult(
                    False, VerdictReason.METADATA_CFG_VIOLATION,
                    "loop at %#x iteration counts are inconsistent" % record.entry,
                )
        return VerificationResult(True, VerdictReason.ACCEPTED)
