"""The challenge-response attestation protocol (paper §3, Figure 2).

Scheme-agnostic since the :mod:`repro.schemes` redesign: challenges and
reports carry a ``scheme`` field, and prover/verifier resolve the backend
(LO-FAT, C-FLAT, static, ...) from the scheme registry per challenge.

* :mod:`repro.attestation.crypto` -- the prover's hardware-protected signing
  key and the signature scheme (HMAC-based, see DESIGN.md for the
  substitution rationale).
* :mod:`repro.attestation.protocol` -- the wire messages exchanged between
  verifier and prover (challenge, report), round-tripping via
  ``to_bytes``/``from_bytes``/``to_json``.
* :mod:`repro.attestation.framing` -- the length-prefixed TCP framing and
  version negotiation those messages travel under when the protocol runs
  over a socket (see :mod:`repro.service.server` and ``docs/SERVER.md``).
* :mod:`repro.attestation.prover` -- the prover device: executes the program
  under the challenged scheme and produces the signed report.
* :mod:`repro.attestation.verifier` -- the verifier: nonce management,
  signature checking, scheme-mismatch rejection, and path validation
  (golden replay, measurement database and structural CFG checks).
"""

from repro.attestation.crypto import SecureKeyStore, sign_report, verify_signature
from repro.attestation.framing import FrameType, FramingError, PROTOCOL_VERSIONS
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.attestation.prover import Prover
from repro.attestation.verifier import VerificationResult, Verifier, VerdictReason

__all__ = [
    "FrameType",
    "FramingError",
    "PROTOCOL_VERSIONS",
    "SecureKeyStore",
    "sign_report",
    "verify_signature",
    "AttestationChallenge",
    "AttestationReport",
    "Prover",
    "VerificationResult",
    "Verifier",
    "VerdictReason",
]
