"""The LO-FAT challenge-response attestation protocol (paper §3, Figure 2).

* :mod:`repro.attestation.crypto` -- the prover's hardware-protected signing
  key and the signature scheme (HMAC-based, see DESIGN.md for the
  substitution rationale).
* :mod:`repro.attestation.protocol` -- the wire messages exchanged between
  verifier and prover (challenge, report).
* :mod:`repro.attestation.prover` -- the prover device: executes the program
  under LO-FAT and produces the signed report.
* :mod:`repro.attestation.verifier` -- the verifier: nonce management,
  signature checking, and control-flow path validation against the CFG
  (golden replay, measurement database and structural CFG checks).
"""

from repro.attestation.crypto import SecureKeyStore, sign_report, verify_signature
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.attestation.prover import Prover
from repro.attestation.verifier import VerificationResult, Verifier, VerdictReason

__all__ = [
    "SecureKeyStore",
    "sign_report",
    "verify_signature",
    "AttestationChallenge",
    "AttestationReport",
    "Prover",
    "VerificationResult",
    "Verifier",
    "VerdictReason",
]
