"""Length-prefixed framing of the attestation wire protocol.

The challenge/report messages of :mod:`repro.attestation.protocol` are
self-delimiting byte strings, but a TCP stream needs one more layer to say
*where a message starts and ends* and *what kind of message it is*.  A frame
is::

    +------+----------------+------------------- - -
    | type | payload length |  payload
    | 1 B  | 4 B little-end |  (length bytes)
    +------+----------------+------------------- - -

and a connection is a sequence of frames.  The framing is deliberately
fail-closed: a length prefix beyond :data:`MAX_FRAME_BYTES`, an unknown
frame type, a stream that ends mid-frame -- each is a
:class:`FramingError` the server answers with an ``ERROR`` frame (when the
socket still works) before dropping the connection.  No partial frame is
ever delivered upward.

Version negotiation happens before anything else on a connection: the
client's first frame must be ``HELLO`` carrying the protocol versions it
speaks, and the server answers ``HELLO_ACK`` with the highest version both
sides share (:func:`negotiate_version`) or a fatal ``ERROR`` when there is
none.  Everything after the hello is exchanged under the agreed version.

See ``docs/SERVER.md`` for the full session lifecycle.
"""

from __future__ import annotations

import asyncio
import enum
import json
from typing import Iterable, Optional, Sequence, Tuple

#: Protocol versions this implementation speaks, newest first.
PROTOCOL_VERSIONS: Tuple[int, ...] = (1,)

#: Hard cap on a frame's payload length.  Reports are a few hundred bytes
#: (measurement + metadata + signature); even pathological loop metadata
#: stays far below this, so anything larger is an attack or a corrupted
#: stream and is rejected before any allocation happens.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Bytes of the frame header: 1 type byte + 4 length bytes.
HEADER_BYTES = 5


class FrameType(enum.IntEnum):
    """The frame kinds of protocol version 1."""

    #: Client -> server, first frame: JSON ``{"versions": [...], "device_id"}``.
    HELLO = 0x01
    #: Server -> client: JSON ``{"version", "server", "schemes"}``.
    HELLO_ACK = 0x02
    #: Client -> server: JSON ``{"scheme", "program_id", "inputs"}``.
    CHALLENGE_REQUEST = 0x10
    #: Server -> client: ``AttestationChallenge.to_bytes()``.
    CHALLENGE = 0x11
    #: Client -> server: ``AttestationReport.to_bytes()``.
    REPORT = 0x12
    #: Server -> client: JSON ``{"accepted", "reason", "detail"}``.
    VERDICT = 0x13
    #: Client -> server: empty payload; server answers with a STATS frame.
    STATS_REQUEST = 0x14
    #: Server -> client: JSON server statistics.
    STATS = 0x15
    #: Either side: end of session (empty payload).
    BYE = 0x7E
    #: Client -> server: stop the whole server (honoured only when the
    #: server was started with ``allow_shutdown``; the CI smoke job's clean
    #: shutdown path).
    SHUTDOWN = 0x7D
    #: Either side: JSON ``{"code", "detail", "fatal"}``.  A fatal error is
    #: followed by connection teardown.
    ERROR = 0x7F


class FramingError(ValueError):
    """Base class for wire-framing failures (all of them fail closed)."""

    #: Machine-readable code echoed in ERROR frames.
    code = "framing_error"


class FrameTooLarge(FramingError):
    """A length prefix exceeded the frame cap."""

    code = "frame_too_large"


class TruncatedFrame(FramingError):
    """The stream ended in the middle of a frame."""

    code = "truncated_frame"


class UnknownFrameType(FramingError):
    """The type byte does not name a frame of the negotiated version."""

    code = "unknown_frame_type"


def encode_frame(
    frame_type: int,
    payload: bytes = b"",
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> bytes:
    """Serialise one frame (header + payload)."""
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            "frame payload of %d bytes exceeds the %d-byte cap"
            % (len(payload), max_frame_bytes)
        )
    return (
        int(frame_type).to_bytes(1, "little")
        + len(payload).to_bytes(4, "little")
        + payload
    )


def decode_frame(blob: bytes, max_frame_bytes: int = MAX_FRAME_BYTES):
    """Decode one frame from ``blob``; returns ``(FrameType, payload, rest)``.

    The synchronous twin of :func:`read_frame` (tests, transcripts).  Raises
    the same :class:`FramingError` family on truncated input, an oversized
    length prefix or an unknown type byte.
    """
    if len(blob) < HEADER_BYTES:
        raise TruncatedFrame(
            "frame header needs %d bytes, got %d" % (HEADER_BYTES, len(blob))
        )
    type_byte = blob[0]
    length = int.from_bytes(blob[1:HEADER_BYTES], "little")
    if length > max_frame_bytes:
        raise FrameTooLarge(
            "frame announces %d payload bytes, cap is %d"
            % (length, max_frame_bytes)
        )
    payload = blob[HEADER_BYTES:HEADER_BYTES + length]
    if len(payload) != length:
        raise TruncatedFrame(
            "frame announces %d payload bytes, only %d present"
            % (length, len(payload))
        )
    try:
        frame_type = FrameType(type_byte)
    except ValueError:
        raise UnknownFrameType("unknown frame type byte %#04x" % type_byte)
    return frame_type, payload, blob[HEADER_BYTES + length:]


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Optional[Tuple[FrameType, bytes]]:
    """Read exactly one frame from ``reader``.

    Returns ``None`` on a clean end of stream (EOF exactly on a frame
    boundary).  Raises :class:`TruncatedFrame` when the peer disconnects
    mid-frame, :class:`FrameTooLarge` before reading an oversized payload
    and :class:`UnknownFrameType` for a type byte outside the protocol --
    the caller must treat every one of these as fatal for the connection.
    """
    header = await reader.read(HEADER_BYTES)
    if not header:
        return None
    while len(header) < HEADER_BYTES:
        more = await reader.read(HEADER_BYTES - len(header))
        if not more:
            raise TruncatedFrame(
                "stream ended inside a frame header (%d of %d bytes)"
                % (len(header), HEADER_BYTES)
            )
        header += more
    length = int.from_bytes(header[1:], "little")
    if length > max_frame_bytes:
        raise FrameTooLarge(
            "frame announces %d payload bytes, cap is %d"
            % (length, max_frame_bytes)
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrame(
            "stream ended inside a frame payload (%d of %d bytes)"
            % (len(error.partial), length)
        ) from None
    try:
        frame_type = FrameType(header[0])
    except ValueError:
        raise UnknownFrameType("unknown frame type byte %#04x" % header[0])
    return frame_type, payload


async def write_frame(
    writer: asyncio.StreamWriter,
    frame_type: int,
    payload: bytes = b"",
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Serialise and send one frame, honouring transport backpressure."""
    writer.write(encode_frame(frame_type, payload, max_frame_bytes))
    await writer.drain()


def negotiate_version(client_versions: Iterable[int]) -> Optional[int]:
    """The highest protocol version shared with ``client_versions`` (or None)."""
    offered = {int(v) for v in client_versions}
    for version in sorted(PROTOCOL_VERSIONS, reverse=True):
        if version in offered:
            return version
    return None


def hello_payload(
    versions: Sequence[int] = PROTOCOL_VERSIONS,
    device_id: str = "prover-0",
) -> bytes:
    """The JSON payload of a client HELLO frame."""
    return json.dumps(
        {"versions": list(versions), "device_id": device_id}
    ).encode("utf-8")


def error_payload(code: str, detail: str, fatal: bool) -> bytes:
    """The JSON payload of an ERROR frame."""
    return json.dumps(
        {"code": code, "detail": detail, "fatal": bool(fatal)}
    ).encode("utf-8")
