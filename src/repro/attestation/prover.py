"""The prover device.

The prover P holds the program binary ``S``, the attestation hardware/runtime
and the hardware-protected signing key.  On receiving a challenge it executes
``S`` with the verifier-chosen input ``i`` (plus any locally-arriving,
possibly adversarial inputs ``I``), lets the challenge's attestation scheme
capture the execution through a :class:`repro.schemes.MeasurementSession`,
and returns the signed attestation report.

The scheme is picked *per challenge* from the registry
(:func:`repro.schemes.get_scheme`): one device answers LO-FAT, C-FLAT and
static challenges alike, each with its own configuration provisioned via
:meth:`Prover.configure_scheme`.

The :class:`Prover` also exposes hooks for the attack injectors so the
security experiments can model a compromised program *on the device* while
the attestation hardware itself stays trustworthy, exactly matching the
paper's adversary model (full control over data memory, no control over
the measurement state or the signing key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attestation.crypto import SecureKeyStore, sign_report
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cpu.core import Cpu, CpuConfig
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.schemes import get_scheme


@dataclass
class ProverRunInfo:
    """Operational data about the last attested execution (not signed)."""

    instructions: int = 0
    cycles: int = 0
    engine_stats: dict = field(default_factory=dict)
    scheme: str = "lofat"


class Prover:
    """An embedded device with pluggable attestation backends."""

    def __init__(
        self,
        programs: Dict[str, Program],
        keystore: Optional[SecureKeyStore] = None,
        lofat_config: Optional[LoFatConfig] = None,
        cpu_config: Optional[CpuConfig] = None,
        device_id: str = "prover-0",
    ) -> None:
        self.programs = dict(programs)
        self.keystore = keystore or SecureKeyStore(device_id=device_id)
        self.lofat_config = lofat_config or LoFatConfig()
        self.cpu_config = cpu_config
        self.device_id = device_id
        #: Per-scheme configuration objects; schemes without an entry use
        #: their defaults.  The historical ``lofat_config`` argument seeds
        #: the ``lofat`` entry.
        self._scheme_configs: Dict[str, object] = {"lofat": self.lofat_config}
        #: Adversary-controlled inputs appended after the verifier's inputs
        #: (the ``I`` of the protocol figure).
        self.adversary_inputs: List[int] = []
        #: Attack hooks installed by a compromised environment; they receive
        #: the CPU before execution starts and may register memory-corruption
        #: triggers.  The attestation hardware is unaffected by them.
        self.attack_hooks: List[Callable[[Cpu], None]] = []
        self.last_run: Optional[ProverRunInfo] = None

    # -------------------------------------------------------------- device
    def add_program(self, program_id: str, program: Program) -> None:
        """Provision another attestable program."""
        self.programs[program_id] = program

    def configure_scheme(self, scheme: str, config=None) -> None:
        """Provision the configuration one attestation backend should use.

        ``config`` may be the scheme's configuration object or a raw
        parameter mapping (validated through the scheme's ``configure``).
        """
        backend = get_scheme(scheme)
        if config is None or isinstance(config, dict):
            config = backend.configure(config or {})
        self._scheme_configs[scheme] = config
        if scheme == "lofat":
            self.lofat_config = config

    def scheme_config(self, scheme: str):
        """The configuration this device uses for ``scheme``."""
        config = self._scheme_configs.get(scheme)
        if config is None:
            config = get_scheme(scheme).default_config()
            self._scheme_configs[scheme] = config
        return config

    def install_attack(self, hook: Callable[[Cpu], None]) -> None:
        """Install an adversarial hook (used by the security experiments)."""
        self.attack_hooks.append(hook)

    def clear_attacks(self) -> None:
        """Remove all adversarial hooks."""
        self.attack_hooks = []
        self.adversary_inputs = []

    # ------------------------------------------------------------ protocol
    def attest(self, challenge: AttestationChallenge) -> AttestationReport:
        """Execute the requested program under the challenge's scheme and sign."""
        if challenge.program_id not in self.programs:
            raise KeyError("unknown program id: %r" % challenge.program_id)
        program = self.programs[challenge.program_id]
        scheme = get_scheme(challenge.scheme)
        session = scheme.open_session(program, self.scheme_config(scheme.name))

        inputs = list(challenge.inputs) + list(self.adversary_inputs)
        cpu = Cpu(program, inputs=inputs, config=self.cpu_config)
        cpu.attach_monitor(session.observe)
        for hook in self.attack_hooks:
            hook(cpu)

        result = cpu.run()
        measurement = session.finalize()

        self.last_run = ProverRunInfo(
            instructions=result.instructions,
            cycles=result.cycles,
            engine_stats=measurement.stats,
            scheme=scheme.name,
        )

        payload = measurement.measurement + measurement.metadata.to_bytes()
        signature = sign_report(payload, challenge.nonce, self.keystore)
        return AttestationReport(
            program_id=challenge.program_id,
            measurement=measurement.measurement,
            metadata=measurement.metadata,
            nonce=challenge.nonce,
            signature=signature,
            exit_code=result.exit_code,
            output=result.output,
            scheme=scheme.name,
        )
