"""The prover device.

The prover P holds the program binary ``S``, the LO-FAT hardware and the
hardware-protected signing key.  On receiving a challenge it executes ``S``
with the verifier-chosen input ``i`` (plus any locally-arriving, possibly
adversarial inputs ``I``), lets LO-FAT capture the control flow, and returns
the signed attestation report.

The :class:`Prover` also exposes hooks for the attack injectors so the
security experiments can model a compromised program *on the device* while
the attestation hardware itself stays trustworthy, exactly matching the
paper's adversary model (full control over data memory, no control over
LO-FAT state or the signing key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attestation.crypto import SecureKeyStore, sign_report
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cpu.core import Cpu, CpuConfig
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine


@dataclass
class ProverRunInfo:
    """Operational data about the last attested execution (not signed)."""

    instructions: int = 0
    cycles: int = 0
    engine_stats: dict = field(default_factory=dict)


class Prover:
    """An embedded device with LO-FAT attestation hardware."""

    def __init__(
        self,
        programs: Dict[str, Program],
        keystore: Optional[SecureKeyStore] = None,
        lofat_config: Optional[LoFatConfig] = None,
        cpu_config: Optional[CpuConfig] = None,
        device_id: str = "prover-0",
    ) -> None:
        self.programs = dict(programs)
        self.keystore = keystore or SecureKeyStore(device_id=device_id)
        self.lofat_config = lofat_config or LoFatConfig()
        self.cpu_config = cpu_config
        self.device_id = device_id
        #: Adversary-controlled inputs appended after the verifier's inputs
        #: (the ``I`` of the protocol figure).
        self.adversary_inputs: List[int] = []
        #: Attack hooks installed by a compromised environment; they receive
        #: the CPU before execution starts and may register memory-corruption
        #: triggers.  The attestation hardware is unaffected by them.
        self.attack_hooks: List[Callable[[Cpu], None]] = []
        self.last_run: Optional[ProverRunInfo] = None

    # -------------------------------------------------------------- device
    def add_program(self, program_id: str, program: Program) -> None:
        """Provision another attestable program."""
        self.programs[program_id] = program

    def install_attack(self, hook: Callable[[Cpu], None]) -> None:
        """Install an adversarial hook (used by the security experiments)."""
        self.attack_hooks.append(hook)

    def clear_attacks(self) -> None:
        """Remove all adversarial hooks."""
        self.attack_hooks = []
        self.adversary_inputs = []

    # ------------------------------------------------------------ protocol
    def attest(self, challenge: AttestationChallenge) -> AttestationReport:
        """Execute the requested program under LO-FAT and sign the result."""
        if challenge.program_id not in self.programs:
            raise KeyError("unknown program id: %r" % challenge.program_id)
        program = self.programs[challenge.program_id]

        inputs = list(challenge.inputs) + list(self.adversary_inputs)
        cpu = Cpu(program, inputs=inputs, config=self.cpu_config)
        engine = LoFatEngine(self.lofat_config)
        cpu.attach_monitor(engine.observe)
        for hook in self.attack_hooks:
            hook(cpu)

        result = cpu.run()
        measurement = engine.finalize()

        self.last_run = ProverRunInfo(
            instructions=result.instructions,
            cycles=result.cycles,
            engine_stats=measurement.stats,
        )

        payload = measurement.measurement + measurement.metadata.to_bytes()
        signature = sign_report(payload, challenge.nonce, self.keystore)
        return AttestationReport(
            program_id=challenge.program_id,
            measurement=measurement.measurement,
            metadata=measurement.metadata,
            nonce=challenge.nonce,
            signature=signature,
            exit_code=result.exit_code,
            output=result.output,
        )
