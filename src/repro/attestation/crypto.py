"""Report signing with a hardware-protected key.

In the paper the attestation report ``R = sign(P || N; sk)`` is produced with
a signing key "stored by P in hardware-protected secure memory, e.g., a
register that is accessible only to LO-FAT" (§3), and the verifier checks it
with the corresponding verification key.  The security argument only requires
that the *software* adversary on the prover cannot forge reports and that the
nonce guarantees freshness.

Substitution (documented in DESIGN.md): instead of an asymmetric signature we
use HMAC-SHA3-256 with a symmetric key provisioned to both the verifier and
the prover's :class:`SecureKeyStore`.  The key store object is held by the
LO-FAT engine model only -- the simulated software has no instruction that can
read it -- which models the hardware protection boundary.  All
unforgeability/freshness checks exercised by the experiments behave
identically to the digital-signature formulation.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Optional


class KeyAccessError(RuntimeError):
    """Raised when untrusted software attempts to read the signing key."""


@dataclass
class SecureKeyStore:
    """Models the hardware-protected register holding the signing key.

    The raw key is intentionally kept in a private attribute; the only
    sanctioned operations are :meth:`mac` (used by the LO-FAT hardware to sign
    reports) and :meth:`export_for_verifier` (the one-time provisioning step
    that happens at manufacturing, outside the adversary's reach).
    """

    device_id: str = "prover-0"
    _key: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if not self._key:
            self._key = hashlib.sha3_256(
                b"lofat-device-key:" + self.device_id.encode("utf-8")
            ).digest()

    @classmethod
    def with_random_key(cls, device_id: str = "prover-0") -> "SecureKeyStore":
        """Provision a key store with a fresh random key."""
        store = cls(device_id=device_id)
        store._key = os.urandom(32)
        return store

    def mac(self, message: bytes) -> bytes:
        """Compute the report MAC (only callable by the attestation hardware)."""
        return hmac.new(self._key, message, hashlib.sha3_256).digest()

    def export_for_verifier(self) -> bytes:
        """One-time provisioning of the verification key (trusted channel)."""
        return self._key

    def __getstate__(self):  # pragma: no cover - defensive
        raise KeyAccessError("the signing key cannot be serialised out of the key store")


def sign_report(payload: bytes, nonce: bytes, keystore: SecureKeyStore) -> bytes:
    """Produce ``R = sign(P || N; sk)`` over the report payload and nonce."""
    return keystore.mac(payload + nonce)


def verify_signature(
    payload: bytes, nonce: bytes, signature: bytes, verification_key: bytes
) -> bool:
    """Verifier-side signature check (constant-time comparison)."""
    expected = hmac.new(verification_key, payload + nonce, hashlib.sha3_256).digest()
    return hmac.compare_digest(expected, signature)


def fresh_nonce(length: int = 16) -> bytes:
    """Generate a fresh random nonce for the challenge."""
    return os.urandom(length)
