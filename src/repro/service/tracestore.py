"""The content-addressed trace store behind capture-once / verify-many.

LO-FAT's own evaluation separated trace capture from attestation: the
authors dumped ModelSim instruction traces once and ran the hash/loop
pipeline over them offline.  This module is the campaign-scale version of
that split.  A campaign job matrix of ``schemes x workloads x configs x
attacks`` contains far fewer *distinct executions* than jobs -- the CPU
simulation depends only on the program build, the input vector, the injected
attack and the core-model parameters, never on the attestation scheme or its
configuration -- so each unique execution is simulated exactly once
(:mod:`repro.service.worker`, stage 1) and every (scheme, config) job replays
the stored control-flow trace through its scheme session (stage 2).

Two keyspaces:

* **Execution signature** (:func:`execution_signature`): the scheme-
  independent identity of one execution -- (program build signature, input
  vector, attack, CPU configuration).  This is what stage-1 capture dedup
  keys on.
* **Trace digest** (:func:`repro.cpu.tracefile.trace_digest`): the content
  address of the serialised trace.  Blobs are stored by digest, so two
  signatures that happen to produce identical traces share one blob, and the
  measurement database can key replayed references by digest.

The store holds serialised v2 tracefiles (control-flow records plus
straight-line run counters, see :mod:`repro.cpu.tracefile`) in memory, with
optional spill to a directory (``index.json`` plus ``blobs/<digest>.lftr``)
so captures survive process restarts and can be shared between ``repro trace
capture`` and ``repro trace attest`` invocations.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cpu.tracefile import dumps_trace, loads_trace, trace_digest
from repro.service.fsutil import atomic_write_text

#: CpuConfig fields that do not change the captured execution: all three
#: execution engines (``engine``/``fast_path``) are architecturally
#: identical (pinned by tests/test_fastpath_equivalence.py), batching only
#: affects monitor delivery granularity, and collect_trace is forced off
#: during capture.
_CPU_CONFIG_IGNORED_FIELDS = frozenset(
    {"collect_trace", "fast_path", "monitor_batch_size", "engine"}
)

#: Process-wide cache of deserialised traces, keyed by content digest.
#: Parsing a v2 tracefile decodes every stored instruction word; one
#: execution is replayed once per (scheme, config) sweep point, so caching
#: the parsed form makes every replay after the first skip the decoder.
#: Sessions never mutate the records, so sharing them is safe (same
#: argument as the CPU's decoded-instruction cache).
_PARSED_TRACES: Dict[str, object] = {}
_PARSED_TRACES_MAX = 128
#: The attestation server replays traces on executor threads, so the
#: evict-then-insert sequence below can run concurrently; the lock keeps an
#: eviction from dropping an entry another thread just parsed (a redundant
#: parse would be harmless, a torn dict mutation would not).
_PARSED_TRACES_LOCK = threading.Lock()


def parsed_trace(trace_bytes: bytes, digest: Optional[str] = None):
    """Deserialise ``trace_bytes``, memoised process-wide by content digest."""
    if digest is None:
        digest = trace_digest(trace_bytes)
    trace = _PARSED_TRACES.get(digest)
    if trace is None:
        trace = loads_trace(trace_bytes)
        with _PARSED_TRACES_LOCK:
            if len(_PARSED_TRACES) >= _PARSED_TRACES_MAX:
                _PARSED_TRACES.clear()
            _PARSED_TRACES[digest] = trace
    return trace


def workload_build_signature(workload) -> str:
    """Digest identifying what ``workload.build()`` would produce.

    For a plain :class:`repro.workloads.common.Workload` the assembly source
    is the sole input of ``build()``, so the signature covers exactly that.
    A subclass may parameterize ``build()`` on any instance attribute, so
    for subclasses every attribute is folded in via ``repr``; either way a
    registry re-registration under the same name never serves a stale
    cached :class:`Program`.  The failure mode is deliberately asymmetric:
    an attribute without a value-bearing repr (a callable, say) yields a
    fresh signature per registry instantiation, costing a cache miss and a
    reassembly -- never a wrong program.
    """
    from repro.workloads.common import Workload

    hasher = hashlib.sha3_256()
    hasher.update(type(workload).__qualname__.encode("utf-8"))
    hasher.update(b"\x00")
    if type(workload) is Workload:
        hasher.update(workload.source.encode("utf-8"))
    else:
        for key, value in sorted(vars(workload).items()):
            hasher.update(("%s=%r;" % (key, value)).encode("utf-8"))
    return hasher.hexdigest()


def cpu_config_digest(cpu_config=None) -> str:
    """Canonical digest of the core-model parameters that shape an execution.

    Fields that cannot change the retired-instruction stream or the cycle
    model (``fast_path``, ``monitor_batch_size``, ``collect_trace``) are
    excluded, so flipping the execution pipeline never invalidates captures.
    """
    from repro.cpu.core import CpuConfig

    fields = asdict(cpu_config or CpuConfig())
    for name in _CPU_CONFIG_IGNORED_FIELDS:
        fields.pop(name, None)
    canonical = json.dumps(fields, sort_keys=True)
    return hashlib.sha3_256(canonical.encode("utf-8")).hexdigest()


def execution_signature(
    workload_name: str,
    inputs: Sequence[int],
    attack: Optional[str] = None,
    cpu_config=None,
    build_signature: Optional[str] = None,
    cpu_digest: Optional[str] = None,
) -> str:
    """The scheme-independent identity of one prover execution.

    Covers (program build signature, input vector, attack scenario, CPU
    configuration) -- everything that determines the retired-instruction
    stream -- and deliberately nothing scheme- or attestation-config
    related: an N-scheme x M-config sweep over one workload/input/attack
    point maps to a single signature.  ``build_signature``/``cpu_digest``
    short-circuit the registry lookup and config hashing when the caller
    already computed them (the runner's planning loop).
    """
    if build_signature is None:
        from repro.workloads import get_workload

        build_signature = workload_build_signature(get_workload(workload_name))
    if cpu_digest is None:
        cpu_digest = cpu_config_digest(cpu_config)
    hasher = hashlib.sha3_256()
    hasher.update(b"execution-signature:v1\x00")
    hasher.update(build_signature.encode("utf-8"))
    hasher.update(b"\x00")
    for value in inputs:
        hasher.update((int(value) & 0xFFFFFFFF).to_bytes(4, "little"))
    hasher.update(b"\x00")
    hasher.update((attack or "").encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(cpu_digest.encode("utf-8"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class CapturedExecution:
    """One stored execution: the compact trace plus its architectural outputs.

    Everything stage 2 needs to produce a report without a CPU: the
    serialised control-flow trace (replayed through the scheme session) and
    the execution's observable outputs (echoed into the report and the
    operational numbers).  Picklable, so attest jobs can ship it to worker
    processes.
    """

    signature: str
    trace_digest: str
    trace_bytes: bytes
    exit_code: int
    output: str
    instructions: int
    cycles: int
    replayable: bool = True

    def trace(self):
        """Deserialise the stored control-flow trace (memoised per digest)."""
        return parsed_trace(self.trace_bytes, self.trace_digest)

    @property
    def size_bytes(self) -> int:
        return len(self.trace_bytes)


class TraceStoreError(ValueError):
    """Raised when a trace store directory is malformed."""


class TraceStore:
    """Signature-keyed store of captured executions, content-addressed blobs.

    The index maps execution signatures to capture metadata (trace digest,
    exit code, output, instruction/cycle totals); the blobs map trace
    digests to serialised v2 tracefiles.  With a ``directory``, both are
    persisted (``index.json``, ``blobs/<digest>.lftr``) and the in-memory
    blob tier becomes a bounded cache: once more than ``max_memory_blobs``
    disk-backed blobs are resident, the oldest are dropped and reloaded on
    demand -- campaigns bigger than memory spill to disk instead of growing
    without bound.  Without a directory everything stays in memory.
    """

    _INDEX_VERSION = 1

    def __init__(self, directory: Optional[str] = None,
                 max_memory_blobs: int = 256) -> None:
        self.directory = directory
        self.max_memory_blobs = max_memory_blobs
        self._index: Dict[str, dict] = {}
        self._blobs: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.blob_loads = 0
        if directory is not None:
            os.makedirs(os.path.join(directory, "blobs"), exist_ok=True)
            self._load_index()

    # ------------------------------------------------------------- plumbing
    def _index_path(self) -> str:
        return os.path.join(self.directory, "index.json")

    def _blob_path(self, digest: str) -> str:
        return os.path.join(self.directory, "blobs", "%s.lftr" % digest)

    def _load_index(self) -> None:
        path = self._index_path()
        if not os.path.exists(path):
            return
        with open(path) as handle:
            document = json.load(handle)
        if document.get("version") != self._INDEX_VERSION:
            raise TraceStoreError(
                "unsupported trace store index version: %r"
                % document.get("version")
            )
        self._index = dict(document.get("captures", {}))

    def _save_index(self) -> None:
        # Atomic (temp file + os.replace, same discipline as
        # MeasurementDatabase.save): a killed capture run leaves the
        # previous index intact, never a truncated one.  Blobs are already
        # safe -- content-addressed and verified on load.
        payload = json.dumps(
            {"version": self._INDEX_VERSION, "captures": self._index},
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(self._index_path(), payload + "\n")

    def _evict_memory_blobs(self) -> None:
        """Drop the oldest disk-backed blobs beyond the memory budget."""
        if self.directory is None:
            return
        while len(self._blobs) > self.max_memory_blobs:
            digest = next(iter(self._blobs))
            del self._blobs[digest]

    def _blob(self, digest: str) -> bytes:
        data = self._blobs.get(digest)
        if data is not None:
            return data
        if self.directory is None:
            raise KeyError("trace blob %s is not in the store" % digest)
        path = self._blob_path(digest)
        if not os.path.exists(path):
            raise TraceStoreError("trace blob missing from store: %s" % path)
        with open(path, "rb") as handle:
            data = handle.read()
        if trace_digest(data) != digest:
            raise TraceStoreError(
                "trace blob %s fails its content-address check" % path
            )
        self.blob_loads += 1
        self._blobs[digest] = data
        self._evict_memory_blobs()
        return data

    # --------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, signature: str) -> bool:
        return signature in self._index

    def get(self, signature: str) -> Optional[CapturedExecution]:
        """The stored capture for ``signature``, or None (counts hit/miss)."""
        meta = self._index.get(signature)
        if meta is None:
            self.misses += 1
            return None
        self.hits += 1
        return CapturedExecution(
            signature=signature,
            trace_digest=meta["trace_digest"],
            trace_bytes=self._blob(meta["trace_digest"]),
            exit_code=meta["exit_code"],
            output=meta["output"],
            instructions=meta["instructions"],
            cycles=meta["cycles"],
            replayable=meta.get("replayable", True),
        )

    def flush(self) -> None:
        """Persist the signature index (no-op for a memory-only store).

        Batch writers (the campaign runner's capture loop) pass
        ``flush=False`` to :meth:`put_bytes` and call this once at the end,
        so storing N captures writes the index once instead of N times.
        """
        if self.directory is not None:
            self._save_index()

    def put_bytes(
        self,
        signature: str,
        trace_bytes: bytes,
        exit_code: int,
        output: str,
        instructions: int,
        cycles: int,
        replayable: bool = True,
        flush: bool = True,
    ) -> CapturedExecution:
        """Store one captured execution (idempotent per signature)."""
        digest = trace_digest(trace_bytes)
        if digest not in self._blobs and (
            self.directory is None
            or not os.path.exists(self._blob_path(digest))
        ):
            self._blobs[digest] = trace_bytes
            if self.directory is not None:
                with open(self._blob_path(digest), "wb") as handle:
                    handle.write(trace_bytes)
            self._evict_memory_blobs()
        self._index[signature] = {
            "trace_digest": digest,
            "exit_code": int(exit_code),
            "output": output,
            "instructions": int(instructions),
            "cycles": int(cycles),
            "replayable": bool(replayable),
        }
        if flush and self.directory is not None:
            self._save_index()
        return CapturedExecution(
            signature=signature,
            trace_digest=digest,
            trace_bytes=trace_bytes,
            exit_code=exit_code,
            output=output,
            instructions=instructions,
            cycles=cycles,
            replayable=replayable,
        )

    def put_trace(
        self,
        signature: str,
        trace,
        exit_code: int,
        output: str,
        instructions: int,
        cycles: int,
    ) -> CapturedExecution:
        """Serialise a live :class:`ControlFlowTrace` and store it."""
        return self.put_bytes(
            signature,
            dumps_trace(trace),
            exit_code=exit_code,
            output=output,
            instructions=instructions,
            cycles=cycles,
            replayable=getattr(trace, "replayable", True),
        )

    # ------------------------------------------------------------ reporting
    @property
    def unique_traces(self) -> int:
        """Number of distinct trace blobs (content addresses) stored."""
        return len({meta["trace_digest"] for meta in self._index.values()})

    @property
    def stored_bytes(self) -> int:
        """Total size of the resident (in-memory) blob tier."""
        return sum(len(data) for data in self._blobs.values())

    def counters(self) -> Tuple[int, int]:
        """Snapshot of the lifetime (hits, misses) counters."""
        return (self.hits, self.misses)

    def stats(self) -> dict:
        return {
            "captures": len(self._index),
            "unique_traces": self.unique_traces,
            "memory_blobs": len(self._blobs),
            "memory_bytes": self.stored_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "blob_loads": self.blob_loads,
            "directory": self.directory,
        }
