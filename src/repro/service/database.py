"""The verifier-side measurement database.

The verifier's strongest check -- golden replay -- costs one full simulated
execution per report.  At campaign scale that dominates the service's work:
the same (scheme, program, input, configuration) tuple is verified over and
over across repeats, sweeps and attack/benign pairs.  This module caches the
expected measurement ``(A, serialized L)`` keyed by

    (scheme name, program digest, input vector, configuration digest)

so that every verification after the first is O(lookup).  Keying by *digest*
rather than registry name means the cache survives re-assembly, renaming and
process restarts (via :meth:`MeasurementDatabase.save` /
:meth:`MeasurementDatabase.load`), and can never confuse two different
binaries that share a name; including the scheme name means LO-FAT, C-FLAT
and static references for the same binary never collide either.

A second keyspace serves the capture-once / verify-many pipeline: entries
keyed by

    (scheme name, trace digest, configuration digest)

where the trace digest is the content address of a stored control-flow trace
(:func:`repro.cpu.tracefile.trace_digest`).  A reference computed by
*replaying* a capture (``lookup_or_compute(..., capture=...)``) lands under
both keys, so any later job whose capture serialises to the same bytes --
whatever workload/input signature it was captured under -- reuses the
measurement without another replay.  Both keyspaces persist.

A third keyspace stores :class:`repro.dataflow.policy.StaticPolicy`
artifacts keyed by program digest, so verifier processes loading a shared
database also pick up the statically proven loop bounds and enforce them
without re-running the dataflow passes.

The fleet deployment (:mod:`repro.service.fleet`) splits the database the
way a read-mostly production store is split:

* a **shared snapshot** -- a fully populated ``MeasurementDatabase`` loaded
  once in the parent and inherited read-only by every worker process
  (copy-on-write under ``fork``; loaded from the saved file under spawn).
  Pass it as the ``snapshot`` argument: lookups fall through to it, writes
  never touch it, so warm verifies cross no lock and no process boundary.
* a per-worker **append-only delta log** (:class:`DeltaLog`): every write a
  worker makes on top of the snapshot is also appended, one JSON line per
  record, to a file only that worker writes.  On drain the parent replays
  every worker's log into the base database (:meth:`merge_delta_log`) and
  saves -- the merged file is byte-identical to what a single-process
  server computing the same references would have saved.

The database stores only public reference values -- the expected measurement
and metadata for known inputs, and statically derivable program facts -- so
persisting or sharing it does not weaken the protocol (freshness still comes
from the per-challenge nonce).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dataflow.policy import StaticPolicy
from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.schemes import get_scheme
from repro.service.fsutil import atomic_write_text

#: A database key: (scheme, program digest, inputs, config digest).
DatabaseKey = Tuple[str, str, Tuple[int, ...], str]

#: A trace-keyed entry: (scheme, trace digest, config digest).
TraceKey = Tuple[str, str, str]


def config_digest(config: Optional[LoFatConfig] = None) -> str:
    """Canonical SHA3-256 digest of a LO-FAT configuration.

    Retained for backward compatibility; the scheme-generic form is
    ``get_scheme(name).config_digest(config)``, which this delegates to.
    """
    return get_scheme("lofat").config_digest(config)


class DeltaLog:
    """Append-only JSONL log of writes made on top of a database snapshot.

    One record per line, flushed per append, so the log on disk is always a
    complete prefix of the writes plus at most one truncated trailing line
    (the crash case).  :func:`iter_delta_records` tolerates exactly that: it
    yields every complete record and ignores a partial final line, but a
    malformed line *followed by more data* is corruption and raises.

    A log is single-writer by construction -- each fleet worker owns its own
    file -- which is what makes appends lock-free.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.records_written = 0
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_delta_records(path: str) -> Iterator[dict]:
    """Yield the complete records of a delta log, tolerating a torn tail.

    A line that fails to parse is accepted (skipped) only when it is the
    final non-empty line of the file -- the signature of a writer killed
    mid-append.  Anywhere else it means the file was corrupted and the
    merge must not silently continue.
    """
    with open(path, encoding="utf-8") as handle:
        lines: List[str] = handle.read().splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                return
            raise ValueError(
                "corrupt delta log %s: unparsable line %d is not the tail"
                % (path, index + 1)
            )
        if not isinstance(record, dict):
            raise ValueError(
                "corrupt delta log %s: line %d is not an object"
                % (path, index + 1)
            )
        yield record


class MeasurementDatabase:
    """Cache of expected measurements, keyed by (scheme, digest, inputs, config).

    ``lookup_or_compute`` is the service's main entry point: a hit returns
    the stored ``(A, L)`` immediately; a miss computes the reference through
    the scheme's own ``reference_measurement`` (streaming, no trace
    accumulation) and stores it.  Hit/miss counters feed the campaign
    reports and the E10 benchmark's cache-speedup measurement.

    ``snapshot`` layers this database over a read-mostly base: lookups fall
    through to the snapshot on a local miss, writes stay local (and are
    mirrored to an attached :class:`DeltaLog`), and the snapshot itself is
    never mutated.  That is the fleet-worker configuration -- see the module
    docstring for the lifecycle.
    """

    def __init__(self, snapshot: Optional["MeasurementDatabase"] = None) -> None:
        self._entries: Dict[DatabaseKey, Tuple[bytes, bytes]] = {}
        self._trace_entries: Dict[TraceKey, Tuple[bytes, bytes]] = {}
        self._policy_entries: Dict[str, StaticPolicy] = {}
        self._snapshot = snapshot
        self._delta_log: Optional[DeltaLog] = None
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------- snapshot/delta
    @property
    def snapshot(self) -> Optional["MeasurementDatabase"]:
        return self._snapshot

    def attach_delta_log(self, log: DeltaLog) -> None:
        """Mirror every subsequent write into ``log`` (fleet workers)."""
        self._delta_log = log

    def _get_entry(self, key: DatabaseKey) -> Optional[Tuple[bytes, bytes]]:
        entry = self._entries.get(key)
        if entry is None and self._snapshot is not None:
            entry = self._snapshot._entries.get(key)
        return entry

    def _get_trace_entry(self, key: TraceKey) -> Optional[Tuple[bytes, bytes]]:
        entry = self._trace_entries.get(key)
        if entry is None and self._snapshot is not None:
            entry = self._snapshot._trace_entries.get(key)
        return entry

    def _store_entry(self, key: DatabaseKey, entry: Tuple[bytes, bytes]) -> None:
        self._entries[key] = entry
        if self._delta_log is not None:
            self._delta_log.append({
                "kind": "entry",
                "scheme": key[0],
                "program_digest": key[1],
                "inputs": list(key[2]),
                "config_digest": key[3],
                "measurement": entry[0].hex(),
                "metadata": entry[1].hex(),
            })

    def _store_trace_entry(self, key: TraceKey, entry: Tuple[bytes, bytes]) -> None:
        self._trace_entries[key] = entry
        if self._delta_log is not None:
            self._delta_log.append({
                "kind": "trace",
                "scheme": key[0],
                "trace_digest": key[1],
                "config_digest": key[2],
                "measurement": entry[0].hex(),
                "metadata": entry[1].hex(),
            })

    def merge_delta_log(self, path: str) -> int:
        """Replay a worker's delta log into this database; returns the count.

        Records are applied in append order, so a later write to the same
        key wins -- the same last-writer-wins semantics dict assignment
        gives the single-process server.  Measurements are deterministic,
        so overlapping records from different workers carry identical
        values and the merge is order-independent across logs.
        """
        applied = 0
        for record in iter_delta_records(path):
            kind = record.get("kind")
            if kind == "entry":
                key = (
                    str(record["scheme"]),
                    str(record["program_digest"]),
                    tuple(int(v) for v in record["inputs"]),
                    str(record["config_digest"]),
                )
                self._entries[key] = (
                    bytes.fromhex(record["measurement"]),
                    bytes.fromhex(record["metadata"]),
                )
            elif kind == "trace":
                trace_key = (
                    str(record["scheme"]),
                    str(record["trace_digest"]),
                    str(record["config_digest"]),
                )
                self._trace_entries[trace_key] = (
                    bytes.fromhex(record["measurement"]),
                    bytes.fromhex(record["metadata"]),
                )
            elif kind == "policy":
                policy = StaticPolicy.from_json(record["policy"])
                self._policy_entries[policy.program_digest] = policy
            else:
                raise ValueError(
                    "corrupt delta log %s: unknown record kind %r" % (path, kind)
                )
            applied += 1
        return applied

    # ---------------------------------------------------------------- keys
    @staticmethod
    def key_for(
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        scheme: str = "lofat",
        config_digest: Optional[str] = None,
    ) -> DatabaseKey:
        """``config_digest`` short-circuits the canonical hashing when the
        caller already computed it (the campaign hot path memoises digests
        per sweep point)."""
        backend = get_scheme(scheme)
        return (
            backend.name,
            program.digest,
            tuple(int(v) for v in inputs),
            config_digest if config_digest is not None
            else backend.config_digest(config),
        )

    @staticmethod
    def trace_key_for(
        scheme: str,
        trace_digest: str,
        config=None,
        config_digest: Optional[str] = None,
    ) -> TraceKey:
        backend = get_scheme(scheme)
        return (
            backend.name,
            trace_digest,
            config_digest if config_digest is not None
            else backend.config_digest(config),
        )

    # -------------------------------------------------------------- access
    def lookup(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        scheme: str = "lofat",
        config_digest: Optional[str] = None,
    ) -> Optional[Tuple[bytes, bytes]]:
        """Return the stored ``(A, serialized L)`` or None (counts hit/miss).

        ``config_digest`` short-circuits the canonical configuration hashing
        (an ``asdict`` + JSON + SHA3 pass) for callers that memoise it --
        the attestation server performs this lookup once per report.
        """
        entry = self._get_entry(
            self.key_for(program, inputs, config, scheme, config_digest))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config,
        measurement: bytes,
        metadata_bytes: bytes,
        scheme: str = "lofat",
    ) -> None:
        key = self.key_for(program, inputs, config, scheme)
        self._store_entry(key, (bytes(measurement), bytes(metadata_bytes)))

    def lookup_trace(
        self,
        scheme: str,
        trace_digest: str,
        config=None,
        config_digest: Optional[str] = None,
    ) -> Optional[Tuple[bytes, bytes]]:
        """Return the ``(A, serialized L)`` stored for a trace digest, or None.

        Counts hit/miss like :meth:`lookup`: trace-keyed lookups are part of
        the same cache accounting.
        """
        entry = self._get_trace_entry(
            self.trace_key_for(scheme, trace_digest, config, config_digest)
        )
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store_trace(
        self,
        scheme: str,
        trace_digest: str,
        config,
        measurement: bytes,
        metadata_bytes: bytes,
        config_digest: Optional[str] = None,
    ) -> None:
        key = self.trace_key_for(scheme, trace_digest, config, config_digest)
        self._store_trace_entry(key, (bytes(measurement), bytes(metadata_bytes)))

    def store_policy(self, policy: StaticPolicy) -> None:
        """Persist a StaticPolicy, keyed by its own program digest."""
        self._policy_entries[policy.program_digest] = policy
        if self._delta_log is not None:
            self._delta_log.append({"kind": "policy", "policy": policy.to_json()})

    def lookup_policy(self, program_digest: str) -> Optional[StaticPolicy]:
        """The stored StaticPolicy for a program digest, or None.

        Deliberately not counted in the hit/miss statistics: those measure
        measurement-reference reuse (the E10 cache-speedup benchmark), and
        policy lookups happen once per program registration, not per report.
        """
        policy = self._policy_entries.get(program_digest)
        if policy is None and self._snapshot is not None:
            policy = self._snapshot._policy_entries.get(program_digest)
        return policy

    def lookup_or_compute(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        cpu_config=None,
        scheme: str = "lofat",
        capture=None,
        config_digest: Optional[str] = None,
    ) -> Tuple[bytes, bytes, bool]:
        """Return ``(A, serialized L, was_hit)``, computing the reference on miss.

        With ``capture`` (a :class:`repro.service.tracestore.CapturedExecution`
        of the *benign* execution the reference describes), a miss is served
        by replaying the stored trace through the scheme session -- no CPU in
        the loop -- after first consulting the trace-digest keyspace; the
        result is stored under both keys.  Without a capture the reference
        execution streams its trace (nothing is accumulated) and benefits
        from the process-wide decoded-instruction cache, so even that miss
        path is as cheap as one measured run can be; schemes whose
        measurement is execution-independent (static) skip the run entirely.
        """
        key = self.key_for(program, inputs, config, scheme, config_digest)
        entry = self._get_entry(key)
        if entry is not None:
            self.hits += 1
            return entry[0], entry[1], True
        backend = get_scheme(scheme)
        if capture is not None and capture.replayable:
            trace_key = self.trace_key_for(
                scheme, capture.trace_digest, config, config_digest)
            entry = self._get_trace_entry(trace_key)
            if entry is not None:
                # Served from the trace keyspace without any computation:
                # that is a cache hit, just through the secondary key.
                self.hits += 1
                self._store_entry(key, entry)
                return entry[0], entry[1], True
            self.misses += 1
            measurement = backend.replay_measurement(
                program, capture.trace(), config=config,
            )
            entry = (measurement.measurement,
                     measurement.metadata.to_bytes())
            self._store_trace_entry(trace_key, entry)
            self._store_entry(key, entry)
            return entry[0], entry[1], False
        self.misses += 1
        measurement = backend.reference_measurement(
            program,
            inputs=list(inputs),
            config=config,
            cpu_config=cpu_config,
        )
        entry = (measurement.measurement, measurement.metadata.to_bytes())
        self._store_entry(key, entry)
        return entry[0], entry[1], False

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        """Number of (scheme, program, inputs, config)-keyed entries.

        Trace-keyed entries are deliberately not counted here -- they are a
        derived index over the same measurements (see :meth:`stats`).
        """
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        stats = {
            "entries": len(self._entries),
            "trace_entries": len(self._trace_entries),
            "policy_entries": len(self._policy_entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
        if self._snapshot is not None:
            stats["snapshot_entries"] = len(self._snapshot._entries)
            stats["snapshot_trace_entries"] = len(self._snapshot._trace_entries)
        if self._delta_log is not None:
            stats["delta_records"] = self._delta_log.records_written
        return stats

    def counters(self) -> Tuple[int, int]:
        """Snapshot of the lifetime (hits, misses) counters."""
        return (self.hits, self.misses)

    def stats_since(self, counters: Tuple[int, int]) -> dict:
        """Statistics relative to an earlier :meth:`counters` snapshot.

        The campaign runner uses this so each run reports its own hit/miss
        numbers even when one database serves many runs.
        """
        hits = self.hits - counters[0]
        misses = self.misses - counters[1]
        total = hits + misses
        return {
            "entries": len(self._entries),
            "trace_entries": len(self._trace_entries),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------- persistence
    def to_json(self) -> str:
        entries = [
            {
                "scheme": scheme,
                "program_digest": program_digest,
                "inputs": list(inputs),
                "config_digest": cfg_digest,
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (scheme, program_digest, inputs, cfg_digest), (measurement, metadata)
            in sorted(self._entries.items())
        ]
        trace_entries = [
            {
                "scheme": scheme,
                "trace_digest": digest,
                "config_digest": cfg_digest,
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (scheme, digest, cfg_digest), (measurement, metadata)
            in sorted(self._trace_entries.items())
        ]
        document = {"version": 1, "entries": entries}
        if trace_entries:
            document["trace_entries"] = trace_entries
        if self._policy_entries:
            document["policy_entries"] = [
                self._policy_entries[digest].to_json()
                for digest in sorted(self._policy_entries)
            ]
        return json.dumps(document, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "MeasurementDatabase":
        """Parse a persisted database.

        Entries written before the scheme field existed default to
        ``"lofat"`` so old database files stay loadable; files without a
        ``trace_entries`` block (pre capture-once releases) load with an
        empty trace keyspace.
        """
        document = json.loads(payload)
        if document.get("version") != 1:
            raise ValueError("unsupported measurement database version")
        database = cls()
        for entry in document.get("entries", []):
            key = (
                str(entry.get("scheme", "lofat")),
                str(entry["program_digest"]),
                tuple(int(v) for v in entry["inputs"]),
                str(entry["config_digest"]),
            )
            database._entries[key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
        for entry in document.get("trace_entries", []):
            trace_key = (
                str(entry.get("scheme", "lofat")),
                str(entry["trace_digest"]),
                str(entry["config_digest"]),
            )
            database._trace_entries[trace_key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
        for entry in document.get("policy_entries", []):
            policy = StaticPolicy.from_json(entry)
            database._policy_entries[policy.program_digest] = policy
        return database

    def save(self, path: str) -> int:
        """Persist to ``path`` atomically; returns the number of entries written.

        Written through :func:`repro.service.fsutil.atomic_write_text`, so a
        campaign or server killed mid-save leaves either the previous
        database or the new one -- never a truncated JSON file that poisons
        the next load.
        """
        atomic_write_text(path, self.to_json() + "\n")
        return len(self._entries)

    @classmethod
    def load(cls, path: str) -> "MeasurementDatabase":
        with open(path) as handle:
            return cls.from_json(handle.read())
