"""The verifier-side measurement database.

The verifier's strongest check -- golden replay -- costs one full simulated
execution per report.  At campaign scale that dominates the service's work:
the same (scheme, program, input, configuration) tuple is verified over and
over across repeats, sweeps and attack/benign pairs.  This module caches the
expected measurement ``(A, serialized L)`` keyed by

    (scheme name, program digest, input vector, configuration digest)

so that every verification after the first is O(lookup).  Keying by *digest*
rather than registry name means the cache survives re-assembly, renaming and
process restarts (via :meth:`MeasurementDatabase.save` /
:meth:`MeasurementDatabase.load`), and can never confuse two different
binaries that share a name; including the scheme name means LO-FAT, C-FLAT
and static references for the same binary never collide either.

The database stores only public reference values -- the expected measurement
and metadata for known inputs -- so persisting or sharing it does not weaken
the protocol (freshness still comes from the per-challenge nonce).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.isa.assembler import Program
from repro.lofat.config import LoFatConfig
from repro.schemes import get_scheme

#: A database key: (scheme, program digest, inputs, config digest).
DatabaseKey = Tuple[str, str, Tuple[int, ...], str]


def config_digest(config: Optional[LoFatConfig] = None) -> str:
    """Canonical SHA3-256 digest of a LO-FAT configuration.

    Retained for backward compatibility; the scheme-generic form is
    ``get_scheme(name).config_digest(config)``, which this delegates to.
    """
    return get_scheme("lofat").config_digest(config)


class MeasurementDatabase:
    """Cache of expected measurements, keyed by (scheme, digest, inputs, config).

    ``lookup_or_compute`` is the service's main entry point: a hit returns
    the stored ``(A, L)`` immediately; a miss computes the reference through
    the scheme's own ``reference_measurement`` (streaming, no trace
    accumulation) and stores it.  Hit/miss counters feed the campaign
    reports and the E10 benchmark's cache-speedup measurement.
    """

    def __init__(self) -> None:
        self._entries: Dict[DatabaseKey, Tuple[bytes, bytes]] = {}
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------------- keys
    @staticmethod
    def key_for(
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        scheme: str = "lofat",
    ) -> DatabaseKey:
        backend = get_scheme(scheme)
        return (
            backend.name,
            program.digest,
            tuple(int(v) for v in inputs),
            backend.config_digest(config),
        )

    # -------------------------------------------------------------- access
    def lookup(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        scheme: str = "lofat",
    ) -> Optional[Tuple[bytes, bytes]]:
        """Return the stored ``(A, serialized L)`` or None (counts hit/miss)."""
        entry = self._entries.get(self.key_for(program, inputs, config, scheme))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config,
        measurement: bytes,
        metadata_bytes: bytes,
        scheme: str = "lofat",
    ) -> None:
        key = self.key_for(program, inputs, config, scheme)
        self._entries[key] = (bytes(measurement), bytes(metadata_bytes))

    def lookup_or_compute(
        self,
        program: Program,
        inputs: Tuple[int, ...],
        config=None,
        cpu_config=None,
        scheme: str = "lofat",
    ) -> Tuple[bytes, bytes, bool]:
        """Return ``(A, serialized L, was_hit)``, computing the reference on miss.

        The reference execution streams its trace (nothing is accumulated)
        and benefits from the process-wide decoded-instruction cache, so even
        the miss path is as cheap as one measured run can be; schemes whose
        measurement is execution-independent (static) skip the run entirely.
        """
        key = self.key_for(program, inputs, config, scheme)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry[0], entry[1], True
        self.misses += 1
        measurement = get_scheme(scheme).reference_measurement(
            program,
            inputs=list(inputs),
            config=config,
            cpu_config=cpu_config,
        )
        entry = (measurement.measurement, measurement.metadata.to_bytes())
        self._entries[key] = entry
        return entry[0], entry[1], False

    # ------------------------------------------------------------ reporting
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def counters(self) -> Tuple[int, int]:
        """Snapshot of the lifetime (hits, misses) counters."""
        return (self.hits, self.misses)

    def stats_since(self, counters: Tuple[int, int]) -> dict:
        """Statistics relative to an earlier :meth:`counters` snapshot.

        The campaign runner uses this so each run reports its own hit/miss
        numbers even when one database serves many runs.
        """
        hits = self.hits - counters[0]
        misses = self.misses - counters[1]
        total = hits + misses
        return {
            "entries": len(self._entries),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------- persistence
    def to_json(self) -> str:
        entries = [
            {
                "scheme": scheme,
                "program_digest": program_digest,
                "inputs": list(inputs),
                "config_digest": cfg_digest,
                "measurement": measurement.hex(),
                "metadata": metadata.hex(),
            }
            for (scheme, program_digest, inputs, cfg_digest), (measurement, metadata)
            in sorted(self._entries.items())
        ]
        return json.dumps({"version": 1, "entries": entries}, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "MeasurementDatabase":
        """Parse a persisted database.

        Entries written before the scheme field existed default to
        ``"lofat"`` so old database files stay loadable.
        """
        document = json.loads(payload)
        if document.get("version") != 1:
            raise ValueError("unsupported measurement database version")
        database = cls()
        for entry in document.get("entries", []):
            key = (
                str(entry.get("scheme", "lofat")),
                str(entry["program_digest"]),
                tuple(int(v) for v in entry["inputs"]),
                str(entry["config_digest"]),
            )
            database._entries[key] = (
                bytes.fromhex(entry["measurement"]),
                bytes.fromhex(entry["metadata"]),
            )
        return database

    def save(self, path: str) -> int:
        """Persist to ``path``; returns the number of entries written."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return len(self._entries)

    @classmethod
    def load(cls, path: str) -> "MeasurementDatabase":
        with open(path) as handle:
            return cls.from_json(handle.read())
