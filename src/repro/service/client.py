"""The remote-attestation client: simulated provers over the wire.

The other half of :mod:`repro.service.server`: an asyncio client that
connects to the verifier daemon, performs the HELLO/HELLO_ACK version
negotiation, and answers challenges as a simulated embedded prover.  Report
production reuses the campaign worker machinery
(:mod:`repro.service.worker`), so a client with a :class:`TraceStore` of
captured executions *replays* stored traces instead of re-simulating --
the capture-once / verify-many pipeline stretched over a socket -- and
falls back to a live CPU execution when no capture exists.

Two interaction shapes:

* :meth:`AttestationClient.attest_round` -- one challenge-request /
  challenge / report / verdict exchange (two round trips).
* :meth:`AttestationClient.attest_batch` -- a *batched verification
  session*: all challenge requests of the batch are pipelined onto the
  wire before the first challenge is read, and all reports before the
  first verdict, amortising the per-round-trip latency.  Frame order is
  preserved both ways, so verdict *k* answers report *k*.

:func:`run_load` is the load generator behind ``repro attest-remote`` and
the E14 benchmark: N concurrent prover connections, each running R rounds
across the requested schemes, aggregated into one throughput report.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attestation.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSIONS,
    FrameType,
    FramingError,
    hello_payload,
    read_frame,
    write_frame,
)
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.cpu.core import CpuConfig
from repro.service.campaign import CampaignJob
from repro.service.tracestore import TraceStore, execution_signature
from repro.service.worker import execute_attest_job, execute_prover_job
from repro.workloads import get_workload


class RemoteAttestationError(RuntimeError):
    """Raised when the server reports a protocol error or misbehaves."""

    def __init__(self, code: str, detail: str = "", fatal: bool = False):
        super().__init__("%s: %s" % (code, detail) if detail else code)
        self.code = code
        self.detail = detail
        self.fatal = fatal


@dataclass
class RemoteVerdict:
    """The verifier's wire-delivered verdict on one report."""

    accepted: bool
    reason: str
    detail: str = ""

    def __bool__(self) -> bool:
        return self.accepted


class SimulatedProver:
    """Produces signed reports for challenges, replaying captures when able.

    The prover-side twin of the campaign worker: a challenge for an
    execution whose scheme-independent signature is in the trace store is
    answered by replaying the stored control-flow trace through the
    challenged scheme's session (with the worker's per-process replay cache
    deduping repeat (scheme, trace, config) measurements); anything else
    runs live on the CPU model.  Attack hooks are deliberately absent --
    this client models benign devices; attacked runs come from the campaign
    pipeline.
    """

    def __init__(
        self,
        device_id: str = "prover-0",
        trace_store: Optional[TraceStore] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.device_id = device_id
        self.trace_store = trace_store
        self.cpu_config = cpu_config or CpuConfig()
        self.replayed = 0
        self.executed = 0
        self._cpu_digest: Optional[str] = None
        #: (program_id, inputs, scheme) -> (job, capture): the parts of a
        #: response that do not depend on the nonce, memoised so repeated
        #: challenges cost a dict hit instead of re-hashing the execution
        #: signature and re-consulting the store every round.
        self._plans: Dict[Tuple[str, Tuple[int, ...], str], tuple] = {}

    def _plan(self, challenge: AttestationChallenge) -> tuple:
        key = (challenge.program_id, tuple(challenge.inputs), challenge.scheme)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        get_workload(challenge.program_id)  # fail fast on unknown programs
        job = CampaignJob(
            job_id="remote",
            workload=challenge.program_id,
            inputs=tuple(challenge.inputs),
            scheme=challenge.scheme,
        )
        capture = None
        if self.trace_store is not None:
            if self._cpu_digest is None:
                from repro.service.tracestore import cpu_config_digest

                self._cpu_digest = cpu_config_digest(self.cpu_config)
            signature = execution_signature(
                challenge.program_id, challenge.inputs,
                attack=None, cpu_digest=self._cpu_digest,
            )
            capture = self.trace_store.get(signature)
        plan = (job, capture)
        self._plans[key] = plan
        return plan

    def respond(self, challenge: AttestationChallenge) -> AttestationReport:
        """Produce the signed report answering ``challenge``."""
        job, capture = self._plan(challenge)
        if capture is not None and capture.replayable:
            response = execute_attest_job(
                (job, challenge.nonce, capture),
                device_id=self.device_id, cpu_config=self.cpu_config,
            )
            self.replayed += 1
        else:
            response = execute_prover_job(
                (job, challenge.nonce),
                device_id=self.device_id, cpu_config=self.cpu_config,
            )
            self.executed += 1
        return response.report


class AttestationClient:
    """One prover-side connection to the attestation server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4711,
        device_id: str = "prover-0",
        prover: Optional[SimulatedProver] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        pace_seconds: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.device_id = device_id
        self.prover = prover or SimulatedProver(device_id=device_id)
        self.max_frame_bytes = max_frame_bytes
        #: Simulated device-side latency charged per attestation round
        #: (program execution on the remote core plus its link), slept --
        #: not burned -- before the report goes out.  A replaying prover
        #: otherwise answers in microseconds, thousands of times faster
        #: than the embedded device it stands in for; pacing restores the
        #: closed-loop shape real fleets have, where a verifier's
        #: throughput comes from serving many in-flight devices, not from
        #: one implausibly fast one.  Zero (the default) disables pacing.
        self.pace_seconds = pace_seconds
        self.server_info: dict = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # ------------------------------------------------------------ lifecycle
    async def connect(self, versions: Sequence[int] = PROTOCOL_VERSIONS) -> dict:
        """Open the connection and negotiate the protocol version."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        await write_frame(
            self._writer, FrameType.HELLO,
            hello_payload(versions, self.device_id), self.max_frame_bytes)
        frame_type, payload = await self._expect(FrameType.HELLO_ACK)
        self.server_info = json.loads(payload.decode("utf-8"))
        return self.server_info

    async def close(self, send_bye: bool = True) -> None:
        """End the session (politely with BYE, unless the pipe broke)."""
        if self._writer is None:
            return
        try:
            if send_bye:
                await write_frame(self._writer, FrameType.BYE)
                await read_frame(self._reader, self.max_frame_bytes)
        except (FramingError, ConnectionError, OSError):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def shutdown_server(self) -> None:
        """Ask the server to stop (requires server-side ``allow_shutdown``)."""
        await write_frame(self._writer, FrameType.SHUTDOWN)
        await self._expect(FrameType.BYE)
        await self.close(send_bye=False)

    # -------------------------------------------------------------- plumbing
    async def _expect(self, expected: FrameType) -> Tuple[FrameType, bytes]:
        """Read one frame, surfacing server ERROR frames as exceptions."""
        frame = await read_frame(self._reader, self.max_frame_bytes)
        if frame is None:
            raise RemoteAttestationError(
                "connection_closed", "server closed the connection", fatal=True)
        frame_type, payload = frame
        if frame_type == FrameType.ERROR:
            document = json.loads(payload.decode("utf-8"))
            raise RemoteAttestationError(
                str(document.get("code", "error")),
                str(document.get("detail", "")),
                bool(document.get("fatal", False)),
            )
        if frame_type != expected:
            raise RemoteAttestationError(
                "unexpected_frame",
                "expected %s, got %s" % (expected.name, frame_type.name),
                fatal=True)
        return frame_type, payload

    @staticmethod
    def _default_inputs(program_id: str) -> Tuple[int, ...]:
        """The workload's default input vector, best effort.

        The server is authoritative about which programs exist; a name this
        client's registry does not know still goes onto the wire (with an
        empty input vector) so the server's unknown-program handling is
        exercised rather than short-circuited locally.
        """
        try:
            return tuple(get_workload(program_id).inputs)
        except KeyError:
            return ()

    @staticmethod
    def _challenge_request(scheme, program_id, inputs) -> bytes:
        return json.dumps({
            "scheme": scheme,
            "program_id": program_id,
            "inputs": [int(v) for v in inputs],
        }).encode("utf-8")

    @staticmethod
    def _parse_verdict(payload: bytes) -> RemoteVerdict:
        document = json.loads(payload.decode("utf-8"))
        return RemoteVerdict(
            accepted=bool(document["accepted"]),
            reason=str(document["reason"]),
            detail=str(document.get("detail", "")),
        )

    # -------------------------------------------------------------- protocol
    async def request_challenge(
        self, program_id: str, inputs: Optional[Sequence[int]] = None,
        scheme: str = "lofat",
    ) -> AttestationChallenge:
        """One challenge request / challenge exchange."""
        if inputs is None:
            inputs = self._default_inputs(program_id)
        await write_frame(
            self._writer, FrameType.CHALLENGE_REQUEST,
            self._challenge_request(scheme, program_id, inputs),
            self.max_frame_bytes)
        _, payload = await self._expect(FrameType.CHALLENGE)
        return AttestationChallenge.from_bytes(payload)

    async def submit_report(self, report: AttestationReport) -> RemoteVerdict:
        """Send one report and read its verdict."""
        await write_frame(
            self._writer, FrameType.REPORT, report.to_bytes(),
            self.max_frame_bytes)
        _, payload = await self._expect(FrameType.VERDICT)
        return self._parse_verdict(payload)

    async def attest_round(
        self, program_id: str, inputs: Optional[Sequence[int]] = None,
        scheme: str = "lofat",
    ) -> Tuple[AttestationReport, RemoteVerdict]:
        """One full attestation: challenge, local measurement, verdict."""
        challenge = await self.request_challenge(program_id, inputs, scheme)
        report = self.prover.respond(challenge)
        if self.pace_seconds > 0:
            await asyncio.sleep(self.pace_seconds)
        verdict = await self.submit_report(report)
        return report, verdict

    async def attest_batch(
        self, rounds: Sequence[Tuple[str, Optional[Sequence[int]], str]],
    ) -> List[Tuple[AttestationReport, RemoteVerdict]]:
        """A batched verification session over ``rounds``.

        ``rounds`` is a sequence of ``(program_id, inputs, scheme)`` tuples
        (``inputs=None`` uses the workload's defaults).  All challenge
        requests go onto the wire before the first challenge is read, and
        all reports before the first verdict -- one latency charge per
        phase instead of one per round.
        """
        resolved = [
            (program_id,
             list(self._default_inputs(program_id)) if inputs is None
             else list(inputs),
             scheme)
            for program_id, inputs, scheme in rounds
        ]
        for program_id, inputs, scheme in resolved:
            await write_frame(
                self._writer, FrameType.CHALLENGE_REQUEST,
                self._challenge_request(scheme, program_id, inputs),
                self.max_frame_bytes)
        challenges = []
        for _ in resolved:
            _, payload = await self._expect(FrameType.CHALLENGE)
            challenges.append(AttestationChallenge.from_bytes(payload))
        reports = [self.prover.respond(challenge) for challenge in challenges]
        if self.pace_seconds > 0:
            # The device executes its challenges serially.
            await asyncio.sleep(self.pace_seconds * len(reports))
        for report in reports:
            await write_frame(
                self._writer, FrameType.REPORT, report.to_bytes(),
                self.max_frame_bytes)
        results = []
        for report in reports:
            _, payload = await self._expect(FrameType.VERDICT)
            results.append((report, self._parse_verdict(payload)))
        return results

    async def server_stats(self) -> dict:
        """Fetch the server's operational counters (STATS frame)."""
        await write_frame(self._writer, FrameType.STATS_REQUEST)
        _, payload = await self._expect(FrameType.STATS)
        return json.loads(payload.decode("utf-8"))


@dataclass
class LoadReport:
    """Aggregated result of one :func:`run_load` campaign."""

    provers: int
    rounds: int
    reports: int = 0
    accepted: int = 0
    rejected: int = 0
    replayed: int = 0
    executed: int = 0
    elapsed_seconds: float = 0.0
    by_scheme: Dict[str, int] = field(default_factory=dict)
    rejections: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def reports_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.reports / self.elapsed_seconds

    @property
    def ok(self) -> bool:
        """True when every (benign) report was accepted."""
        return self.reports > 0 and self.rejected == 0

    def as_dict(self) -> dict:
        return {
            "provers": self.provers,
            "rounds": self.rounds,
            "reports": self.reports,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "replayed": self.replayed,
            "executed": self.executed,
            "elapsed_seconds": self.elapsed_seconds,
            "reports_per_second": self.reports_per_second,
            "by_scheme": dict(self.by_scheme),
        }


async def run_load(
    host: str,
    port: int,
    provers: int = 1,
    rounds: int = 1,
    schemes: Sequence[str] = ("lofat",),
    workloads: Sequence[str] = ("syringe_pump",),
    trace_store: Optional[TraceStore] = None,
    cpu_config: Optional[CpuConfig] = None,
    batch: int = 1,
    warmup: bool = True,
    pace_seconds: float = 0.0,
) -> LoadReport:
    """Drive ``provers`` concurrent simulated provers against one server.

    Each prover opens its own connection (device ids ``prover-0`` ..
    ``prover-N-1``) and performs ``rounds`` attestations, cycling through
    the ``schemes`` x ``workloads`` product.  ``batch > 1`` pipelines that
    many rounds per verification session (:meth:`AttestationClient.attest_batch`).
    With ``warmup`` (default) one unmeasured round per (scheme, workload)
    pair runs first so steady-state throughput is measured rather than
    cold-cache reference computation.  All provers share one
    ``trace_store`` -- captures are read-only during load generation.
    ``pace_seconds`` charges each prover that much simulated device latency
    per round (see :class:`AttestationClient`); with pacing the run is a
    closed-loop load test -- throughput comes from how many in-flight
    devices the server sustains -- while ``0`` measures raw wire throughput.
    """
    plan = [(workload, None, scheme)
            for scheme in schemes for workload in workloads]
    if not plan:
        raise ValueError("run_load needs at least one scheme and one workload")
    report = LoadReport(provers=provers, rounds=rounds)

    if warmup:
        prover = SimulatedProver(
            device_id="prover-warmup", trace_store=trace_store,
            cpu_config=cpu_config)
        client = AttestationClient(host, port, "prover-warmup", prover)
        await client.connect()
        for workload, inputs, scheme in plan:
            await client.attest_round(workload, inputs, scheme)
        await client.close()

    async def one_prover(index: int) -> None:
        prover = SimulatedProver(
            device_id="prover-%d" % index, trace_store=trace_store,
            cpu_config=cpu_config)
        client = AttestationClient(host, port, prover.device_id, prover,
                                   pace_seconds=pace_seconds)
        await client.connect()
        try:
            pending = [plan[(index + i) % len(plan)] for i in range(rounds)]
            while pending:
                chunk, pending = pending[:max(1, batch)], pending[max(1, batch):]
                if len(chunk) == 1 and batch <= 1:
                    results = [await client.attest_round(*chunk[0])]
                else:
                    results = await client.attest_batch(chunk)
                for (workload, _, scheme), (_, verdict) in zip(chunk, results):
                    report.reports += 1
                    report.by_scheme[scheme] = report.by_scheme.get(scheme, 0) + 1
                    if verdict.accepted:
                        report.accepted += 1
                    else:
                        report.rejected += 1
                        report.rejections.append(
                            (scheme, workload, verdict.reason))
        finally:
            report.replayed += prover.replayed
            report.executed += prover.executed
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one_prover(i) for i in range(provers)))
    report.elapsed_seconds = time.perf_counter() - started
    return report
