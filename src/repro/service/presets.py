"""Campaign presets: every benchmark experiment (E1-E9, E11) as a campaign.

Each preset re-expresses the workload/config/attack combinations that the
corresponding ``benchmarks/test_bench_e*.py`` experiment executes as a
declarative :class:`repro.service.campaign.CampaignSpec`, so the campaign
runner can attest all of them end to end -- sequentially or fanned out across
workers -- with one command (``repro campaign --experiment e5`` or
``--experiment all``).  The ``e11`` preset is the scheme matrix: the same
population attested under LO-FAT, C-FLAT and static attestation in one run.

The presets intentionally reuse the registry names: the campaign runner then
exercises the same binaries, the same inputs and the same LO-FAT
configuration points as the benchmarks, which is what makes the E10
sequential-vs-parallel comparison meaningful.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.attacks import ATTACK_REGISTRY
from repro.service.campaign import (
    CampaignSpec,
    ConfigVariant,
    WorkloadSelection,
)
from repro.workloads import WORKLOAD_REGISTRY

#: Workloads dominated by loop execution (used by the granularity and
#: compression sweeps, mirroring E8/E9's selection).
_LOOP_HEAVY = [
    "figure4_loop", "crc32", "bubble_sort", "fir_filter", "matmul",
    "syringe_pump",
]


def _all_workloads() -> List[WorkloadSelection]:
    return [WorkloadSelection(name=name) for name in sorted(WORKLOAD_REGISTRY)]


def _workloads(names: List[str]) -> List[WorkloadSelection]:
    return [WorkloadSelection(name=name) for name in names]


def experiment_campaign(experiment: str) -> CampaignSpec:
    """The campaign spec reproducing one benchmark experiment's runs."""
    experiment = experiment.lower()
    try:
        builder = _PRESETS[experiment]
    except KeyError:
        raise KeyError(
            "unknown experiment %r (known: %s)"
            % (experiment, ", ".join(sorted(_PRESETS)))
        ) from None
    return builder()


def all_experiments() -> List[str]:
    """Names of all preset experiment campaigns, in order."""
    return sorted(_PRESETS)


def full_campaign(repeats: int = 1) -> CampaignSpec:
    """One campaign covering every workload, attack and config sweep point.

    This is the superset of the E1-E9 job populations (deduplicated at the
    spec level: every workload under every swept config, plus every attack
    scenario), used by the E10 throughput benchmark and CI smoke run.
    """
    sweep_configs = [ConfigVariant()]
    seen = {config_key(ConfigVariant())}
    for experiment in all_experiments():
        for variant in experiment_campaign(experiment).configs:
            key = config_key(variant)
            if key not in seen:
                seen.add(key)
                sweep_configs.append(variant)
    return CampaignSpec(
        name="full",
        description="all workloads x all swept configs, plus all attacks",
        workloads=_all_workloads(),
        configs=sweep_configs,
        attacks=sorted(ATTACK_REGISTRY),
        repeats=repeats,
    )


def config_key(variant: ConfigVariant) -> tuple:
    """Dedup key for a config variant (its parameter overrides)."""
    return tuple(sorted(variant.lofat_params.items()))


def _e1() -> CampaignSpec:
    return CampaignSpec(
        name="e1_overhead",
        description="LO-FAT vs C-FLAT overhead population: every workload, "
                    "paper configuration",
        workloads=_all_workloads(),
    )


def _e2() -> CampaignSpec:
    return CampaignSpec(
        name="e2_latency",
        description="engine internal latency population (same executions, "
                    "latency read from engine statistics)",
        workloads=_all_workloads(),
    )


def _e3() -> CampaignSpec:
    # E3 sweeps the area model's (n, l, depth) points; attesting a loop-heavy
    # workload under each point exercises the corresponding engine shapes.
    return CampaignSpec(
        name="e3_area",
        description="area sweep configuration points, attested on the "
                    "figure4 loop",
        workloads=_workloads(["figure4_loop"]),
        configs=[
            ConfigVariant(name="paper"),
            ConfigVariant(name="n2_l8", lofat_params={
                "indirect_target_bits": 2, "max_branches_per_path": 8,
                "max_indirect_branches_per_path": 2,
            }),
            ConfigVariant(name="n4_l12", lofat_params={
                "max_branches_per_path": 12,
                "max_indirect_branches_per_path": 3,
            }),
            ConfigVariant(name="depth5", lofat_params={"max_nested_loops": 5}),
        ],
    )


def _e4() -> CampaignSpec:
    return CampaignSpec(
        name="e4_figure4",
        description="paper Figure 4 loop under growing iteration counts",
        workloads=[WorkloadSelection(
            name="figure4_loop",
            input_sets=[[4], [8], [16], [32], [64]],
        )],
    )


def _e5() -> CampaignSpec:
    return CampaignSpec(
        name="e5_attacks",
        description="all attack scenarios plus their benign counterparts",
        workloads=_workloads(sorted({
            ATTACK_REGISTRY[name]().workload_name for name in ATTACK_REGISTRY
        })),
        attacks=sorted(ATTACK_REGISTRY),
    )


def _e6() -> CampaignSpec:
    return CampaignSpec(
        name="e6_hash_engine",
        description="hash engine pressure: event-dense workloads under "
                    "shrinking input buffers",
        workloads=_workloads(_LOOP_HEAVY),
        configs=[
            ConfigVariant(name="buffer8"),
            ConfigVariant(name="buffer4",
                          lofat_params={"hash_input_buffer_depth": 4}),
            ConfigVariant(name="buffer2",
                          lofat_params={"hash_input_buffer_depth": 2}),
        ],
    )


def _e7() -> CampaignSpec:
    return CampaignSpec(
        name="e7_protocol",
        description="full challenge-response protocol over every workload "
                    "(replay-verified)",
        workloads=_all_workloads(),
        verify_mode="replay",
    )


def _e8() -> CampaignSpec:
    # Counter widths below 8 bits are deliberately absent: they saturate on
    # long-running loops (the trade-off E8b measures prover-side), and a
    # saturated counter produces metadata the verifier rightly rejects --
    # campaign presets only sweep configuration points that stay verifiable
    # end to end.
    return CampaignSpec(
        name="e8_granularity",
        description="tracking granularity ablation: path width and counter "
                    "width sweeps",
        workloads=_workloads(_LOOP_HEAVY),
        configs=[
            ConfigVariant(name="paper"),
            ConfigVariant(name="l8", lofat_params={
                "max_branches_per_path": 8,
                "max_indirect_branches_per_path": 2,
            }),
            ConfigVariant(name="l24", lofat_params={
                "max_branches_per_path": 24,
                "max_indirect_branches_per_path": 4,
            }),
            ConfigVariant(name="counter16",
                          lofat_params={"counter_width_bits": 16}),
        ],
    )


def _e9() -> CampaignSpec:
    return CampaignSpec(
        name="e9_compression",
        description="loop compression population: loop-heavy workloads, "
                    "paper configuration",
        workloads=_workloads(_LOOP_HEAVY),
    )


def _e11() -> CampaignSpec:
    # The paper's comparative claim as one campaign: every loop-heavy
    # workload and every attack scenario attested under all three registered
    # schemes.  LO-FAT and C-FLAT detect every attack; static attestation is
    # *expected* to accept the attacked runs (it cannot see them), which the
    # scheme-aware job expectations encode.
    return CampaignSpec(
        name="e11_scheme_matrix",
        description="scheme comparison: lofat vs cflat vs static over the "
                    "loop-heavy workloads plus all attacks",
        workloads=_workloads(_LOOP_HEAVY),
        schemes=["lofat", "cflat", "static"],
        attacks=sorted(ATTACK_REGISTRY),
    )


def adversary_campaign(
    seed: Optional[int] = None,
    workloads: Optional[List[str]] = None,
    limits=None,
) -> CampaignSpec:
    """A seeded campaign over *generated* adversarial scenarios.

    Generates the per-workload adversary suites
    (:func:`repro.adversary.generator.generate_suite`), registers every
    generated attack in the shared registry, and returns a spec attesting
    the suite's workloads under all three schemes with every generated
    attack.  Deliberately **not** part of :data:`_PRESETS`: the experiment
    presets and :func:`full_campaign` must stay generation-free (their
    attack population is the hand-written corpus), and ``--experiment all``
    must not silently depend on a seed.

    Campaign workers resolve attacks by registry name; the registrations
    performed here reach the workers through process forking (the preferred
    start method), so on spawn-only platforms run this campaign with
    ``workers=1``.
    """
    from repro.adversary.generator import DEFAULT_WORKLOADS, generate_suite
    from repro.adversary.seeds import resolve_seed
    from repro.attacks import register_scenario

    seed = resolve_seed(seed)
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    attack_names: List[str] = []
    for workload_name in names:
        suite = generate_suite(workload_name, seed=seed, limits=limits)
        for scenario in suite.attacks:
            attack_names.append(register_scenario(scenario, replace=True))
    return CampaignSpec(
        name="adversary_s%d" % seed,
        description="generated adversarial scenarios (seed %d) under every "
                    "scheme" % seed,
        workloads=_workloads(names),
        schemes=["lofat", "cflat", "static"],
        attacks=sorted(attack_names),
    )


def family_campaign(
    seed: Optional[int] = None,
    families: Optional[List[str]] = None,
    input_sets: int = 2,
    repeats: int = 1,
) -> CampaignSpec:
    """A seeded campaign over *compiled* workload-family programs.

    Compiles the family matrix (:func:`repro.lang.families.family_matrix`),
    registers every member in the shared workload registry, and returns a
    spec attesting all of them under all three schemes with ``input_sets``
    seed-derived input vectors each.  Like :func:`adversary_campaign`, this
    is deliberately **not** part of :data:`_PRESETS`: the experiment presets
    must stay generation-free and seed-independent.

    Campaign workers resolve workloads by registry name; the registrations
    performed here reach the workers through process forking (the preferred
    start method), so on spawn-only platforms run this campaign with
    ``workers=1``.
    """
    from repro.adversary.seeds import resolve_seed
    from repro.lang.families import (
        family_matrix, get_family, member_inputs,
    )

    seed = resolve_seed(seed)
    workloads = family_matrix(names=families, seed=seed)
    selections: List[WorkloadSelection] = []
    for workload in workloads:
        family = get_family(
            next(t for t in workload.tags if t.startswith("family:"))
            .split(":", 1)[1])
        params = next(p for p in family.grid
                      if family.member_name(p) == workload.name)
        vectors = [member_inputs(family, params, seed, variant)
                   for variant in range(input_sets)]
        selections.append(
            WorkloadSelection(name=workload.name, input_sets=vectors))
    return CampaignSpec(
        name="family_s%d" % seed,
        description="compiled workload families (seed %d) under every "
                    "scheme" % seed,
        workloads=selections,
        schemes=["lofat", "cflat", "static"],
        repeats=repeats,
    )


_PRESETS: Dict[str, Callable[[], CampaignSpec]] = {
    "e1": _e1,
    "e2": _e2,
    "e3": _e3,
    "e4": _e4,
    "e5": _e5,
    "e6": _e6,
    "e7": _e7,
    "e8": _e8,
    "e9": _e9,
    "e11": _e11,
}
