"""The standing attestation verifier service (asyncio TCP).

Everything before this module verifies in-process: the campaign runner owns
both sides of the protocol.  :class:`AttestationServer` splits them the way
the paper deploys them -- a verifier daemon that serves many remote provers
concurrently over the length-prefixed framing of
:mod:`repro.attestation.framing`:

* One shared :class:`repro.attestation.Verifier` holds the nonce space and
  the offline program analyses; programs are registered lazily from the
  workload registry on first challenge.
* One shared :class:`repro.service.database.MeasurementDatabase` serves the
  expected ``(A, L)`` references.  A warm database (campaign runs, the
  persisted trace-digest keyspace of the capture-once pipeline) makes
  verification O(lookup); cold references are computed once per
  (scheme, program, input, config) through the :class:`SchemeSessionPool`
  and stored.
* Fail-closed by construction: malformed frames, oversized length prefixes,
  unknown frame types and mid-frame disconnects tear the one connection
  down (ERROR frame first when the socket still writes) without touching
  the others; a report whose scheme tag disagrees with its challenge is
  rejected with ``SCHEME_MISMATCH`` by the shared verifier.

Concurrency model: the server is a single asyncio event loop.  All verifier
and database *mutations* happen on the loop; only the pure reference
computation (a CPU replay or a stored-trace replay, no shared-state writes)
is pushed to the executor through the session pool, so slow cold references
never stall the accept loop or warm verifications.  The session pool also
single-flights duplicate in-flight references: N connections racing on the
same cold (scheme, program, input) tuple cost one computation, not N.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.attestation.framing import (
    MAX_FRAME_BYTES,
    FrameType,
    FramingError,
    error_payload,
    negotiate_version,
    read_frame,
    write_frame,
)
from repro.attestation.crypto import SecureKeyStore, verify_signature
from repro.attestation.protocol import AttestationReport
from repro.attestation.verifier import Verifier
from repro.cpu.core import CpuConfig
from repro.schemes import get_scheme
from repro.schemes.registry import (
    SCHEME_REGISTRY,
    SchemeNotFoundError,
    scheme_names,
)
from repro.service.database import MeasurementDatabase
from repro.service.fsutil import atomic_write_text
from repro.service.tracestore import TraceStore, execution_signature
from repro.workloads import get_workload

#: Per-connection cap on challenges issued but not yet answered; a client
#: that keeps requesting challenges without reporting is cut off before it
#: can grow the verifier's outstanding-nonce table without bound.
MAX_OUTSTANDING_CHALLENGES = 1024

#: Growth bound on provisioned devices: device ids arrive on the wire, so a
#: hostile client cycling random ids must not grow the key table without
#: bound.  Keys are derived deterministically from the id, so clearing the
#: table wholesale only costs re-derivation on the next HELLO.
MAX_PROVISIONED_DEVICES = 4096


@dataclass
class ServerStats:
    """Operational counters of one server instance (see the STATS frame)."""

    connections: int = 0
    active_connections: int = 0
    frames: int = 0
    challenges_issued: int = 0
    reports_verified: int = 0
    accepted: int = 0
    rejected: int = 0
    protocol_errors: int = 0
    by_scheme: Dict[str, int] = field(default_factory=dict)
    started: float = field(default_factory=time.time)

    def count_report(self, scheme: str, accepted: bool) -> None:
        self.reports_verified += 1
        # The scheme tag comes off the wire: bucket names outside the
        # registry under one key so a hostile client cannot grow this
        # mapping without bound.
        if scheme not in SCHEME_REGISTRY:
            scheme = "<unknown>"
        self.by_scheme[scheme] = self.by_scheme.get(scheme, 0) + 1
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "active_connections": self.active_connections,
            "frames": self.frames,
            "challenges_issued": self.challenges_issued,
            "reports_verified": self.reports_verified,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "protocol_errors": self.protocol_errors,
            "by_scheme": dict(self.by_scheme),
            "uptime_seconds": time.time() - self.started,
        }


class SchemeSessionPool:
    """Bounded, single-flighted reference computation per scheme.

    A cold verification needs a reference measurement -- a measurement
    session replaying the execution (or hashing the image) under the
    report's scheme.  The pool puts two limits around that work:

    * at most ``limit`` reference sessions per scheme run concurrently
      (each occupies an executor thread and the shared CPU-model caches),
    * identical in-flight references are *single-flighted*: concurrent
      misses on one database key await the first computation instead of
      repeating it.

    Results are returned to the caller, which stores them in the shared
    database on the event loop -- the pool itself never mutates shared
    state off-loop.
    """

    def __init__(self, limit: int = 4) -> None:
        self.limit = max(1, limit)
        self._semaphores: Dict[str, asyncio.Semaphore] = {}
        self._in_flight: Dict[tuple, asyncio.Future] = {}
        self.sessions_opened = 0
        self.single_flight_waits = 0

    def _semaphore(self, scheme: str) -> asyncio.Semaphore:
        semaphore = self._semaphores.get(scheme)
        if semaphore is None:
            semaphore = asyncio.Semaphore(self.limit)
            self._semaphores[scheme] = semaphore
        return semaphore

    async def reference(self, key: tuple, scheme: str, compute):
        """Run ``compute`` (a no-argument callable) for ``key``, pooled.

        ``compute`` is executed on the event loop's default executor under
        the scheme's concurrency slot.  Callers racing on the same key get
        the winner's result (or exception).
        """
        existing = self._in_flight.get(key)
        if existing is not None:
            self.single_flight_waits += 1
            return await asyncio.shield(existing)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._in_flight[key] = future
        try:
            async with self._semaphore(scheme):
                self.sessions_opened += 1
                result = await loop.run_in_executor(None, compute)
        except Exception as error:  # propagate to every waiter, then raise
            if not future.done():
                future.set_exception(error)
                # The retrieval below keeps "never retrieved" warnings away
                # when no one else was waiting.
                future.exception()
            raise
        finally:
            self._in_flight.pop(key, None)
        if not future.done():
            future.set_result(result)
        return result

    def stats(self) -> dict:
        return {
            "limit": self.limit,
            "sessions_opened": self.sessions_opened,
            "single_flight_waits": self.single_flight_waits,
        }


class AttestationServer:
    """An asyncio TCP verifier serving the scheme-tagged wire protocol.

    Parameters:
        host/port: bind address; port 0 picks an ephemeral port (read it
            back from :attr:`port` after :meth:`start`).
        database: shared measurement database (fresh one by default).
        trace_store: optional capture store; when a challenged execution
            has a stored benign capture, cold references replay the trace
            instead of re-simulating (the capture-once pipeline's
            verify-many half, now over the wire).
        allow_shutdown: honour the SHUTDOWN frame (CI smoke and tests; a
            production deployment leaves this off and stops via
            :meth:`stop`).
        session_limit: per-scheme concurrent reference-session cap.
        max_frame_bytes: framing cap handed to :mod:`repro.attestation.framing`.
        enforce_policies: install a :class:`StaticPolicy` for each program
            when it is first registered (loaded from the shared database if
            one was persisted there, derived from the program analysis
            otherwise), so infeasible reports are rejected with
            ``POLICY_VIOLATION`` before any reference is computed.
        sock: an already-bound socket to serve on instead of binding
            ``host:port``.  The fleet deployment uses this for both
            dispatcher modes: a per-worker ``SO_REUSEPORT`` socket, or one
            pre-fork listening socket every worker inherits and accepts on.
        ready_file: when set, :meth:`start` atomically writes
            ``"host:port\\n"`` here once the server is accepting -- the
            deterministic readiness signal ``repro serve --ready-file``
            exposes (CI polls the file instead of grepping logs).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        database: Optional[MeasurementDatabase] = None,
        trace_store: Optional[TraceStore] = None,
        cpu_config: Optional[CpuConfig] = None,
        allow_shutdown: bool = False,
        session_limit: int = 4,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        enforce_policies: bool = True,
        sock=None,
        ready_file: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._listen_sock = sock
        self.ready_file = ready_file
        self.database = database if database is not None else MeasurementDatabase()
        self.trace_store = trace_store
        self.cpu_config = cpu_config or CpuConfig()
        self.allow_shutdown = allow_shutdown
        self.enforce_policies = enforce_policies
        self.max_frame_bytes = max_frame_bytes
        self.verifier = Verifier(cpu_config=self.cpu_config)
        self.pool = SchemeSessionPool(limit=session_limit)
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._registered_programs: Dict[str, object] = {}
        self._provisioned_devices: set = set()
        #: CPU-config digest memoised once: every capture lookup shares it.
        self._cpu_digest: Optional[str] = None
        #: Per-scheme (config, config digest), memoised: the canonical
        #: config hashing (asdict + JSON + SHA3) would otherwise run once
        #: per verified report.
        self._scheme_configs: Dict[str, Tuple[object, str]] = {}

    def _scheme_config(self, scheme_name: str) -> Tuple[object, str]:
        cached = self._scheme_configs.get(scheme_name)
        if cached is None:
            config = self.verifier.scheme_config(scheme_name)
            cached = (config, get_scheme(scheme_name).config_digest(config))
            self._scheme_configs[scheme_name] = cached
        return cached

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._stopping = asyncio.Event()
        if self._listen_sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._listen_sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.ready_file is not None:
            atomic_write_text(self.ready_file, "%s:%d\n" % (self.host, self.port))

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop` or a SHUTDOWN frame arrives."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self.stop()

    async def drain(self, timeout: float = 5.0) -> bool:
        """Stop accepting, then wait for in-flight sessions to finish.

        Returns True when every active connection completed inside
        ``timeout``; False means stragglers were abandoned (their sockets
        die with the process).  The fleet worker calls this on SIGTERM so a
        drain never cuts a verification mid-report.
        """
        await self.stop()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self.stats.active_connections > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        return self.stats.active_connections == 0

    # ---------------------------------------------------------- provisioning
    def _program(self, program_id: str):
        """Resolve and lazily register ``program_id`` with the verifier.

        With ``enforce_policies`` on, first registration also installs the
        program's StaticPolicy: a policy persisted in the shared database
        wins (no dataflow passes run); otherwise the policy is derived from
        the analysis once and written back to the database so later server
        processes skip the derivation.
        """
        program = self._registered_programs.get(program_id)
        if program is None:
            program = get_workload(program_id).build()
            self.verifier.register_program(program_id, program)
            if self.enforce_policies:
                policy = self.database.lookup_policy(program.digest)
                policy = self.verifier.install_policy(program_id, policy)
                self.database.store_policy(policy)
            self._registered_programs[program_id] = program
        return program

    def _provision_device(self, device_id: str) -> None:
        """Install the device's verification key (derived provisioning model).

        The key store derives device keys deterministically from the device
        id (see :mod:`repro.attestation.crypto`), modelling keys provisioned
        at manufacturing time -- so the server can provision any device that
        announces itself in HELLO without a key exchange on the wire.
        """
        if device_id not in self._provisioned_devices:
            if len(self._provisioned_devices) >= MAX_PROVISIONED_DEVICES:
                self._provisioned_devices.clear()
                self.verifier.clear_device_keys()
            self.verifier.register_device_key(
                device_id, SecureKeyStore(device_id=device_id).export_for_verifier()
            )
            self._provisioned_devices.add(device_id)

    # ------------------------------------------------------------- verifying
    async def _expected_measurement(
        self, scheme_name: str, program_id: str, inputs: Tuple[int, ...]
    ) -> Tuple[bytes, bytes]:
        """The expected ``(A, serialized L)`` for one challenged execution.

        Warm path: a database hit straight from the event loop.  Cold path:
        the reference is computed through the session pool (stored-capture
        replay when the trace store has the benign execution, golden replay
        otherwise) and stored under both database keyspaces on the loop.
        """
        program = self._program(program_id)
        backend = get_scheme(scheme_name)
        config, cfg_digest = self._scheme_config(scheme_name)
        key = MeasurementDatabase.key_for(
            program, inputs, config, scheme_name, cfg_digest)
        entry = self.database.lookup(
            program, inputs, config, scheme_name, cfg_digest)
        if entry is not None:
            return entry

        capture = None
        if self.trace_store is not None and backend.reference_requires_execution:
            if self._cpu_digest is None:
                from repro.service.tracestore import cpu_config_digest

                self._cpu_digest = cpu_config_digest(self.cpu_config)
            signature = execution_signature(
                program_id, inputs, attack=None, cpu_digest=self._cpu_digest
            )
            capture = self.trace_store.get(signature)
            if capture is not None and capture.replayable:
                stored = self.database.lookup_trace(
                    scheme_name, capture.trace_digest, config, cfg_digest)
                if stored is not None:
                    self.database.store(
                        program, inputs, config, stored[0], stored[1],
                        scheme_name)
                    return stored

        def compute() -> Tuple[bytes, bytes]:
            if capture is not None and capture.replayable:
                measured = backend.replay_measurement(
                    program, capture.trace(), config=config,
                    batch_size=self.cpu_config.monitor_batch_size,
                )
            else:
                measured = backend.reference_measurement(
                    program, list(inputs), config=config,
                    cpu_config=self.cpu_config,
                )
            return measured.measurement, measured.metadata.to_bytes()

        measurement, metadata = await self.pool.reference(
            key, scheme_name, compute)
        # Back on the loop: store under both keyspaces.
        self.database.store(
            program, inputs, config, measurement, metadata, scheme_name)
        if capture is not None and capture.replayable:
            self.database.store_trace(
                scheme_name, capture.trace_digest, config,
                measurement, metadata, cfg_digest,
            )
        return measurement, metadata

    async def _verify_report(self, report: AttestationReport, device_id: str):
        """Verify one report against the shared database (seeding on demand).

        The expensive part -- computing a cold reference -- only runs for a
        report that is *bound to an outstanding challenge and carries a
        valid device signature*.  Anything else (garbage signatures, stale
        nonces, mismatched tags) reaches the verifier's fail-closed checks
        without costing a simulation or a database entry, so a hostile
        client cannot drive unbounded reference computation.
        """
        challenge = self.verifier.outstanding_challenge(report.nonce)
        if (
            challenge is not None
            and challenge.scheme == report.scheme
            and challenge.program_id == report.program_id
            and verify_signature(
                report.payload, report.nonce, report.signature,
                SecureKeyStore(device_id=device_id).export_for_verifier(),
            )
        ):
            try:
                expected = await self._expected_measurement(
                    challenge.scheme, challenge.program_id,
                    tuple(challenge.inputs),
                )
            except SchemeNotFoundError:
                expected = None
            if expected is not None:
                self.verifier.seed_measurement(
                    challenge.program_id, challenge.inputs,
                    expected[0], expected[1], scheme=challenge.scheme,
                )
        return self.verifier.verify(report, device_id=device_id, mode="database")

    # ------------------------------------------------------------ connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self.stats.active_connections += 1
        device_id = "prover-0"
        issued_nonces: set = set()
        try:
            device_id = await self._handshake(reader, writer)
            if device_id is None:
                return
            while True:
                try:
                    frame = await read_frame(reader, self.max_frame_bytes)
                except FramingError as error:
                    self.stats.protocol_errors += 1
                    await self._send_error(writer, error.code, str(error),
                                           fatal=True)
                    return
                if frame is None:
                    return
                self.stats.frames += 1
                frame_type, payload = frame
                if frame_type == FrameType.BYE:
                    await write_frame(writer, FrameType.BYE)
                    return
                if frame_type == FrameType.SHUTDOWN:
                    if not self.allow_shutdown:
                        self.stats.protocol_errors += 1
                        await self._send_error(
                            writer, "shutdown_refused",
                            "server was not started with allow_shutdown",
                            fatal=True)
                        return
                    await write_frame(writer, FrameType.BYE)
                    if self._stopping is not None:
                        self._stopping.set()
                    return
                if frame_type == FrameType.STATS_REQUEST:
                    document = self.stats.as_dict()
                    document["database"] = self.database.stats()
                    document["session_pool"] = self.pool.stats()
                    await write_frame(
                        writer, FrameType.STATS,
                        json.dumps(document).encode("utf-8"))
                    continue
                if frame_type == FrameType.CHALLENGE_REQUEST:
                    if not await self._handle_challenge_request(
                            writer, payload, issued_nonces):
                        return
                    continue
                if frame_type == FrameType.REPORT:
                    if not await self._handle_report(
                            writer, payload, device_id, issued_nonces):
                        return
                    continue
                # A frame type that decodes but has no business arriving
                # here (HELLO twice, server-only types): fail closed.
                self.stats.protocol_errors += 1
                await self._send_error(
                    writer, "unexpected_frame",
                    "frame type %s is not valid at this point" % frame_type.name,
                    fatal=True)
                return
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            self.stats.protocol_errors += 1
        finally:
            # Withdraw this connection's unanswered challenges: their nonces
            # must never verify later.
            for nonce in issued_nonces:
                self.verifier.discard_challenge(nonce)
            self.stats.active_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handshake(self, reader, writer) -> Optional[str]:
        """Run the HELLO/HELLO_ACK exchange.

        Returns the announced device id, or None when the connection must be
        torn down (framing error, missing HELLO, version mismatch).
        """
        try:
            frame = await read_frame(reader, self.max_frame_bytes)
        except FramingError as error:
            self.stats.protocol_errors += 1
            await self._send_error(writer, error.code, str(error), fatal=True)
            return None
        if frame is None:
            return None
        frame_type, payload = frame
        self.stats.frames += 1
        if frame_type != FrameType.HELLO:
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "hello_expected",
                "first frame must be HELLO, got %s" % frame_type.name,
                fatal=True)
            return None
        try:
            document = json.loads(payload.decode("utf-8"))
            versions = [int(v) for v in document["versions"]]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "malformed_hello", "HELLO payload is not valid",
                fatal=True)
            return None
        version = negotiate_version(versions)
        if version is None:
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "version_mismatch",
                "no common protocol version (client offered %r)" % versions,
                fatal=True)
            return None
        device_id = str(document.get("device_id", "prover-0"))
        self._provision_device(device_id)
        await write_frame(
            writer, FrameType.HELLO_ACK,
            json.dumps({
                "version": version,
                "server": "repro-attestation-server",
                "schemes": scheme_names(),
            }).encode("utf-8"))
        return device_id

    async def _handle_challenge_request(
        self, writer, payload: bytes, issued_nonces: set
    ) -> bool:
        try:
            document = json.loads(payload.decode("utf-8"))
            scheme = str(document["scheme"])
            program_id = str(document["program_id"])
            inputs = tuple(int(v) for v in document.get("inputs", []))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "malformed_request",
                "challenge request payload is not valid", fatal=True)
            return False
        if len(issued_nonces) >= MAX_OUTSTANDING_CHALLENGES:
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "too_many_outstanding",
                "connection exceeded %d unanswered challenges"
                % MAX_OUTSTANDING_CHALLENGES, fatal=True)
            return False
        try:
            get_scheme(scheme)
        except SchemeNotFoundError as error:
            # Request-level failure: reject the request, keep the session.
            await self._send_error(writer, "unknown_scheme", str(error),
                                   fatal=False)
            return True
        try:
            self._program(program_id)
        except KeyError as error:
            await self._send_error(writer, "unknown_program", str(error),
                                   fatal=False)
            return True
        challenge = self.verifier.challenge(program_id, inputs, scheme=scheme)
        issued_nonces.add(challenge.nonce)
        self.stats.challenges_issued += 1
        await write_frame(writer, FrameType.CHALLENGE, challenge.to_bytes())
        return True

    async def _handle_report(
        self, writer, payload: bytes, device_id: str, issued_nonces: set
    ) -> bool:
        try:
            report = AttestationReport.from_bytes(payload)
        except (ValueError, IndexError) as error:
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "malformed_report",
                "report does not deserialise: %s" % error, fatal=True)
            return False
        try:
            verdict = await self._verify_report(report, device_id)
        except Exception as error:  # noqa: BLE001 - one connection, not the server
            # An internal failure (corrupt trace blob, I/O error during a
            # cold reference) gets the same fail-closed treatment as
            # malformed input: ERROR frame, this connection only.
            self.stats.protocol_errors += 1
            await self._send_error(
                writer, "internal_error",
                "verification failed internally: %s" % error, fatal=True)
            return False
        if self.verifier.outstanding_challenge(report.nonce) is None:
            # Only drop the slot when the verifier actually consumed the
            # nonce; a rejection that leaves the challenge outstanding
            # (wrong scheme tag, bad signature) must still be withdrawn at
            # disconnect and keeps counting against the per-connection cap.
            issued_nonces.discard(report.nonce)
        self.stats.count_report(report.scheme, verdict.accepted)
        await write_frame(
            writer, FrameType.VERDICT,
            json.dumps({
                "accepted": verdict.accepted,
                "reason": verdict.reason.value,
                "detail": verdict.detail,
            }).encode("utf-8"))
        return True

    async def _send_error(
        self, writer, code: str, detail: str, fatal: bool
    ) -> None:
        """Best-effort ERROR frame (the socket may already be gone)."""
        try:
            await write_frame(
                writer, FrameType.ERROR, error_payload(code, detail, fatal))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
