"""Multi-process attestation verifier fleet.

E14 measured a single asyncio :class:`~repro.service.server.AttestationServer`
process saturating around ~3k reports/sec -- the GIL ceiling, not the
protocol's.  The verifier is a passive party that only checks hashes, so the
faithful production deployment is horizontal: N identical worker processes,
each running its own event loop, sharing one read-mostly measurement
database.  This module is that deployment.

Dispatcher modes
----------------

``reuseport``
    Every worker binds its own listening socket with ``SO_REUSEPORT`` to the
    same address; the kernel load-balances incoming connections across the
    listeners (hashed on the 4-tuple).  The parent holds a bound -- but not
    listening -- probe socket on the port for the fleet's lifetime, which
    pins an ephemeral ``port 0`` choice and keeps the reservation while
    workers restart.  This is the preferred mode wherever the option exists
    (Linux >= 3.9, BSDs).

``handoff``
    The parent binds and listens on one socket *before* forking; every
    worker inherits the file descriptor and accepts on it.  The kernel wakes
    one (or a few) blocked acceptors per connection -- classic pre-fork
    accept sharing.  This is the fallback when ``SO_REUSEPORT`` is missing;
    it requires the ``fork`` start method.

``auto`` picks ``reuseport`` when available, else ``handoff``.

Database lifecycle
------------------

The parent loads the measurement database once.  Each worker layers a fresh
:class:`~repro.service.database.MeasurementDatabase` over that base as a
read-only ``snapshot`` (process-inherited copy-on-write under ``fork``;
re-loaded from the saved file under spawn) and mirrors its own writes into a
private append-only :class:`~repro.service.database.DeltaLog` under the
state directory.  Warm verifies therefore touch no lock and cross no process
boundary.  On drain the parent replays every worker's delta log into the
base and saves it atomically -- byte-identical to what a single-process
server computing the same references would have written.

Drain semantics
---------------

``stop()`` SIGTERMs the workers; each worker stops accepting, finishes its
in-flight sessions (:meth:`AttestationServer.drain`), writes its stats file,
closes its delta log and exits 0.  A SHUTDOWN frame accepted by any worker
(``allow_shutdown``) touches a stop flag in the state directory, which the
supervising parent notices and turns into a fleet-wide drain -- so the wire
shutdown used by CI tears the whole fleet down cleanly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cpu.core import CpuConfig
from repro.service.database import DeltaLog, MeasurementDatabase
from repro.service.fsutil import atomic_write_text

DISPATCHER_MODES = ("auto", "reuseport", "handoff")

#: Listen backlog for the shared socket.  Reconnect storms arrive as a
#: synchronized burst of SYNs; a deep backlog absorbs them instead of
#: refusing connections.
LISTEN_BACKLOG = 512


class FleetError(RuntimeError):
    """Fleet deployment misconfiguration or worker failure."""


def reuseport_available() -> bool:
    """True when a socket accepts the SO_REUSEPORT option on this host."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def resolve_dispatcher(mode: str) -> str:
    """Resolve ``auto`` against the host; validate explicit choices."""
    if mode not in DISPATCHER_MODES:
        raise FleetError("unknown dispatcher mode: %r" % (mode,))
    if mode == "auto":
        return "reuseport" if reuseport_available() else "handoff"
    if mode == "reuseport" and not reuseport_available():
        raise FleetError("SO_REUSEPORT is not available on this host")
    return mode


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


@dataclass
class FleetSummary:
    """What the drain produced, aggregated across workers."""

    workers: int
    dispatcher: str
    clean: bool
    worker_exit_codes: List[int]
    delta_records: int
    merged_entries: int
    database_entries: int
    stats: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "dispatcher": self.dispatcher,
            "clean": self.clean,
            "worker_exit_codes": list(self.worker_exit_codes),
            "delta_records": self.delta_records,
            "merged_entries": self.merged_entries,
            "database_entries": self.database_entries,
            "stats": dict(self.stats),
        }


def _worker_ready_path(state_dir: str, index: int) -> str:
    return os.path.join(state_dir, "worker-%d.ready" % index)


def _worker_delta_path(state_dir: str, index: int) -> str:
    return os.path.join(state_dir, "delta-%d.jsonl" % index)


def _worker_stats_path(state_dir: str, index: int) -> str:
    return os.path.join(state_dir, "stats-%d.json" % index)


def _stop_flag_path(state_dir: str) -> str:
    return os.path.join(state_dir, "stop.requested")


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock


def _fleet_worker_main(
    index: int,
    host: str,
    port: int,
    dispatcher: str,
    state_dir: str,
    listen_sock: Optional[socket.socket],
    base_database: Optional[MeasurementDatabase],
    database_path: Optional[str],
    trace_dir: Optional[str],
    cpu_config: Optional[CpuConfig],
    allow_shutdown: bool,
    session_limit: int,
    enforce_policies: bool,
) -> None:
    """Entry point of one fleet worker process.

    Exits 0 on a clean drain (SIGTERM or wire shutdown); any exception
    propagates and the nonzero exit code is what the parent reports.
    """
    import asyncio

    from repro.service.server import AttestationServer

    # The parent owns Ctrl-C: it turns SIGINT into an orderly SIGTERM drain,
    # so workers must not race it with their own KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    state = {"terminated": False}

    # Process-level SIGTERM handler from the first instruction: a drain
    # signal must never hit the default (fatal) action, whichever side of
    # the event loop's lifetime it lands on.  The loop installs its own
    # loop-safe handler over this one while serving.
    signal.signal(signal.SIGTERM, lambda *_: state.__setitem__("terminated", True))

    snapshot = base_database
    if snapshot is None and database_path is not None and os.path.exists(database_path):
        snapshot = MeasurementDatabase.load(database_path)
    database = MeasurementDatabase(snapshot=snapshot)
    delta = DeltaLog(_worker_delta_path(state_dir, index))
    database.attach_delta_log(delta)

    trace_store = None
    if trace_dir is not None:
        from repro.service.tracestore import TraceStore

        trace_store = TraceStore(trace_dir)

    if dispatcher == "reuseport":
        sock = _reuseport_socket(host, port)
        sock.listen(LISTEN_BACKLOG)
    else:
        assert listen_sock is not None
        sock = listen_sock

    server = AttestationServer(
        host=host,
        port=port,
        database=database,
        trace_store=trace_store,
        cpu_config=cpu_config,
        allow_shutdown=allow_shutdown,
        session_limit=session_limit,
        enforce_policies=enforce_policies,
        sock=sock,
        ready_file=_worker_ready_path(state_dir, index),
    )

    async def _serve() -> bool:
        loop = asyncio.get_running_loop()

        def _on_term() -> None:
            state["terminated"] = True
            if server._stopping is not None:
                server._stopping.set()

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_term)
        except (NotImplementedError, RuntimeError):
            signal.signal(signal.SIGTERM, lambda *_: _on_term())
        await server.start()
        if state["terminated"]:
            # SIGTERM landed in the start window, before the event existed.
            assert server._stopping is not None
            server._stopping.set()
        assert server._stopping is not None
        await server._stopping.wait()
        return await server.drain()

    try:
        drained = asyncio.run(_serve())
        # Draining is done; a late SIGTERM from the parent's fleet-wide
        # stop (the wire-shutdown race) must not kill the stats write.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        if not state["terminated"]:
            # The stop came over the wire (SHUTDOWN frame): tell the parent
            # so it drains the sibling workers too.
            atomic_write_text(_stop_flag_path(state_dir), "worker-%d\n" % index)
        payload = {
            "worker": index,
            "drained": drained,
            "server": server.stats.as_dict(),
            "database": database.stats(),
        }
        atomic_write_text(
            _worker_stats_path(state_dir, index),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
    finally:
        delta.close()
    sys.exit(0)


class FleetServer:
    """Parent-side supervisor of an N-worker verifier fleet.

    The parent never runs an event loop: it binds (per the dispatcher
    mode), forks workers, waits for their ready files, then supervises --
    polling for the wire-shutdown stop flag and for worker death.  ``stop``
    drains the workers and merges their delta logs into the base database.

    Typical use::

        fleet = FleetServer(port=0, workers=4, database_path="db.json")
        fleet.start()                      # returns once all workers accept
        ...                                # traffic flows
        summary = fleet.stop()             # drain + merge + save
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        dispatcher: str = "auto",
        state_dir: Optional[str] = None,
        database_path: Optional[str] = None,
        trace_dir: Optional[str] = None,
        cpu_config: Optional[CpuConfig] = None,
        allow_shutdown: bool = False,
        session_limit: int = 4,
        enforce_policies: bool = True,
        ready_file: Optional[str] = None,
        ready_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise FleetError("a fleet needs at least one worker")
        self.host = host
        self.port = port
        self.workers = workers
        self.dispatcher = resolve_dispatcher(dispatcher)
        self.state_dir = state_dir
        self.database_path = database_path
        self.trace_dir = trace_dir
        self.cpu_config = cpu_config
        self.allow_shutdown = allow_shutdown
        self.session_limit = session_limit
        self.enforce_policies = enforce_policies
        self.ready_file = ready_file
        self.ready_timeout = ready_timeout
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._parent_sock: Optional[socket.socket] = None
        self._base_database: Optional[MeasurementDatabase] = None
        self._summary: Optional[FleetSummary] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Bind, fork the workers and block until every worker is accepting."""
        if self._processes:
            raise FleetError("fleet already started")
        if self.state_dir is None:
            self.state_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        os.makedirs(self.state_dir, exist_ok=True)
        stop_flag = _stop_flag_path(self.state_dir)
        if os.path.exists(stop_flag):
            os.unlink(stop_flag)

        if self.database_path is not None and os.path.exists(self.database_path):
            self._base_database = MeasurementDatabase.load(self.database_path)
        else:
            self._base_database = MeasurementDatabase()

        ctx = _fork_context()
        if self.dispatcher == "handoff":
            if ctx is None:
                raise FleetError(
                    "handoff dispatch needs the fork start method "
                    "(workers inherit the listening socket)"
                )
            self._parent_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._parent_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._parent_sock.bind((self.host, self.port))
            self._parent_sock.listen(LISTEN_BACKLOG)
            self.port = self._parent_sock.getsockname()[1]
        else:
            # Bound-but-not-listening probe: resolves port 0 and keeps the
            # reservation for the fleet's lifetime without accepting.
            self._parent_sock = _reuseport_socket(self.host, self.port)
            self.port = self._parent_sock.getsockname()[1]

        spawn_ctx = ctx if ctx is not None else multiprocessing.get_context("spawn")
        inherited_db = self._base_database if ctx is not None else None
        for index in range(self.workers):
            ready = _worker_ready_path(self.state_dir, index)
            if os.path.exists(ready):
                os.unlink(ready)
            process = spawn_ctx.Process(
                target=_fleet_worker_main,
                name="fleet-worker-%d" % index,
                args=(
                    index,
                    self.host,
                    self.port,
                    self.dispatcher,
                    self.state_dir,
                    self._parent_sock if self.dispatcher == "handoff" else None,
                    inherited_db,
                    self.database_path,
                    self.trace_dir,
                    self.cpu_config,
                    self.allow_shutdown,
                    self.session_limit,
                    self.enforce_policies,
                ),
            )
            process.start()
            self._processes.append(process)

        deadline = time.monotonic() + self.ready_timeout
        pending = set(range(self.workers))
        while pending and time.monotonic() < deadline:
            for index in sorted(pending):
                process = self._processes[index]
                if not process.is_alive() and process.exitcode not in (None, 0):
                    self.stop()
                    raise FleetError(
                        "fleet worker %d died during startup (exit %s)"
                        % (index, process.exitcode)
                    )
                if os.path.exists(_worker_ready_path(self.state_dir, index)):
                    pending.discard(index)
            time.sleep(0.02)
        if pending:
            self.stop()
            raise FleetError(
                "fleet workers %s not ready within %.1fs"
                % (sorted(pending), self.ready_timeout)
            )
        if self.ready_file is not None:
            atomic_write_text(self.ready_file, "%s:%d\n" % (self.host, self.port))

    def wait(self, poll_interval: float = 0.05) -> None:
        """Block until a wire shutdown or every worker exits.

        Raises :class:`FleetError` if any worker dies with a nonzero exit
        code while the fleet is supposed to be serving.
        """
        assert self.state_dir is not None
        stop_flag = _stop_flag_path(self.state_dir)
        while True:
            if os.path.exists(stop_flag):
                return
            alive = 0
            for index, process in enumerate(self._processes):
                if process.is_alive():
                    alive += 1
                elif process.exitcode not in (0, None):
                    raise FleetError(
                        "fleet worker %d exited %s while serving"
                        % (index, process.exitcode)
                    )
            if alive == 0:
                return
            time.sleep(poll_interval)

    def stop(self, drain_timeout: float = 10.0) -> FleetSummary:
        """Drain the workers, merge their delta logs, save the database."""
        if self._summary is not None:
            return self._summary
        assert self.state_dir is not None
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + drain_timeout
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        exit_codes = [
            process.exitcode if process.exitcode is not None else -1
            for process in self._processes
        ]

        if self._parent_sock is not None:
            self._parent_sock.close()
            self._parent_sock = None

        base = self._base_database
        if base is None:
            base = MeasurementDatabase()
        delta_records = 0
        for index in range(len(self._processes)):
            delta_path = _worker_delta_path(self.state_dir, index)
            if os.path.exists(delta_path):
                delta_records += base.merge_delta_log(delta_path)
        database_entries = len(base)
        if self.database_path is not None:
            base.save(self.database_path)

        stats = self._aggregate_stats()
        self._summary = FleetSummary(
            workers=len(self._processes),
            dispatcher=self.dispatcher,
            clean=all(code == 0 for code in exit_codes),
            worker_exit_codes=exit_codes,
            delta_records=delta_records,
            merged_entries=delta_records,
            database_entries=database_entries,
            stats=stats,
        )
        return self._summary

    def run(self) -> FleetSummary:
        """``start`` + ``wait`` + ``stop`` -- the CLI serving loop."""
        self.start()
        try:
            self.wait()
        finally:
            summary = self.stop()
        return summary

    # ------------------------------------------------------------ reporting
    def _aggregate_stats(self) -> Dict[str, object]:
        """Sum the per-worker stats files into one fleet-wide view."""
        assert self.state_dir is not None
        totals: Dict[str, int] = {}
        by_scheme: Dict[str, int] = {}
        per_worker = []
        for index in range(len(self._processes)):
            path = _worker_stats_path(self.state_dir, index)
            if not os.path.exists(path):
                continue
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            per_worker.append(payload)
            server_stats = payload.get("server", {})
            for key in (
                "connections",
                "frames",
                "challenges_issued",
                "reports_verified",
                "accepted",
                "rejected",
                "protocol_errors",
            ):
                value = server_stats.get(key)
                if isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value
            for scheme, count in (server_stats.get("by_scheme") or {}).items():
                if isinstance(count, int):
                    by_scheme[scheme] = by_scheme.get(scheme, 0) + count
        aggregated: Dict[str, object] = dict(totals)
        if by_scheme:
            aggregated["by_scheme"] = by_scheme
        aggregated["workers_reporting"] = len(per_worker)
        aggregated["per_worker"] = per_worker
        return aggregated
