"""Prover-side job execution (runs inside worker processes).

Each campaign job models one remote prover device answering one attestation
challenge under the job's attestation scheme (LO-FAT, C-FLAT, static, ...).
The function :func:`execute_prover_job` is the unit the
:class:`repro.service.runner.CampaignRunner` ships to ``multiprocessing``
workers; everything it touches is rebuilt from registry names inside the
worker process -- including the scheme and its configuration, resolved from
:mod:`repro.schemes` -- and everything it returns is a plain picklable value
-- the signed :class:`repro.attestation.protocol.AttestationReport` plus
operational numbers.  The hardware-protected signing key never crosses the
process boundary (it is derived in-worker from the device id, and
:class:`repro.attestation.crypto.SecureKeyStore` refuses to pickle).

Per-process caches keep repeated jobs cheap: assembled programs are reused
across jobs (``maxsize`` bounded), and the CPU's decoded-instruction cache is
shared process-wide, so a worker that attests the same binary many times only
assembles and decodes it once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional, Tuple

import hashlib

from repro.attacks import get_attack
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.attestation.prover import Prover
from repro.cpu.core import CpuConfig
from repro.isa.assembler import Program
from repro.service.campaign import CampaignJob
from repro.workloads import get_workload

#: The payload shipped to a worker: the job plus the challenge nonce minted
#: by the verifier in the parent process.
ProverJobPayload = Tuple[CampaignJob, bytes]


@dataclass
class ProverResponse:
    """What one prover execution sends back to the verifier service."""

    job_id: str
    report: AttestationReport
    instructions: int
    cycles: int
    pairs_hashed: int
    control_flow_events: int
    prover_seconds: float


def _build_signature(workload) -> str:
    """Digest identifying what ``workload.build()`` would produce.

    For a plain :class:`repro.workloads.common.Workload` the assembly source
    is the sole input of ``build()``, so the signature covers exactly that.
    A subclass may parameterize ``build()`` on any instance attribute, so
    for subclasses every attribute is folded in via ``repr``; either way a
    registry re-registration under the same name never serves a stale
    cached :class:`Program`.  The failure mode is deliberately asymmetric:
    an attribute without a value-bearing repr (a callable, say) yields a
    fresh signature per registry instantiation, costing a cache miss and a
    reassembly -- never a wrong program.
    """
    from repro.workloads.common import Workload

    hasher = hashlib.sha3_256()
    hasher.update(type(workload).__qualname__.encode("utf-8"))
    hasher.update(b"\x00")
    if type(workload) is Workload:
        hasher.update(workload.source.encode("utf-8"))
    else:
        for key, value in sorted(vars(workload).items()):
            hasher.update(("%s=%r;" % (key, value)).encode("utf-8"))
    return hasher.hexdigest()


@lru_cache(maxsize=128)
def _assemble_cached(workload_name: str, build_signature: str) -> Program:
    """Assemble (once per worker process) the identified workload build."""
    return get_workload(workload_name).build()


def _assembled_program(workload_name: str) -> Program:
    """The assembled program for ``workload_name``, cached per build.

    The cache key includes the build signature, not just the name: two jobs
    that share a workload name but were registered with different sources
    (common in tests that re-register workloads) each get their own
    :class:`Program`.
    """
    return _assemble_cached(workload_name, _build_signature(get_workload(workload_name)))


def execute_prover_job(
    payload: ProverJobPayload,
    device_id: str = "prover-0",
    cpu_config: Optional[CpuConfig] = None,
) -> ProverResponse:
    """Run one campaign job on a simulated prover device and sign the result.

    ``cpu_config`` carries the runner's core-model parameters (instruction
    budget, latencies) to the prover side, so prover and verifier simulate
    the same machine.  The execution always streams its trace into the
    scheme's measurement session (``collect_trace`` is forced off): the
    monitor consumes records as they retire, so memory stays flat no matter
    how long the workload runs.
    """
    job, nonce = payload
    program = _assembled_program(job.workload)
    prover = Prover(
        {job.workload: program},
        cpu_config=replace(cpu_config or CpuConfig(), collect_trace=False),
        device_id=device_id,
    )
    prover.configure_scheme(job.scheme, job.scheme_config())
    if job.attack is not None:
        scenario = get_attack(job.attack)
        prover.install_attack(scenario.prover_hook(program))

    challenge = AttestationChallenge(
        program_id=job.workload, inputs=job.inputs, nonce=nonce,
        scheme=job.scheme,
    )
    started = time.perf_counter()
    report = prover.attest(challenge)
    elapsed = time.perf_counter() - started

    run = prover.last_run
    stats = run.engine_stats if run else {}
    return ProverResponse(
        job_id=job.job_id,
        report=report,
        instructions=run.instructions if run else 0,
        cycles=run.cycles if run else 0,
        pairs_hashed=int(stats.get("pairs_hashed", 0)),
        control_flow_events=int(stats.get("control_flow_events", 0)),
        prover_seconds=elapsed,
    )
