"""Prover-side job execution (runs inside worker processes).

Each campaign job models one remote prover device answering one attestation
challenge under the job's attestation scheme (LO-FAT, C-FLAT, static, ...).
Since the capture-once / verify-many refactor the prover side is two stages:

* :func:`execute_capture_job` -- **stage 1**: run the CPU simulation once
  for a unique *execution signature* (program build, inputs, attack, core
  config -- scheme-independent, see :mod:`repro.service.tracestore`) and
  return the compact control-flow trace plus the execution's observable
  outputs.  This is the only stage with a CPU in the loop.
* :func:`execute_attest_job` -- **stage 2**: replay a stored trace through
  the job's scheme session (:meth:`AttestationScheme.replay_measurement`),
  sign the measurement and return the report -- byte-identical to live
  execution, no simulation.  A per-process replay cache (a
  :class:`repro.service.database.MeasurementDatabase` keyed by trace
  digest) makes repeated (scheme, config, trace) replays O(lookup); its
  hit/miss counters travel back on the response so the campaign report can
  aggregate cache accounting across worker processes instead of reporting
  only the parent's numbers.

:func:`execute_prover_job` -- capture and attest fused in one call -- remains
the single-stage path (the ``pipeline="live"`` baseline, and the fallback
for captures whose trace is not replayable).

Everything a worker touches is rebuilt from registry names inside the worker
process -- including the scheme and its configuration, resolved from
:mod:`repro.schemes` -- and everything it returns is a plain picklable value.
The hardware-protected signing key never crosses the process boundary (it is
derived in-worker from the device id, and
:class:`repro.attestation.crypto.SecureKeyStore` refuses to pickle).

Per-process caches keep repeated jobs cheap: assembled programs are reused
across jobs (``maxsize`` bounded), the CPU's decoded-instruction cache is
shared process-wide, and the replay cache dedupes stage-2 measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.attacks import get_attack
from repro.attestation.crypto import SecureKeyStore, sign_report
from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.attestation.prover import Prover
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.trace import ControlFlowTrace
from repro.cpu.tracefile import dumps_trace, trace_digest
from repro.isa.assembler import Program
from repro.lofat.metadata import LazyLoopMetadata
from repro.schemes import get_scheme
from repro.service.campaign import CampaignJob
from repro.service.database import MeasurementDatabase
from repro.service.tracestore import CapturedExecution, workload_build_signature
from repro.workloads import get_workload

#: The payload shipped to a worker: the job plus the challenge nonce minted
#: by the verifier in the parent process.
ProverJobPayload = Tuple[CampaignJob, bytes]

#: A stage-1 payload: (signature, workload name, inputs, attack name).
CaptureJobPayload = Tuple[str, str, Tuple[int, ...], Optional[str]]

#: A stage-2 payload: the job, its nonce and the stored capture to replay.
#: ``None`` as the capture requests the live single-stage fallback.
AttestJobPayload = Tuple[CampaignJob, bytes, Optional[CapturedExecution]]


@dataclass
class ProverResponse:
    """What one prover execution sends back to the verifier service."""

    job_id: str
    report: AttestationReport
    instructions: int
    cycles: int
    pairs_hashed: int
    control_flow_events: int
    prover_seconds: float
    #: Stage-2 replay-cache accounting of this job in its worker process
    #: (both zero for live executions); the runner aggregates these across
    #: processes into the campaign's database statistics.
    replay_cache_hits: int = 0
    replay_cache_misses: int = 0
    #: True when the report came from a stored-trace replay, False for a
    #: live CPU execution.
    replayed: bool = False


@dataclass
class CaptureResponse:
    """What one stage-1 capture sends back to the campaign runner."""

    signature: str
    trace_bytes: bytes
    trace_digest: str
    exit_code: int
    output: str
    instructions: int
    cycles: int
    replayable: bool
    capture_seconds: float


@lru_cache(maxsize=128)
def _assemble_cached(workload_name: str, build_signature: str) -> Program:
    """Assemble (once per worker process) the identified workload build."""
    return get_workload(workload_name).build()


def _assembled_program(workload_name: str) -> Program:
    """The assembled program for ``workload_name``, cached per build.

    The cache key includes the build signature, not just the name: two jobs
    that share a workload name but were registered with different sources
    (common in tests that re-register workloads) each get their own
    :class:`Program`.
    """
    return _assemble_cached(
        workload_name, workload_build_signature(get_workload(workload_name))
    )


@lru_cache(maxsize=16)
def _keystore(device_id: str) -> SecureKeyStore:
    """The device keystore, derived in-process (never crosses the boundary)."""
    return SecureKeyStore(device_id=device_id)


#: Per-process stage-2 replay cache: (A, serialized L) keyed by (scheme,
#: trace digest, config digest).  A campaign with repeats -- or any two jobs
#: sharing a trace under the same scheme and configuration -- replays once
#: per process instead of once per job.
_REPLAY_CACHE = MeasurementDatabase()
#: Metadata and session statistics for cached replays, keyed like the replay
#: cache: ``cache_key -> (LazyLoopMetadata, stats)``.  Caching the metadata
#: object matters as much as caching the measurement: re-parsing ``L`` from
#: bytes -- or re-serialising it for every report's ``to_bytes`` -- dominated
#: the replay hot path (it is the per-report cost of the remote attestation
#: client).  The lazy form carries the serialised bytes for free and parses
#: records only if a consumer iterates them; the object is shared across
#: reports, which is safe because metadata is read-only once a session
#: finalizes.
_REPLAY_STATS: Dict[tuple, Tuple[LazyLoopMetadata, dict]] = {}


def clear_replay_cache() -> None:
    """Drop this process's stage-2 replay cache (tests and benchmarks)."""
    global _REPLAY_CACHE
    _REPLAY_CACHE = MeasurementDatabase()
    _REPLAY_STATS.clear()


def execute_prover_job(
    payload: ProverJobPayload,
    device_id: str = "prover-0",
    cpu_config: Optional[CpuConfig] = None,
) -> ProverResponse:
    """Run one campaign job on a simulated prover device and sign the result.

    The single-stage path: capture and attest fused in one live execution.
    ``cpu_config`` carries the runner's core-model parameters (instruction
    budget, latencies) to the prover side, so prover and verifier simulate
    the same machine.  The execution always streams its trace into the
    scheme's measurement session (``collect_trace`` is forced off): the
    monitor consumes records as they retire, so memory stays flat no matter
    how long the workload runs.
    """
    job, nonce = payload
    program = _assembled_program(job.workload)
    prover = Prover(
        {job.workload: program},
        cpu_config=replace(cpu_config or CpuConfig(), collect_trace=False),
        device_id=device_id,
    )
    prover.configure_scheme(job.scheme, job.scheme_config())
    if job.attack is not None:
        scenario = get_attack(job.attack)
        prover.install_attack(scenario.prover_hook(program))

    challenge = AttestationChallenge(
        program_id=job.workload, inputs=job.inputs, nonce=nonce,
        scheme=job.scheme,
    )
    started = time.perf_counter()
    report = prover.attest(challenge)
    elapsed = time.perf_counter() - started

    run = prover.last_run
    stats = run.engine_stats if run else {}
    return ProverResponse(
        job_id=job.job_id,
        report=report,
        instructions=run.instructions if run else 0,
        cycles=run.cycles if run else 0,
        pairs_hashed=int(stats.get("pairs_hashed", 0)),
        control_flow_events=int(stats.get("control_flow_events", 0)),
        prover_seconds=elapsed,
    )


def execute_capture_job(
    payload: CaptureJobPayload,
    cpu_config: Optional[CpuConfig] = None,
) -> CaptureResponse:
    """Stage 1: simulate one unique execution and capture its trace.

    Scheme-independent by construction: no measurement session is attached,
    only a :class:`repro.cpu.trace.ControlFlowTrace` capturing the
    control-flow record stream (the exact stream the fast path would hand a
    scheme session) plus the straight-line run counters.  Attack scenarios
    install their memory-corruption hooks exactly as the live prover does,
    so the captured trace is the attacked execution.
    """
    signature, workload_name, inputs, attack = payload
    program = _assembled_program(workload_name)
    started = time.perf_counter()
    base = cpu_config or CpuConfig()
    engine = base.engine
    if engine is None and base.fast_path:
        # Stage 1 is the only stage with a CPU in the loop: default to the
        # compiled engine.  The trampoline falls back to ``run_fast`` on
        # its own for declined programs and attack pre-hooks, so the
        # capture is identical either way -- just cheaper.
        engine = "compiled"
    cpu = Cpu(
        program,
        inputs=list(inputs),
        config=replace(base, collect_trace=False, engine=engine),
    )
    capture = ControlFlowTrace()
    cpu.attach_monitor(capture.observe)
    if attack is not None:
        get_attack(attack).prover_hook(program)(cpu)
    result = cpu.run()
    trace_bytes = dumps_trace(capture)
    elapsed = time.perf_counter() - started
    return CaptureResponse(
        signature=signature,
        trace_bytes=trace_bytes,
        trace_digest=trace_digest(trace_bytes),
        exit_code=result.exit_code,
        output=result.output,
        instructions=result.instructions,
        cycles=result.cycles,
        replayable=capture.replayable,
        capture_seconds=elapsed,
    )


def execute_attest_job(
    payload: AttestJobPayload,
    device_id: str = "prover-0",
    cpu_config: Optional[CpuConfig] = None,
) -> ProverResponse:
    """Stage 2: attest one job from its stored capture -- no CPU in the loop.

    Replays the capture's control-flow trace through the job's scheme
    session (or serves the measurement from the per-process replay cache),
    signs ``A || L`` with the in-process device key against the job's nonce,
    and rebuilds the report with the captured execution outputs.  The result
    is byte-identical to :func:`execute_prover_job` on the same execution.

    A payload whose capture is ``None`` (or not replayable) falls back to
    the live single-stage path; ``cpu_config`` is only consumed on that
    fallback.
    """
    job, nonce, capture = payload
    if capture is None or not capture.replayable:
        response = execute_prover_job((job, nonce), device_id, cpu_config)
        return response

    started = time.perf_counter()
    program = _assembled_program(job.workload)
    scheme = get_scheme(job.scheme)
    config = job.scheme_config()
    config_digest = job.scheme_config_digest()
    cache_key = (job.scheme, capture.trace_digest, config_digest)
    hits_before, misses_before = _REPLAY_CACHE.counters()

    entry = _REPLAY_CACHE.lookup_trace(
        job.scheme, capture.trace_digest, config, config_digest)
    if entry is not None:
        measurement_bytes, metadata_bytes = entry
        cached = _REPLAY_STATS.get(cache_key)
        if cached is not None:
            metadata, stats = cached
        else:
            metadata = LazyLoopMetadata(metadata_bytes)
            stats = {}
    else:
        measured = scheme.replay_measurement(
            program, capture.trace(), config=config,
            batch_size=(cpu_config or CpuConfig()).monitor_batch_size,
        )
        measurement_bytes = measured.measurement
        metadata_bytes = measured.metadata.to_bytes()
        metadata = LazyLoopMetadata(metadata_bytes)
        stats = measured.stats
        _REPLAY_CACHE.store_trace(
            job.scheme, capture.trace_digest, config,
            measurement_bytes, metadata_bytes, config_digest,
        )
        _REPLAY_STATS[cache_key] = (metadata, stats)
    hits_after, misses_after = _REPLAY_CACHE.counters()

    signature = sign_report(
        measurement_bytes + metadata_bytes, nonce, _keystore(device_id))
    report = AttestationReport(
        program_id=job.workload,
        measurement=measurement_bytes,
        metadata=metadata,
        nonce=nonce,
        signature=signature,
        exit_code=capture.exit_code,
        output=capture.output,
        scheme=scheme.name,
    )
    elapsed = time.perf_counter() - started
    return ProverResponse(
        job_id=job.job_id,
        report=report,
        instructions=capture.instructions,
        cycles=capture.cycles,
        pairs_hashed=int(stats.get("pairs_hashed", 0)),
        control_flow_events=int(stats.get("control_flow_events", 0)),
        prover_seconds=elapsed,
        replay_cache_hits=hits_after - hits_before,
        replay_cache_misses=misses_after - misses_before,
        replayed=True,
    )
