"""Filesystem discipline shared by the service's persistence layers.

One rule, one place: anything the service persists as a whole document
(the measurement database, the trace store's signature index) goes through
:func:`atomic_write_text`, so a killed campaign, capture run or server can
leave either the previous file or the new one on disk -- never a truncated
JSON document that poisons the next load.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, payload: str) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created in the target's directory (``os.replace``
    must not cross filesystems) and unlinked on any failure, so aborted
    writes leave no droppings next to the real file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
