"""Fleet load generator: realistic traffic from a simulated device fleet.

:func:`repro.service.client.run_load` measures steady-state throughput from
a fixed set of long-lived provers.  Real attestation fleets do not look
like that: a verifier for a million devices sees

* **device churn** -- sessions are short; a connection serves a handful of
  reports for one device, closes, and the next connection is a different
  device (cold signing keys, cold HELLO, cold provisioning table);
* **heavy-tailed report rates** -- a few chatty devices dominate while the
  long tail reports rarely.  Device identity is drawn log-uniformly over
  the population (Zipf-like: every order of magnitude of rank gets equal
  probability mass), so the generator exercises both the hot-device cache
  path and the cold-device provisioning path;
* **reconnect storms** -- a network blip makes every device reconnect at
  once.  The generator drops and re-opens all connections at synchronized
  points in the run and counts the reconnects;
* **stale reports** -- a device that lost its connection mid-round submits
  the old report on a fresh connection.  The verifier withdrew the nonce
  on disconnect, so the report *must* be rejected (``nonce_reused``);
* **duplicate reports** -- a retry bug (or a replay attacker) submits the
  same signed report twice.  The second copy *must* be rejected.

Injected anomalies are accounted separately from benign traffic: the run is
``ok`` only when every benign report was accepted *and* every injected
stale/duplicate was rejected -- the load generator doubles as a wire-level
freshness check on the whole fleet.

``processes > 1`` forks that many OS client processes, each driving its own
slice of connections from its own event loop, so a multi-worker fleet can
be saturated past a single client process's GIL ceiling.  Results merge
into one :class:`FleetLoadReport`.
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.core import CpuConfig
from repro.service.client import (
    AttestationClient,
    RemoteAttestationError,
    SimulatedProver,
)

#: Verdict reason the verifier gives a withdrawn or consumed nonce; stale
#: and duplicate injections assert on it.
NONCE_REUSED = "nonce_reused"

#: Rejection reasons that count as a *correctly refused* stale report.  A
#: duplicate goes down the same connection, so its nonce is always consumed
#: on the same verifier and the reason is exactly ``nonce_reused``.  A stale
#: retry opens a *new* connection, which a fleet dispatcher may route to a
#: different worker -- one that never minted the nonce (``unknown_nonce``)
#: and may never have registered the program (``unknown_program``).  All
#: three refuse the stale report, which is the property under test.
STALE_REJECT_REASONS = frozenset(
    {"nonce_reused", "unknown_nonce", "unknown_program"})


@dataclass
class FleetLoadSpec:
    """Shape of the generated traffic (see the module docstring)."""

    devices: int = 1_000_000
    connections: int = 8
    processes: int = 1
    reports: int = 200
    schemes: Tuple[str, ...] = ("lofat",)
    workloads: Tuple[str, ...] = ("syringe_pump",)
    seed: int = 20170618
    #: Mean benign rounds a connection serves before the device churns
    #: (session lengths are geometric around this).
    session_rounds: int = 4
    storms: int = 0
    stale_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    pace_seconds: float = 0.0
    warmup: bool = True

    def validate(self) -> None:
        if self.devices < 1:
            raise ValueError("device population must be at least 1")
        if self.connections < 1:
            raise ValueError("need at least one connection")
        if self.processes < 1:
            raise ValueError("need at least one client process")
        if self.reports < 1:
            raise ValueError("need at least one report")
        if not self.schemes or not self.workloads:
            raise ValueError("need at least one scheme and one workload")
        for name, value in (("stale_fraction", self.stale_fraction),
                            ("duplicate_fraction", self.duplicate_fraction)):
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must be in [0, 1]" % name)


@dataclass
class FleetLoadReport:
    """Aggregated outcome of one fleet-load run (mergeable across processes)."""

    processes: int = 0
    connections: int = 0
    devices: int = 0
    reports: int = 0
    accepted: int = 0
    rejected_unexpected: int = 0
    sessions: int = 0
    reconnects: int = 0
    storms_completed: int = 0
    stale_injected: int = 0
    stale_rejected: int = 0
    duplicate_injected: int = 0
    duplicate_rejected: int = 0
    distinct_devices: int = 0
    elapsed_seconds: float = 0.0
    by_scheme: Dict[str, int] = field(default_factory=dict)
    rejections: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def reports_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.reports / self.elapsed_seconds

    @property
    def ok(self) -> bool:
        """Benign traffic all accepted; injected anomalies all rejected."""
        return (
            self.reports > 0
            and self.rejected_unexpected == 0
            and self.stale_rejected == self.stale_injected
            and self.duplicate_rejected == self.duplicate_injected
        )

    def merge(self, other: "FleetLoadReport") -> None:
        self.processes += other.processes
        self.connections += other.connections
        self.devices = max(self.devices, other.devices)
        self.reports += other.reports
        self.accepted += other.accepted
        self.rejected_unexpected += other.rejected_unexpected
        self.sessions += other.sessions
        self.reconnects += other.reconnects
        self.storms_completed = max(
            self.storms_completed, other.storms_completed)
        self.stale_injected += other.stale_injected
        self.stale_rejected += other.stale_rejected
        self.duplicate_injected += other.duplicate_injected
        self.duplicate_rejected += other.duplicate_rejected
        # Device draws in different processes may collide; summing is an
        # upper bound but distinct ids are what churn coverage cares about.
        self.distinct_devices += other.distinct_devices
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        for scheme, count in other.by_scheme.items():
            self.by_scheme[scheme] = self.by_scheme.get(scheme, 0) + count
        self.rejections.extend(other.rejections)

    def as_dict(self) -> dict:
        return {
            "processes": self.processes,
            "connections": self.connections,
            "devices": self.devices,
            "reports": self.reports,
            "accepted": self.accepted,
            "rejected_unexpected": self.rejected_unexpected,
            "sessions": self.sessions,
            "reconnects": self.reconnects,
            "storms_completed": self.storms_completed,
            "stale_injected": self.stale_injected,
            "stale_rejected": self.stale_rejected,
            "duplicate_injected": self.duplicate_injected,
            "duplicate_rejected": self.duplicate_rejected,
            "distinct_devices": self.distinct_devices,
            "elapsed_seconds": self.elapsed_seconds,
            "reports_per_second": self.reports_per_second,
            "by_scheme": dict(self.by_scheme),
            "rejections": [list(item) for item in self.rejections],
            "ok": self.ok,
        }


def sample_device(rng: random.Random, population: int) -> str:
    """Draw a device id with a heavy-tailed (Zipf-like) popularity.

    Rank is log-uniform over ``[0, population)``: device 0 is as likely as
    all of ranks 10..99 together, which are as likely as 100..999, and so
    on -- a few hot devices dominate while the million-device tail still
    gets drawn.  Deterministic in ``rng``.
    """
    if population <= 1:
        return "device-0000000"
    rank = int(math.exp(rng.random() * math.log(population))) - 1
    rank = min(max(rank, 0), population - 1)
    return "device-%07d" % rank


class _SharedProgress:
    """Per-process run state the connection tasks coordinate through."""

    def __init__(self, spec: FleetLoadSpec, budget: int) -> None:
        self.spec = spec
        self.budget = budget
        self.issued = 0
        # Storm thresholds: at these benign-report counts every connection
        # drops and re-opens (a synchronized reconnect burst).
        self.storm_points = [
            max(1, budget * (index + 1) // (spec.storms + 1))
            for index in range(spec.storms)
        ]

    def take_round(self) -> bool:
        if self.issued >= self.budget:
            return False
        self.issued += 1
        return True

    def storms_due(self, completed: int) -> bool:
        return (
            completed < len(self.storm_points)
            and self.issued >= self.storm_points[completed]
        )


async def _drive_connection(
    slot: int,
    spec: FleetLoadSpec,
    host: str,
    port: int,
    trace_store,
    cpu_config: Optional[CpuConfig],
    progress: _SharedProgress,
    report: FleetLoadReport,
    seen_devices: set,
    rng: random.Random,
) -> None:
    plan = [(workload, None, scheme)
            for scheme in spec.schemes for workload in spec.workloads]
    storms_done = 0
    while progress.issued < progress.budget:
        device_id = sample_device(rng, spec.devices)
        seen_devices.add(device_id)
        prover = SimulatedProver(
            device_id=device_id, trace_store=trace_store, cpu_config=cpu_config)
        client = AttestationClient(
            host, port, device_id, prover, pace_seconds=spec.pace_seconds)
        await client.connect()
        report.sessions += 1
        session_rounds = 1 + int(rng.expovariate(1.0 / max(1, spec.session_rounds)))
        abrupt_close = False
        try:
            for round_index in range(session_rounds):
                if not progress.take_round():
                    break
                workload, inputs, scheme = plan[
                    (progress.issued + slot + round_index) % len(plan)]
                wire_report, verdict = await client.attest_round(
                    workload, inputs, scheme)
                report.reports += 1
                report.by_scheme[scheme] = report.by_scheme.get(scheme, 0) + 1
                if verdict.accepted:
                    report.accepted += 1
                else:
                    report.rejected_unexpected += 1
                    report.rejections.append((scheme, workload, verdict.reason))

                if rng.random() < spec.duplicate_fraction:
                    report.duplicate_injected += 1
                    duplicate = await client.submit_report(wire_report)
                    if not duplicate.accepted and duplicate.reason == NONCE_REUSED:
                        report.duplicate_rejected += 1

                if progress.storms_due(storms_done):
                    storms_done += 1
                    report.reconnects += 1
                    abrupt_close = True
                    break

            if not abrupt_close and rng.random() < spec.stale_fraction:
                # Stale report: challenge answered, connection lost before
                # the report went out, report retried on a new connection.
                workload, inputs, scheme = plan[report.sessions % len(plan)]
                challenge = await client.request_challenge(
                    workload, inputs, scheme)
                stale_report = prover.respond(challenge)
                await client.close(send_bye=False)  # server withdraws the nonce
                report.reconnects += 1
                retry = AttestationClient(host, port, device_id, prover)
                await retry.connect()
                try:
                    report.stale_injected += 1
                    verdict = await retry.submit_report(stale_report)
                    if (not verdict.accepted
                            and verdict.reason in STALE_REJECT_REASONS):
                        report.stale_rejected += 1
                finally:
                    await retry.close()
                continue
        finally:
            await client.close(send_bye=not abrupt_close)
    report.storms_completed = max(report.storms_completed, storms_done)


async def _drive_process(
    process_index: int,
    spec: FleetLoadSpec,
    host: str,
    port: int,
    trace_dir: Optional[str],
    cpu_config: Optional[CpuConfig],
    budget: int,
    connections: int,
) -> FleetLoadReport:
    trace_store = None
    if trace_dir is not None:
        from repro.service.tracestore import TraceStore

        trace_store = TraceStore(trace_dir)

    report = FleetLoadReport(
        processes=1, connections=connections, devices=spec.devices)
    progress = _SharedProgress(spec, budget)
    seen_devices: set = set()

    if spec.warmup and process_index == 0:
        # One unmeasured round per (scheme, workload) so the fleet's cold
        # reference computations are not charged to the measured window
        # (and concurrent cold misses do not stampede the session pools).
        warm_prover = SimulatedProver(
            device_id="device-warmup", trace_store=trace_store,
            cpu_config=cpu_config)
        warm = AttestationClient(host, port, "device-warmup", warm_prover)
        await warm.connect()
        for scheme in spec.schemes:
            for workload in spec.workloads:
                await warm.attest_round(workload, None, scheme)
        await warm.close()

    started = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(
            slot, spec, host, port, trace_store, cpu_config, progress,
            report, seen_devices,
            # Integer seed derivation: tuple seeds fall back to hash(),
            # which PYTHONHASHSEED randomizes across runs.
            random.Random(spec.seed * 1_000_003 + process_index * 1_009 + slot),
        )
        for slot in range(connections)
    ))
    report.elapsed_seconds = time.perf_counter() - started
    report.distinct_devices = len(seen_devices)
    return report


def _process_entry(args: tuple) -> dict:
    (process_index, spec, host, port, trace_dir, cpu_config,
     budget, connections) = args
    result = asyncio.run(_drive_process(
        process_index, spec, host, port, trace_dir, cpu_config,
        budget, connections))
    return result.as_dict()


def _report_from_dict(payload: dict) -> FleetLoadReport:
    report = FleetLoadReport()
    for key in (
        "processes", "connections", "devices", "reports", "accepted",
        "rejected_unexpected", "sessions", "reconnects", "storms_completed",
        "stale_injected", "stale_rejected", "duplicate_injected",
        "duplicate_rejected", "distinct_devices", "elapsed_seconds",
    ):
        setattr(report, key, payload[key])
    report.by_scheme = dict(payload.get("by_scheme", {}))
    report.rejections = [tuple(item) for item in payload.get("rejections", [])]
    return report


def run_fleet_load(
    host: str,
    port: int,
    spec: Optional[FleetLoadSpec] = None,
    trace_dir: Optional[str] = None,
    cpu_config: Optional[CpuConfig] = None,
    **overrides,
) -> FleetLoadReport:
    """Run the fleet load against ``host:port`` and aggregate the outcome.

    ``spec`` (or keyword overrides applied to a default spec) shapes the
    traffic.  With ``processes == 1`` everything runs in this process; with
    more, client worker processes are forked (spawned where fork is
    unavailable) and their reports merged.  The connection budget and the
    report budget are split across processes; each process seeds its
    connection RNGs from ``(seed, process, slot)`` so runs are reproducible
    regardless of interleaving.
    """
    if spec is None:
        spec = FleetLoadSpec(**overrides)
    elif overrides:
        raise TypeError("pass either a spec or keyword overrides, not both")
    spec.validate()

    processes = min(spec.processes, spec.connections, spec.reports)
    per_process = [spec.reports // processes] * processes
    per_process[0] += spec.reports % processes
    connections = [spec.connections // processes] * processes
    connections[0] += spec.connections % processes

    if processes == 1:
        return asyncio.run(_drive_process(
            0, spec, host, port, trace_dir, cpu_config,
            per_process[0], connections[0]))

    method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
              else "spawn")
    ctx = multiprocessing.get_context(method)
    jobs = [
        (index, spec, host, port, trace_dir, cpu_config,
         per_process[index], connections[index])
        for index in range(processes)
    ]
    with ctx.Pool(processes=processes) as pool:
        payloads = pool.map(_process_entry, jobs)
    merged = FleetLoadReport(devices=spec.devices)
    for payload in payloads:
        merged.merge(_report_from_dict(payload))
    return merged


__all__ = [
    "FleetLoadReport",
    "FleetLoadSpec",
    "NONCE_REUSED",
    "RemoteAttestationError",
    "run_fleet_load",
    "sample_device",
]
