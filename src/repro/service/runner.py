"""The attestation campaign runner.

:class:`CampaignRunner` is the verifier-side service loop: it expands a
:class:`repro.service.campaign.CampaignSpec` into jobs, fans the prover
executions out across worker processes, then verifies every returned report
centrally -- one verifier per (attestation scheme, configuration variant)
sweep point, all of them backed by a shared
:class:`repro.service.database.MeasurementDatabase`.

The decomposition mirrors the deployment the paper assumes: many independent
prover devices execute in parallel (they share nothing but their program
images), while the verifier is a single service whose per-report cost is
pushed from O(re-execution) to O(lookup) by the measurement database.  The
prover fan-out is embarrassingly parallel, so the recombination step is a
simple ordered zip of jobs and responses; parallel campaigns are
result-identical to sequential ones by construction, and the test suite
asserts it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attestation.crypto import SecureKeyStore
from repro.attestation.verifier import Verifier
from repro.cpu.core import CpuConfig
from repro.isa.assembler import Program
from repro.service.campaign import CampaignJob, CampaignSpec
from repro.service.database import MeasurementDatabase
from repro.service.worker import ProverResponse, execute_prover_job
from repro.workloads import get_workload


@dataclass
class JobResult:
    """The verifier's recombined record of one campaign job."""

    job: CampaignJob
    accepted: bool
    reason: str
    detail: str
    measurement_hex: str
    metadata_hex: str
    output: str
    exit_code: int
    instructions: int
    cycles: int
    #: Whether the reference measurement came from the database (None when
    #: the verify mode does not consult it).
    cache_hit: Optional[bool]
    prover_seconds: float

    @property
    def detected(self) -> bool:
        """True when the report was rejected (an attack was caught)."""
        return not self.accepted

    @property
    def ok(self) -> bool:
        """Job-level success: benign runs accept, attacked runs reject."""
        if self.job.expects_detection:
            return not self.accepted
        return self.accepted

    def identity(self) -> tuple:
        """The comparison key used to check parallel == sequential results."""
        return (
            self.job.job_id,
            self.accepted,
            self.reason,
            self.measurement_hex,
            self.metadata_hex,
            self.output,
            self.exit_code,
            self.instructions,
            self.cycles,
        )

    def as_row(self) -> dict:
        """Row dictionary for :func:`repro.analysis.report.format_table`."""
        return {
            "job": self.job.job_id,
            "scheme": self.job.scheme,
            "verdict": "ACCEPTED" if self.accepted else "REJECTED",
            "reason": self.reason,
            "ok": self.ok,
            "cache": ("hit" if self.cache_hit else "miss")
                     if self.cache_hit is not None else "-",
            "instructions": self.instructions,
            "cycles": self.cycles,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced, plus service-level metrics."""

    spec_name: str
    verify_mode: str
    workers: int
    #: Whether prover and verifier executions used the fused fast-path
    #: interpreter (the opt-out :attr:`repro.cpu.core.CpuConfig.fast_path`).
    fast_path: bool = True
    results: List[JobResult] = field(default_factory=list)
    #: Wall-clock seconds of the parallel prover fan-out phase.
    prover_seconds: float = 0.0
    #: Wall-clock seconds of the central verification phase.
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    database_stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when every job behaved as expected (accept/detect)."""
        return all(result.ok for result in self.results)

    @property
    def accepted_count(self) -> int:
        return sum(1 for result in self.results if result.accepted)

    @property
    def detected_count(self) -> int:
        return sum(
            1 for result in self.results
            if result.job.expects_detection and result.detected
        )

    @property
    def failures(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    @property
    def jobs_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return len(self.results) / self.total_seconds

    def identities(self) -> List[tuple]:
        """Per-job comparison keys (order-sensitive)."""
        return [result.identity() for result in self.results]

    def summary(self) -> dict:
        attacks = sum(1 for r in self.results if r.job.expects_detection)
        return {
            "campaign": self.spec_name,
            "verify_mode": self.verify_mode,
            "workers": self.workers,
            "fast_path": self.fast_path,
            "jobs": len(self.results),
            "ok": self.ok,
            "accepted": self.accepted_count,
            "attacks_detected": "%d/%d" % (self.detected_count, attacks),
            "prover_seconds": self.prover_seconds,
            "verify_seconds": self.verify_seconds,
            "total_seconds": self.total_seconds,
            "jobs_per_second": self.jobs_per_second,
            "database": dict(self.database_stats),
        }


def _worker_context():
    """Pick the multiprocessing start method (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class CampaignRunner:
    """Executes attestation campaigns, sequentially or across processes."""

    def __init__(
        self,
        database: Optional[MeasurementDatabase] = None,
        device_id: str = "prover-0",
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.database = database if database is not None else MeasurementDatabase()
        self.device_id = device_id
        self.cpu_config = cpu_config

    # ----------------------------------------------------------- execution
    def run(self, spec: CampaignSpec, workers: int = 1) -> CampaignResult:
        """Run ``spec`` end to end and return the recombined results.

        ``workers <= 1`` executes the prover jobs inline (sequential);
        ``workers > 1`` fans them out over a process pool.  Verification
        always happens centrally, in job order, so the two modes produce
        identical results.
        """
        jobs = spec.expand()
        started_total = time.perf_counter()
        database_counters = self.database.counters()

        verifiers, programs = self._provision(jobs)
        payloads = [
            (job, verifiers[(job.scheme, job.config_name)]
                  .challenge(job.workload, job.inputs, scheme=job.scheme).nonce)
            for job in jobs
        ]

        started_prover = time.perf_counter()
        responses = self._execute_provers(payloads, workers)
        prover_seconds = time.perf_counter() - started_prover

        started_verify = time.perf_counter()
        results = [
            self._verify(spec, job, response, verifiers, programs)
            for job, response in zip(jobs, responses)
        ]
        verify_seconds = time.perf_counter() - started_verify

        return CampaignResult(
            spec_name=spec.name,
            verify_mode=spec.verify_mode,
            workers=max(1, workers),
            fast_path=(self.cpu_config or CpuConfig()).fast_path,
            results=results,
            prover_seconds=prover_seconds,
            verify_seconds=verify_seconds,
            total_seconds=time.perf_counter() - started_total,
            database_stats=self.database.stats_since(database_counters),
        )

    # ------------------------------------------------------------ plumbing
    def _provision(
        self, jobs: Sequence[CampaignJob]
    ) -> Tuple[Dict[Tuple[str, str], Verifier], Dict[str, Program]]:
        """Build one verifier per (scheme, config variant) and register programs.

        Program analyses (CFG, loops) are shared across verifiers through
        the process-wide knowledge cache, so provisioning N sweep points
        costs one analysis per distinct binary, not N.
        """
        verification_key = SecureKeyStore(
            device_id=self.device_id
        ).export_for_verifier()
        verifiers: Dict[Tuple[str, str], Verifier] = {}
        programs: Dict[str, Program] = {}
        for job in jobs:
            if job.workload not in programs:
                programs[job.workload] = get_workload(job.workload).build()
            key = (job.scheme, job.config_name)
            verifier = verifiers.get(key)
            if verifier is None:
                verifier = Verifier(cpu_config=self.cpu_config)
                verifier.configure_scheme(job.scheme, job.scheme_config())
                verifier.register_device_key(self.device_id, verification_key)
                verifiers[key] = verifier
            if job.workload not in verifier._programs:
                verifier.register_program(job.workload, programs[job.workload])
        return verifiers, programs

    def _execute_provers(
        self, payloads: Sequence[tuple], workers: int
    ) -> List[ProverResponse]:
        execute = partial(
            execute_prover_job,
            device_id=self.device_id,
            cpu_config=self.cpu_config,
        )
        if workers <= 1 or len(payloads) <= 1:
            return [execute(payload) for payload in payloads]
        context = _worker_context()
        pool_size = min(workers, len(payloads))
        chunksize = max(1, len(payloads) // (pool_size * 4))
        with context.Pool(processes=pool_size) as pool:
            return pool.map(execute, payloads, chunksize)

    def _verify(
        self,
        spec: CampaignSpec,
        job: CampaignJob,
        response: ProverResponse,
        verifiers: Dict[Tuple[str, str], Verifier],
        programs: Dict[str, Program],
    ) -> JobResult:
        verifier = verifiers[(job.scheme, job.config_name)]
        cache_hit: Optional[bool] = None
        if spec.verify_mode == "database":
            measurement, metadata_bytes, cache_hit = self.database.lookup_or_compute(
                programs[job.workload],
                job.inputs,
                job.scheme_config(),
                cpu_config=self.cpu_config,
                scheme=job.scheme,
            )
            verifier.seed_measurement(
                job.workload, job.inputs, measurement, metadata_bytes,
                scheme=job.scheme,
            )
        verdict = verifier.verify(
            response.report, device_id=self.device_id, mode=spec.verify_mode,
        )
        report = response.report
        return JobResult(
            job=job,
            accepted=verdict.accepted,
            reason=verdict.reason.value,
            detail=verdict.detail,
            measurement_hex=report.measurement.hex(),
            metadata_hex=report.metadata.to_bytes().hex(),
            output=report.output,
            exit_code=report.exit_code,
            instructions=response.instructions,
            cycles=response.cycles,
            cache_hit=cache_hit,
            prover_seconds=response.prover_seconds,
        )
