"""The attestation campaign runner.

:class:`CampaignRunner` is the verifier-side service loop: it expands a
:class:`repro.service.campaign.CampaignSpec` into jobs, produces one signed
report per job, then verifies every report centrally -- one verifier per
(attestation scheme, configuration variant) sweep point, all of them backed
by a shared :class:`repro.service.database.MeasurementDatabase`.

Report production is a two-stage pipeline (the capture-once / verify-many
decomposition; ``pipeline="live"`` keeps the historical fused path for
comparison):

* **Stage 1 -- capture.** Jobs are deduplicated by *execution signature*
  (program build, inputs, attack, CPU config -- scheme-independent, see
  :mod:`repro.service.tracestore`); each unique signature is simulated once
  (:func:`repro.service.worker.execute_capture_job`) and its compact
  control-flow trace lands in the runner's content-addressed
  :class:`~repro.service.tracestore.TraceStore`.  An N-scheme x M-config
  sweep therefore pays for one CPU simulation per distinct execution, not
  N x M.  When database verification needs execution-dependent references,
  the benign counterparts of attacked executions are captured in the same
  pass.
* **Stage 2 -- attest.** Every job replays its stored trace through its
  scheme session (:func:`repro.service.worker.execute_attest_job`) -- no
  CPU in the loop -- and signs the result; reports are byte-identical to
  live execution (pinned by ``tests/test_trace_replay_equivalence.py``).
  Database-mode reference misses replay the stored *benign* capture too,
  keyed in the measurement database by trace digest.

The decomposition mirrors the deployment the paper assumes: many independent
prover devices execute in parallel (they share nothing but their program
images), while the verifier is a single service whose per-report cost is
pushed from O(re-execution) to O(lookup) by the measurement database.  Both
stages are embarrassingly parallel, so the recombination step is a simple
ordered zip of jobs and responses; parallel campaigns are result-identical
to sequential ones by construction, and the test suite asserts it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attestation.crypto import SecureKeyStore
from repro.attestation.verifier import Verifier
from repro.cpu.core import CpuConfig
from repro.isa.assembler import Program
from repro.schemes import get_scheme
from repro.service.campaign import CampaignJob, CampaignSpec
from repro.service.database import MeasurementDatabase
from repro.service.tracestore import (
    TraceStore,
    cpu_config_digest,
    execution_signature,
    workload_build_signature,
)
from repro.service.worker import (
    CaptureResponse,
    ProverResponse,
    _assembled_program,
    execute_attest_job,
    execute_capture_job,
    execute_prover_job,
)
from repro.workloads import get_workload


@dataclass
class JobResult:
    """The verifier's recombined record of one campaign job."""

    job: CampaignJob
    accepted: bool
    reason: str
    detail: str
    measurement_hex: str
    metadata_hex: str
    output: str
    exit_code: int
    instructions: int
    cycles: int
    #: Whether the reference measurement came from the database (None when
    #: the verify mode does not consult it).
    cache_hit: Optional[bool]
    prover_seconds: float
    #: Whether the report was produced by replaying a stored trace (False
    #: for live executions).
    replayed: bool = False

    @property
    def detected(self) -> bool:
        """True when the report was rejected (an attack was caught)."""
        return not self.accepted

    @property
    def ok(self) -> bool:
        """Job-level success: benign runs accept, attacked runs reject."""
        if self.job.expects_detection:
            return not self.accepted
        return self.accepted

    @property
    def outcome(self) -> str:
        """Semantic label of the verdict against the job's expectation.

        ``benign_pass`` / ``false_reject`` for benign jobs; for attacked
        jobs ``detected`` / ``missed`` when the scheme claims the attack,
        ``expected_miss`` / ``unexpected_reject`` when it does not (static
        scheme, or an attack invisible to control-flow measurement).
        """
        if self.job.attack is None:
            return "benign_pass" if self.accepted else "false_reject"
        if self.job.expects_detection:
            return "detected" if not self.accepted else "missed"
        return "expected_miss" if self.accepted else "unexpected_reject"

    def identity(self) -> tuple:
        """The comparison key used to check parallel == sequential results.

        Also pipeline-independent by design: a two-stage (capture/replay)
        campaign must recombine to the same identities as a live one.
        """
        return (
            self.job.job_id,
            self.accepted,
            self.reason,
            self.measurement_hex,
            self.metadata_hex,
            self.output,
            self.exit_code,
            self.instructions,
            self.cycles,
        )

    def as_row(self) -> dict:
        """Row dictionary for :func:`repro.analysis.report.format_table`."""
        return {
            "job": self.job.job_id,
            "scheme": self.job.scheme,
            "verdict": "ACCEPTED" if self.accepted else "REJECTED",
            "reason": self.reason,
            "ok": self.ok,
            "outcome": self.outcome,
            "cache": ("hit" if self.cache_hit else "miss")
                     if self.cache_hit is not None else "-",
            "source": "replay" if self.replayed else "live",
            "instructions": self.instructions,
            "cycles": self.cycles,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced, plus service-level metrics."""

    spec_name: str
    verify_mode: str
    workers: int
    #: Whether prover and verifier executions used the fused fast-path
    #: interpreter (the opt-out :attr:`repro.cpu.core.CpuConfig.fast_path`).
    fast_path: bool = True
    #: The resolved execution engine of the prover-side simulations
    #: ("legacy", "fast" or "compiled").
    engine: str = "fast"
    #: Report-production pipeline: "capture" (two-stage, the default) or
    #: "live" (fused capture+attest per job).
    pipeline: str = "capture"
    results: List[JobResult] = field(default_factory=list)
    #: Wall-clock seconds of the parallel prover fan-out phase (both stages).
    prover_seconds: float = 0.0
    #: Wall-clock seconds of stage 1 (unique-execution capture).
    capture_seconds: float = 0.0
    #: Wall-clock seconds of stage 2 (trace replay + signing).
    attest_seconds: float = 0.0
    #: Wall-clock seconds of the central verification phase.
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    database_stats: dict = field(default_factory=dict)
    #: Capture-stage accounting: jobs vs unique executions vs simulations
    #: actually run (see :meth:`CampaignRunner._run_two_stage`).
    capture_stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when every job behaved as expected (accept/detect)."""
        return all(result.ok for result in self.results)

    @property
    def accepted_count(self) -> int:
        return sum(1 for result in self.results if result.accepted)

    @property
    def detected_count(self) -> int:
        return sum(
            1 for result in self.results
            if result.job.expects_detection and result.detected
        )

    @property
    def failures(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    @property
    def jobs_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return len(self.results) / self.total_seconds

    def identities(self) -> List[tuple]:
        """Per-job comparison keys (order-sensitive)."""
        return [result.identity() for result in self.results]

    def summary(self) -> dict:
        attacks = sum(1 for r in self.results if r.job.expects_detection)
        expected_misses = sum(
            1 for r in self.results if r.outcome == "expected_miss"
        )
        return {
            "campaign": self.spec_name,
            "verify_mode": self.verify_mode,
            "workers": self.workers,
            "fast_path": self.fast_path,
            "engine": self.engine,
            "pipeline": self.pipeline,
            "jobs": len(self.results),
            "ok": self.ok,
            "accepted": self.accepted_count,
            "attacks_detected": "%d/%d" % (self.detected_count, attacks),
            "expected_misses": expected_misses,
            "prover_seconds": self.prover_seconds,
            "capture_seconds": self.capture_seconds,
            "attest_seconds": self.attest_seconds,
            "verify_seconds": self.verify_seconds,
            "total_seconds": self.total_seconds,
            "jobs_per_second": self.jobs_per_second,
            "database": dict(self.database_stats),
            "capture": dict(self.capture_stats),
        }


def _worker_context():
    """Pick the multiprocessing start method (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class CampaignRunner:
    """Executes attestation campaigns, sequentially or across processes."""

    def __init__(
        self,
        database: Optional[MeasurementDatabase] = None,
        device_id: str = "prover-0",
        cpu_config: Optional[CpuConfig] = None,
        trace_store: Optional[TraceStore] = None,
    ) -> None:
        self.database = database if database is not None else MeasurementDatabase()
        self.device_id = device_id
        self.cpu_config = cpu_config
        #: The content-addressed capture store shared across this runner's
        #: campaigns; pass a directory-backed store to persist captures
        #: (``repro trace capture`` / ``--trace-dir``).
        self.trace_store = trace_store if trace_store is not None else TraceStore()

    # ----------------------------------------------------------- execution
    def run(
        self, spec: CampaignSpec, workers: int = 1, pipeline: str = "capture"
    ) -> CampaignResult:
        """Run ``spec`` end to end and return the recombined results.

        ``workers <= 1`` executes the prover-side stages inline
        (sequential); ``workers > 1`` fans them out over a process pool.
        ``pipeline`` selects report production: ``"capture"`` (default)
        dedupes jobs by execution signature, simulates each unique execution
        once and replays stored traces per job; ``"live"`` runs one fused
        simulate+measure execution per job (the pre-capture behaviour, kept
        as the equivalence/benchmark baseline).  Verification always happens
        centrally, in job order, so every mode produces identical results.
        """
        if pipeline not in ("capture", "live"):
            raise ValueError(
                "unknown pipeline %r (expected 'capture' or 'live')" % pipeline
            )
        jobs = spec.expand()
        cpu_config = self._effective_cpu_config(spec)
        started_total = time.perf_counter()
        database_counters = self.database.counters()

        verifiers, programs = self._provision(jobs, cpu_config)
        payloads = [
            (job, verifiers[(job.scheme, job.config_name)]
                  .challenge(job.workload, job.inputs, scheme=job.scheme).nonce)
            for job in jobs
        ]

        capture_seconds = attest_seconds = 0.0
        capture_stats: dict = {}
        reference_captures: Dict[str, object] = {}
        started_prover = time.perf_counter()
        if pipeline == "live":
            responses = self._execute_provers(payloads, workers, cpu_config)
        else:
            (responses, capture_seconds, attest_seconds,
             capture_stats, reference_captures) = self._run_two_stage(
                spec, jobs, payloads, workers, cpu_config)
        prover_seconds = time.perf_counter() - started_prover

        started_verify = time.perf_counter()
        results = [
            self._verify(spec, job, response, verifiers, programs,
                         reference_captures, cpu_config)
            for job, response in zip(jobs, responses)
        ]
        verify_seconds = time.perf_counter() - started_verify

        database_stats = self.database.stats_since(database_counters)
        # Cross-process cache accounting: stage-2 replay caches live in the
        # worker processes, so their hit/miss counters only exist on the
        # responses -- aggregate them here instead of reporting only the
        # parent database's numbers.
        database_stats["worker_replay_hits"] = sum(
            r.replay_cache_hits for r in responses)
        database_stats["worker_replay_misses"] = sum(
            r.replay_cache_misses for r in responses)

        return CampaignResult(
            spec_name=spec.name,
            verify_mode=spec.verify_mode,
            workers=max(1, workers),
            fast_path=(cpu_config or CpuConfig()).fast_path,
            engine=(cpu_config or CpuConfig()).resolved_engine(),
            pipeline=pipeline,
            results=results,
            prover_seconds=prover_seconds,
            capture_seconds=capture_seconds,
            attest_seconds=attest_seconds,
            verify_seconds=verify_seconds,
            total_seconds=time.perf_counter() - started_total,
            database_stats=database_stats,
            capture_stats=capture_stats,
        )

    def capture(self, spec: CampaignSpec, workers: int = 1) -> dict:
        """Run only stage 1 of ``spec``: populate the trace store.

        Captures every unique execution signature the campaign (and its
        database-mode references) would need, without attesting or
        verifying anything.  Returns the capture statistics dictionary; the
        captures land in :attr:`trace_store` (persist them by constructing
        the runner with a directory-backed store).
        """
        jobs = spec.expand()
        signatures, ref_signatures = self._plan_signatures(spec, jobs)
        started = time.perf_counter()
        stats = self._capture_unique(
            jobs, signatures, ref_signatures, workers,
            self._effective_cpu_config(spec))
        stats["capture_seconds"] = time.perf_counter() - started
        stats["store"] = self.trace_store.stats()
        return stats

    # ------------------------------------------------------------ plumbing
    def _effective_cpu_config(self, spec: CampaignSpec) -> Optional[CpuConfig]:
        """The runner's CPU configuration with the spec's engine applied.

        The engine never participates in execution signatures or capture
        digests (it cannot change the simulated machine), so two campaigns
        differing only in engine share captures and measurements.
        """
        if spec.engine is None:
            return self.cpu_config
        return replace(self.cpu_config or CpuConfig(), engine=spec.engine)

    def _plan_signatures(
        self, spec: CampaignSpec, jobs: Sequence[CampaignJob]
    ) -> Tuple[List[str], List[Optional[str]]]:
        """Execution signatures per job, plus per-job reference signatures.

        The reference signature is the *benign* counterpart of the job's
        execution (attack stripped) -- what a database-mode verification
        replays -- or None when the verify mode never consults the database
        or the scheme's reference needs no execution (static).
        """
        cpu_digest = cpu_config_digest(self.cpu_config)
        build_signatures: Dict[str, str] = {}

        def signature(workload: str, inputs, attack) -> str:
            build = build_signatures.get(workload)
            if build is None:
                build = workload_build_signature(get_workload(workload))
                build_signatures[workload] = build
            return execution_signature(
                workload, inputs, attack,
                build_signature=build, cpu_digest=cpu_digest,
            )

        signatures = [
            signature(job.workload, job.inputs, job.attack) for job in jobs
        ]
        ref_signatures: List[Optional[str]] = []
        for job, job_signature in zip(jobs, signatures):
            if (spec.verify_mode != "database"
                    or not get_scheme(job.scheme).reference_requires_execution):
                ref_signatures.append(None)
            elif job.attack is None:
                ref_signatures.append(job_signature)
            else:
                ref_signatures.append(
                    signature(job.workload, job.inputs, None))
        return signatures, ref_signatures

    def _capture_unique(
        self,
        jobs: Sequence[CampaignJob],
        signatures: Sequence[str],
        ref_signatures: Sequence[Optional[str]],
        workers: int,
        cpu_config: Optional[CpuConfig] = None,
    ) -> dict:
        """Stage 1: simulate every signature the campaign needs exactly once."""
        plan: List[tuple] = []
        planned = set()
        store_hits = 0
        for job, job_signature, ref_signature in zip(
                jobs, signatures, ref_signatures):
            for sig, attack in ((job_signature, job.attack),
                                (ref_signature, None)):
                if sig is None or sig in planned:
                    continue
                if sig in self.trace_store:
                    planned.add(sig)
                    store_hits += 1
                    continue
                planned.add(sig)
                plan.append((sig, job.workload, job.inputs, attack))

        responses = self._execute_captures(plan, workers, cpu_config)
        for response in responses:
            self.trace_store.put_bytes(
                response.signature,
                response.trace_bytes,
                exit_code=response.exit_code,
                output=response.output,
                instructions=response.instructions,
                cycles=response.cycles,
                replayable=response.replayable,
                flush=False,
            )
        self.trace_store.flush()
        job_signatures = set(signatures)
        return {
            "jobs": len(jobs),
            "unique_executions": len(job_signatures),
            "deduped_jobs": len(jobs) - len(job_signatures),
            "reference_executions": len(planned - job_signatures),
            "captured": len(plan),
            "store_hits": store_hits,
            "simulated_seconds": sum(r.capture_seconds for r in responses),
        }

    def _run_two_stage(
        self,
        spec: CampaignSpec,
        jobs: Sequence[CampaignJob],
        payloads: Sequence[tuple],
        workers: int,
        cpu_config: Optional[CpuConfig] = None,
    ):
        """Capture unique executions, then attest every job from the store."""
        signatures, ref_signatures = self._plan_signatures(spec, jobs)

        started_capture = time.perf_counter()
        capture_stats = self._capture_unique(
            jobs, signatures, ref_signatures, workers, cpu_config)
        capture_seconds = time.perf_counter() - started_capture

        started_attest = time.perf_counter()
        attest_payloads = []
        for (job, nonce), job_signature in zip(payloads, signatures):
            capture = self.trace_store.get(job_signature)
            if capture is not None and not capture.replayable:
                capture = None  # live fallback in the worker
            attest_payloads.append((job, nonce, capture))
        responses = self._execute_attests(attest_payloads, workers, cpu_config)
        attest_seconds = time.perf_counter() - started_attest

        capture_stats["replayed_jobs"] = sum(1 for r in responses if r.replayed)
        capture_stats["live_jobs"] = sum(
            1 for r in responses if not r.replayed)

        reference_captures: Dict[str, object] = {}
        for job, ref_signature in zip(jobs, ref_signatures):
            if ref_signature is not None and job.job_id not in reference_captures:
                reference_captures[job.job_id] = self.trace_store.get(
                    ref_signature)
        return (responses, capture_seconds, attest_seconds, capture_stats,
                reference_captures)

    def _provision(
        self,
        jobs: Sequence[CampaignJob],
        cpu_config: Optional[CpuConfig] = None,
    ) -> Tuple[Dict[Tuple[str, str], Verifier], Dict[str, Program]]:
        """Build one verifier per (scheme, config variant) and register programs.

        Program analyses (CFG, loops) are shared across verifiers through
        the process-wide knowledge cache, so provisioning N sweep points
        costs one analysis per distinct binary, not N.
        """
        verification_key = SecureKeyStore(
            device_id=self.device_id
        ).export_for_verifier()
        verifiers: Dict[Tuple[str, str], Verifier] = {}
        programs: Dict[str, Program] = {}
        for job in jobs:
            if job.workload not in programs:
                # Shares the process-wide build-signature-keyed assembly
                # cache with the worker side: repeat campaigns (and the
                # capture planner) never re-assemble an unchanged workload.
                programs[job.workload] = _assembled_program(job.workload)
            key = (job.scheme, job.config_name)
            verifier = verifiers.get(key)
            if verifier is None:
                verifier = Verifier(cpu_config=cpu_config or self.cpu_config)
                verifier.configure_scheme(job.scheme, job.scheme_config())
                verifier.register_device_key(self.device_id, verification_key)
                verifiers[key] = verifier
            if job.workload not in verifier._programs:
                verifier.register_program(job.workload, programs[job.workload])
        return verifiers, programs

    def _execute_provers(
        self, payloads: Sequence[tuple], workers: int,
        cpu_config: Optional[CpuConfig] = None,
    ) -> List[ProverResponse]:
        execute = partial(
            execute_prover_job,
            device_id=self.device_id,
            cpu_config=cpu_config or self.cpu_config,
        )
        return self._map(execute, payloads, workers)

    def _execute_captures(
        self, payloads: Sequence[tuple], workers: int,
        cpu_config: Optional[CpuConfig] = None,
    ) -> List[CaptureResponse]:
        execute = partial(
            execute_capture_job, cpu_config=cpu_config or self.cpu_config)
        return self._map(execute, payloads, workers)

    def _execute_attests(
        self, payloads: Sequence[tuple], workers: int,
        cpu_config: Optional[CpuConfig] = None,
    ) -> List[ProverResponse]:
        execute = partial(
            execute_attest_job,
            device_id=self.device_id,
            cpu_config=cpu_config or self.cpu_config,
        )
        return self._map(execute, payloads, workers)

    @staticmethod
    def _map(execute, payloads: Sequence[tuple], workers: int) -> list:
        if workers <= 1 or len(payloads) <= 1:
            return [execute(payload) for payload in payloads]
        context = _worker_context()
        pool_size = min(workers, len(payloads))
        chunksize = max(1, len(payloads) // (pool_size * 4))
        with context.Pool(processes=pool_size) as pool:
            return pool.map(execute, payloads, chunksize)

    def _verify(
        self,
        spec: CampaignSpec,
        job: CampaignJob,
        response: ProverResponse,
        verifiers: Dict[Tuple[str, str], Verifier],
        programs: Dict[str, Program],
        reference_captures: Optional[Dict[str, object]] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> JobResult:
        verifier = verifiers[(job.scheme, job.config_name)]
        cache_hit: Optional[bool] = None
        if spec.verify_mode == "database":
            capture = (reference_captures or {}).get(job.job_id)
            measurement, metadata_bytes, cache_hit = self.database.lookup_or_compute(
                programs[job.workload],
                job.inputs,
                job.scheme_config(),
                cpu_config=cpu_config or self.cpu_config,
                scheme=job.scheme,
                capture=capture,
                config_digest=job.scheme_config_digest(),
            )
            verifier.seed_measurement(
                job.workload, job.inputs, measurement, metadata_bytes,
                scheme=job.scheme,
            )
        verdict = verifier.verify(
            response.report, device_id=self.device_id, mode=spec.verify_mode,
        )
        report = response.report
        return JobResult(
            job=job,
            accepted=verdict.accepted,
            reason=verdict.reason.value,
            detail=verdict.detail,
            measurement_hex=report.measurement.hex(),
            metadata_hex=report.metadata.to_bytes().hex(),
            output=report.output,
            exit_code=report.exit_code,
            instructions=response.instructions,
            cycles=response.cycles,
            cache_hit=cache_hit,
            prover_seconds=response.prover_seconds,
            replayed=response.replayed,
        )
