"""Attestation campaign service.

This package scales the single challenge-response protocol of
:mod:`repro.attestation` into a verifier-side *service* that attests many
executions at once (see ``docs/ARCHITECTURE.md`` for the layer diagram):

* :mod:`repro.service.campaign` -- declarative campaign specs (schemes x
  workloads x configs x attack injections) and their expansion into
  picklable jobs.
* :mod:`repro.service.worker` -- prover-side job execution, the units
  shipped to ``multiprocessing`` workers: capture (stage 1), attest-from-
  trace (stage 2) and the fused live path.
* :mod:`repro.service.tracestore` -- the content-addressed trace store
  behind capture-once / verify-many: execution signatures, captured
  control-flow traces, optional disk spill.
* :mod:`repro.service.database` -- the measurement database caching expected
  ``(A, L)`` keyed by (scheme, program digest, inputs, config digest) and by
  (scheme, trace digest, config digest), which makes repeat verification
  O(lookup) instead of O(re-execution).
* :mod:`repro.service.runner` -- the campaign runner: two-stage
  capture/attest fan-out, central verification, recombined results.
* :mod:`repro.service.presets` -- every benchmark experiment (E1-E9, plus
  the E11 scheme matrix) expressed as a campaign.
* :mod:`repro.service.server` / :mod:`repro.service.client` -- the
  networked deployment: an asyncio TCP verifier daemon speaking the
  length-prefixed challenge/report framing
  (:mod:`repro.attestation.framing`), and the concurrent simulated-prover
  client/load generator behind ``repro serve`` / ``repro attest-remote``
  (see ``docs/SERVER.md``).

Campaigns are scheme-parameterized (see :mod:`repro.schemes`): one spec can
sweep ``lofat`` x ``cflat`` x ``static`` over the same workloads and attacks,
which is how the paper's LO-FAT-vs-C-FLAT comparison runs end to end.

Quickstart::

    from repro.service import CampaignRunner, experiment_campaign
    result = CampaignRunner().run(experiment_campaign("e5"), workers=4)
    assert result.ok           # benign accepted, all attacks detected
    print(result.summary())
"""

from repro.service.campaign import (
    CampaignJob,
    CampaignSpec,
    CampaignSpecError,
    ConfigVariant,
    WorkloadSelection,
)
from repro.service.database import MeasurementDatabase, config_digest
from repro.service.presets import (
    adversary_campaign,
    all_experiments,
    experiment_campaign,
    family_campaign,
    full_campaign,
)
from repro.service.runner import CampaignResult, CampaignRunner, JobResult
from repro.service.tracestore import (
    CapturedExecution,
    TraceStore,
    execution_signature,
)
from repro.service.worker import (
    CaptureResponse,
    ProverResponse,
    execute_attest_job,
    execute_capture_job,
    execute_prover_job,
)

# The asyncio server/client pair is imported lazily by the CLI and tests
# (`from repro.service.server import AttestationServer`); importing it here
# would pull asyncio machinery into every campaign worker process for no
# benefit, so only the names that are cheap stay eager.

__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "CampaignSpecError",
    "ConfigVariant",
    "WorkloadSelection",
    "MeasurementDatabase",
    "config_digest",
    "adversary_campaign",
    "all_experiments",
    "experiment_campaign",
    "family_campaign",
    "full_campaign",
    "CampaignResult",
    "CampaignRunner",
    "JobResult",
    "CapturedExecution",
    "TraceStore",
    "execution_signature",
    "CaptureResponse",
    "ProverResponse",
    "execute_attest_job",
    "execute_capture_job",
    "execute_prover_job",
]
