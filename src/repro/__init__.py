"""LO-FAT reproduction: hardware control-flow attestation, simulated in Python.

This package reproduces *LO-FAT: Low-Overhead Control Flow ATtestation in
Hardware* (Dessouky et al., DAC 2017) as a trace-based simulation:

* :mod:`repro.isa` / :mod:`repro.cpu` -- an RV32IM assembler and a Pulpino-like
  embedded core model that produces the retired-instruction trace LO-FAT snoops.
* :mod:`repro.cfg` -- the verifier's offline static analysis (CFG, loops).
* :mod:`repro.lofat` -- the paper's contribution: branch filter, loop monitor,
  path encoder, loop counter memory, SHA-3 hash engine, metadata generator and
  the FPGA area model.
* :mod:`repro.schemes` -- the pluggable attestation-scheme API: one protocol
  for the ``lofat``, ``cflat`` and ``static`` backends, plus the registry.
* :mod:`repro.attestation` -- the challenge-response protocol (prover/verifier).
* :mod:`repro.lang` -- the workload compiler: a small structured language
  targeting the ISA, with CFG/loop metadata as a compilation by-product,
  parameterized workload families and ports of the assembly workloads.
* :mod:`repro.attacks` -- the three run-time attack classes of Figure 1.
* :mod:`repro.workloads` -- embedded evaluation workloads (syringe pump, ...).
* :mod:`repro.analysis` -- experiment drivers and report formatting.
* :mod:`repro.service` -- the attestation campaign service: parallel
  multi-prover fan-out, measurement database, experiment presets.

Quickstart::

    from repro import attest_workload
    result, measurement = attest_workload("syringe_pump")
    print(measurement.measurement_hex)

Campaign-scale quickstart::

    from repro.service import CampaignRunner, experiment_campaign
    result = CampaignRunner().run(experiment_campaign("e5"), workers=4)
    assert result.ok
"""

from repro.attestation import Prover, Verifier
from repro.lofat import AttestationMeasurement, LoFatConfig, LoFatEngine
from repro.lofat.engine import attest_execution
from repro.schemes import AttestationScheme, all_schemes, get_scheme
from repro.service import CampaignRunner, CampaignSpec, MeasurementDatabase
from repro.workloads import Workload, all_workloads, get_workload

__version__ = "1.1.0"


def attest_workload(name: str, inputs=None, config=None, scheme=None):
    """Run a registered workload under a scheme and return (result, measurement).

    ``inputs`` overrides the workload's default input vector.  With the
    default LO-FAT scheme, ``config`` is an optional
    :class:`repro.lofat.LoFatConfig` and the return matches
    :func:`repro.lofat.engine.attest_execution`.  Passing ``scheme`` (a
    registry name, e.g. ``"cflat"``) measures through that backend instead
    and returns its :class:`repro.schemes.SchemeMeasurement`.
    """
    workload = get_workload(name)
    program = workload.build()
    run_inputs = list(workload.inputs) if inputs is None else list(inputs)
    if scheme is None or scheme == "lofat":
        return attest_execution(program, inputs=run_inputs, config=config)
    return get_scheme(scheme).measure_execution(program, run_inputs,
                                                config=config)


__all__ = [
    "Prover",
    "Verifier",
    "CampaignRunner",
    "CampaignSpec",
    "MeasurementDatabase",
    "AttestationMeasurement",
    "AttestationScheme",
    "LoFatConfig",
    "LoFatEngine",
    "all_schemes",
    "attest_execution",
    "attest_workload",
    "get_scheme",
    "Workload",
    "all_workloads",
    "get_workload",
    "__version__",
]
