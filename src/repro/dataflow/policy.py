"""The StaticPolicy artifact: statically proven program facts for verifiers.

A :class:`StaticPolicy` condenses the dataflow passes into the checkable
facts a verifier can enforce on an attestation report *before* any
simulation or replay:

* ``loop_entries`` — every natural-loop header; a loop record naming any
  other entry address is structurally impossible for a benign run.
* ``loop_bounds`` — per entry, an inclusive interval on the per-episode
  ``LoopRecord.iterations`` value the monitor can report.
* ``valid_pairs`` — every instruction-level ``(src, dest)`` control-flow
  pair a benign execution can emit (used by the adversary vetting pass and
  the soundness oracle; the measurement hash itself hides pairs from the
  verifier, so this set is not enforced on reports).
* ``unreachable_blocks`` — block starts proven unreachable from the entry.

The artifact round-trips through JSON so campaign tooling can persist it in
the measurement database and ship it to verifier processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

POLICY_VERSION = 1


@dataclass(frozen=True)
class LoopPolicy:
    """Per-loop-entry constraints on reported iteration counts."""

    entry: int
    min_iterations: int
    max_iterations: int

    def permits(self, iterations: int) -> bool:
        return self.min_iterations <= iterations <= self.max_iterations


@dataclass(frozen=True)
class StaticPolicy:
    """Statically proven facts about one program, keyed by its digest."""

    program_digest: str
    loop_entries: FrozenSet[int]
    loop_bounds: Tuple[LoopPolicy, ...]
    valid_pairs: FrozenSet[Tuple[int, int]]
    unreachable_blocks: FrozenSet[int] = field(default_factory=frozenset)
    #: When False the entry-set check is advisory only (kept for programs
    #: whose dynamic loop discovery outruns the static loop forest).
    enforce_entries: bool = True

    def bound_for(self, entry: int) -> Optional[LoopPolicy]:
        for bound in self.loop_bounds:
            if bound.entry == entry:
                return bound
        return None

    def check_loop_record(self, entry: int, iterations: int) -> Optional[str]:
        """Return a rejection detail when a loop record is infeasible."""
        if self.enforce_entries and entry not in self.loop_entries:
            return (
                "loop entry %#x is not a statically known loop header" % entry
            )
        bound = self.bound_for(entry)
        if bound is not None and not bound.permits(iterations):
            return (
                "loop %#x reported %d iterations outside the proven "
                "interval [%d, %d]"
                % (entry, iterations, bound.min_iterations, bound.max_iterations)
            )
        return None

    # -- serialisation --------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "version": POLICY_VERSION,
            "program_digest": self.program_digest,
            "loop_entries": sorted(self.loop_entries),
            "loop_bounds": [
                {
                    "entry": bound.entry,
                    "min_iterations": bound.min_iterations,
                    "max_iterations": bound.max_iterations,
                }
                for bound in sorted(self.loop_bounds, key=lambda b: b.entry)
            ],
            "valid_pairs": [list(pair) for pair in sorted(self.valid_pairs)],
            "unreachable_blocks": sorted(self.unreachable_blocks),
            "enforce_entries": self.enforce_entries,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "StaticPolicy":
        version = payload.get("version", POLICY_VERSION)
        if version != POLICY_VERSION:
            raise ValueError("unsupported StaticPolicy version %r" % (version,))
        bounds = tuple(
            LoopPolicy(
                entry=int(row["entry"]),  # type: ignore[index]
                min_iterations=int(row["min_iterations"]),  # type: ignore[index]
                max_iterations=int(row["max_iterations"]),  # type: ignore[index]
            )
            for row in payload.get("loop_bounds", [])  # type: ignore[union-attr]
        )
        return cls(
            program_digest=str(payload["program_digest"]),
            loop_entries=frozenset(
                int(v) for v in payload.get("loop_entries", [])  # type: ignore[union-attr]
            ),
            loop_bounds=bounds,
            valid_pairs=frozenset(
                (int(pair[0]), int(pair[1]))
                for pair in payload.get("valid_pairs", [])  # type: ignore[union-attr]
            ),
            unreachable_blocks=frozenset(
                int(v) for v in payload.get("unreachable_blocks", [])  # type: ignore[union-attr]
            ),
            enforce_entries=bool(payload.get("enforce_entries", True)),
        )

    def policy_digest(self) -> str:
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha3_256(canonical.encode("utf-8")).hexdigest()

    def with_bound(self, entry: int, min_iterations: int, max_iterations: int) -> "StaticPolicy":
        """A copy with one loop bound replaced (test/tooling helper)."""
        rows = [b for b in self.loop_bounds if b.entry != entry]
        rows.append(LoopPolicy(entry, min_iterations, max_iterations))
        return StaticPolicy(
            program_digest=self.program_digest,
            loop_entries=self.loop_entries | {entry},
            loop_bounds=tuple(sorted(rows, key=lambda b: b.entry)),
            valid_pairs=self.valid_pairs,
            unreachable_blocks=self.unreachable_blocks,
            enforce_entries=self.enforce_entries,
        )
