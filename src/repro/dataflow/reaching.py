"""Reaching definitions over registers.

A definition is a ``(register, pc)`` pair; the pseudo-pc ``-1`` denotes the
initial register file state at reset (every register starts defined: zeroed,
with ``sp``/``gp`` seeded by the CPU).  Propagation follows every CFG edge
kind, over-approximating the possible flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.cfg.builder import ControlFlowGraph
from repro.dataflow import engine
from repro.dataflow.semantics import register_def

#: (register, defining pc); pc == INITIAL_PC for the reset state.
Definition = Tuple[int, int]
INITIAL_PC = -1


@dataclass
class ReachingDefinitions:
    reach_in: Dict[int, FrozenSet[Definition]]

    def reaching(self, block_start: int, register: int) -> Set[int]:
        """The pcs of definitions of ``register`` live at block entry."""
        return {
            pc for reg, pc in self.reach_in.get(block_start, frozenset())
            if reg == register
        }


def analyze_reaching_definitions(cfg: ControlFlowGraph) -> ReachingDefinitions:
    block_by_start = {block.start: block for block in cfg.blocks}

    def successors(start: int):
        return [edge.dst for edge in cfg.successors(start)
                if edge.dst in block_by_start]

    def transfer(start: int, reach_in: FrozenSet[Definition]) -> FrozenSet[Definition]:
        killed: Set[int] = set()
        generated: Dict[int, int] = {}
        for instr in block_by_start[start].instructions:
            defined = register_def(instr)
            if defined is not None:
                killed.add(defined)
                generated[defined] = instr.address
        surviving = {d for d in reach_in if d[0] not in killed}
        surviving.update(generated.items())
        return frozenset(surviving)

    entry = cfg.entry_block
    seeds = {
        entry.start: frozenset((reg, INITIAL_PC) for reg in range(1, 32))
    }
    reach_in = engine.solve(
        nodes=[block.start for block in cfg.blocks],
        successors=successors,
        transfer=transfer,
        join=lambda a, b: a | b,
        seeds=seeds,
    )
    return ReachingDefinitions(reach_in=dict(reach_in))
