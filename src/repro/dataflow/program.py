"""The shared, cached per-program analysis entry point.

Every consumer of static program facts — the verifier's structural checks,
the adversary generator's feasibility vetting, the lint pass and the
``repro analyze`` CLI — goes through :func:`analyze_program`, which caches
one :class:`ProgramAnalysis` per program digest process-wide.  The cheap
structural pieces (CFG, natural loops, path checker, backward-edge targets)
are built eagerly, exactly like the verifier's historical
``ProgramKnowledge``; the dataflow passes (intervals, loop bounds,
liveness, reaching definitions, the StaticPolicy) are computed lazily on
first use and memoised, so a verifier that never installs a policy pays
nothing for the new machinery.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.builder import ControlFlowGraph, EdgeKind, build_cfg
from repro.cfg.dominators import compute_dominators
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.paths import PathChecker
from repro.dataflow.absint import IntervalAnalysis, analyze_intervals
from repro.dataflow.liveness import LivenessAnalysis, analyze_liveness
from repro.dataflow.loopbounds import LoopBound, infer_loop_bounds
from repro.dataflow.policy import LoopPolicy, StaticPolicy
from repro.dataflow.reaching import ReachingDefinitions, analyze_reaching_definitions
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction


class ProgramAnalysis:
    """Offline analysis of one program: structure eagerly, dataflow lazily."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.cfg: ControlFlowGraph = build_cfg(program)
        self.loops: List[NaturalLoop] = find_natural_loops(self.cfg)
        self.path_checker = PathChecker(self.cfg)

        backward_targets: Set[int] = set()
        for block in self.cfg.blocks:
            terminator = block.terminator
            if terminator.is_conditional_branch or terminator.is_direct_jump:
                target = terminator.address + terminator.imm
                if target <= terminator.address:
                    backward_targets.add(target)
        #: Addresses that are plausible run-time loop entries: targets of
        #: backward CFG edges (the heuristic LO-FAT applies in hardware).
        self.backward_edge_targets: FrozenSet[int] = frozenset(backward_targets)
        #: Every instruction address, precomputed for O(1) metadata checks.
        self.instruction_addresses: FrozenSet[int] = frozenset(
            instr.address for instr in program.instructions
        )
        self._instruction_by_address: Dict[int, Instruction] = {
            instr.address: instr for instr in program.instructions
        }

        self._lock = threading.Lock()
        self._dominators: Optional[Dict[int, Set[int]]] = None
        self._intervals: Optional[IntervalAnalysis] = None
        self._loop_bounds: Optional[Dict[int, LoopBound]] = None
        self._liveness: Optional[LivenessAnalysis] = None
        self._reaching: Optional[ReachingDefinitions] = None
        self._policy: Optional[StaticPolicy] = None
        self._valid_pairs: Optional[FrozenSet[Tuple[int, int]]] = None

    # ------------------------------------------------------------- queries
    def instruction_at(self, address: int) -> Optional[Instruction]:
        return self._instruction_by_address.get(address)

    def first_control_flow_from(self, address: int) -> Optional[int]:
        """First control-flow instruction on the straight-line path from
        ``address``, or None when the scan runs off the program."""
        while address in self._instruction_by_address:
            if self._instruction_by_address[address].is_control_flow:
                return address
            address += 4
        return None

    # ------------------------------------------------------ lazy dataflow
    @property
    def dominators(self) -> Dict[int, Set[int]]:
        if self._dominators is None:
            with self._lock:
                if self._dominators is None:
                    self._dominators = compute_dominators(self.cfg)
        return self._dominators

    @property
    def intervals(self) -> IntervalAnalysis:
        if self._intervals is None:
            with self._lock:
                if self._intervals is None:
                    self._intervals = analyze_intervals(self.program, self.cfg)
        return self._intervals

    @property
    def loop_bounds(self) -> Dict[int, LoopBound]:
        if self._loop_bounds is None:
            intervals = self.intervals
            with self._lock:
                if self._loop_bounds is None:
                    self._loop_bounds = infer_loop_bounds(
                        self.program, self.cfg, self.loops, intervals
                    )
        return self._loop_bounds

    @property
    def liveness(self) -> LivenessAnalysis:
        if self._liveness is None:
            with self._lock:
                if self._liveness is None:
                    self._liveness = analyze_liveness(self.cfg)
        return self._liveness

    @property
    def reaching_definitions(self) -> ReachingDefinitions:
        if self._reaching is None:
            with self._lock:
                if self._reaching is None:
                    self._reaching = analyze_reaching_definitions(self.cfg)
        return self._reaching

    @property
    def unreachable_blocks(self) -> FrozenSet[int]:
        reachable = self.intervals.reachable_blocks
        return frozenset(
            block.start for block in self.cfg.blocks if block.start not in reachable
        )

    @property
    def valid_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Every instruction-level (src, dest) pair a benign run can emit.

        Derived from the CFG edge set minus branch edges the interval
        fixpoint proves infeasible, minus edges out of unreachable blocks,
        with indirect edges narrowed to the resolved target set.  Pairs use
        the *terminator's* address as source, matching the trace and the
        hardware measurement; fallthroughs of non-control-flow terminators
        emit no pair and are excluded.
        """
        if self._valid_pairs is None:
            intervals = self.intervals
            pairs: Set[Tuple[int, int]] = set()
            for edge in self.cfg.edges:
                block = self.cfg.block_starting_at(edge.src)
                if block is None:
                    continue
                terminator = block.terminator
                if not terminator.is_control_flow:
                    continue
                if edge.src not in intervals.reachable_blocks:
                    continue
                if (edge.src, edge.dst) in intervals.infeasible_edges:
                    continue
                if edge.kind is EdgeKind.INDIRECT:
                    resolution = intervals.indirect_targets.get(terminator.address)
                    if resolution is not None:
                        targets, resolved = resolution
                        if resolved and edge.dst not in targets:
                            continue
                pairs.add((block.terminator_address, edge.dst))
            self._valid_pairs = frozenset(pairs)
        return self._valid_pairs

    @property
    def policy(self) -> StaticPolicy:
        """The StaticPolicy artifact condensing the proven facts."""
        if self._policy is None:
            bounds: List[LoopPolicy] = []
            loop_entries: Set[int] = set()
            for header, bound in sorted(self.loop_bounds.items()):
                loop_entries.add(header)
                if bound.max_back_edges is None:
                    continue
                minimum = 0
                if bound.exact_back_edges is not None:
                    minimum = max(0, bound.exact_back_edges - 1)
                bounds.append(
                    LoopPolicy(header, minimum, bound.max_back_edges)
                )
            # The run-time loop monitor detects loops by the backward-edge
            # heuristic; on an irreducible CFG that can report an entry the
            # natural-loop forest does not contain.  Enforcing the entry set
            # would then reject a benign run, so the check downgrades to
            # advisory unless every backward-edge target is a known header.
            enforce = self.backward_edge_targets <= frozenset(loop_entries)
            self._policy = StaticPolicy(
                program_digest=self.program.digest,
                loop_entries=frozenset(loop_entries),
                loop_bounds=tuple(bounds),
                valid_pairs=self.valid_pairs,
                unreachable_blocks=self.unreachable_blocks,
                enforce_entries=enforce,
            )
        return self._policy


#: Process-wide cache of analyses, keyed by program digest.  Shared by every
#: Verifier instance, campaign worker thread and CLI invocation in the
#: process; entries are immutable once the lazy passes settle.
_ANALYSIS_CACHE: Dict[str, ProgramAnalysis] = {}
_ANALYSIS_CACHE_MAX = 64
_ANALYSIS_CACHE_LOCK = threading.Lock()


def analyze_program(program: Program) -> ProgramAnalysis:
    """The cached analysis for ``program`` (one instance per digest)."""
    analysis = _ANALYSIS_CACHE.get(program.digest)
    if analysis is None:
        analysis = ProgramAnalysis(program)
        with _ANALYSIS_CACHE_LOCK:
            if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_MAX:
                _ANALYSIS_CACHE.clear()
            _ANALYSIS_CACHE[program.digest] = analysis
    return analysis


def clear_analysis_cache() -> None:
    """Drop all cached analyses (tests and benchmarks)."""
    with _ANALYSIS_CACHE_LOCK:
        _ANALYSIS_CACHE.clear()
