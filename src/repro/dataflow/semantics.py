"""Shared per-instruction register semantics.

Single source of truth for which architectural registers an instruction
reads and writes, used by the liveness pass, the dead-definition detector
and the dynamic soundness oracle.  The ``ecall`` row mirrors
:mod:`repro.cpu.syscalls`: the handler dispatches on ``a7``, reads ``a0``
and only ever writes ``a0`` (the ``read_int`` result).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import Instruction

#: Conditional branch mnemonics, in ``repro.isa`` spelling.
BRANCH_MNEMONICS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

#: Registers the RISC-V ABI requires a callee to preserve, plus x0.  The
#: interval analysis assumes direct calls respect this contract for ``sp``,
#: ``gp``, ``tp`` and the saved registers; the assumption is pinned
#: empirically by the tier-1 soundness oracle.
CALLEE_SAVED = frozenset((0, 2, 3, 4, 8, 9) + tuple(range(18, 28)))

_A0 = 10
_A7 = 17

_NO_OPERANDS = ("lui", "auipc", "jal", "ebreak", "fence")


def register_uses(instr: Instruction) -> Tuple[int, ...]:
    """Architectural registers read by ``instr`` (x0 included when encoded)."""
    mnemonic = instr.mnemonic
    if mnemonic == "ecall":
        return (_A0, _A7)
    if mnemonic in _NO_OPERANDS:
        return ()
    spec = instr.spec
    if spec.is_branch or spec.is_store:
        return (instr.rs1, instr.rs2)
    if spec.fmt.name == "R":
        return (instr.rs1, instr.rs2)
    # Loads, jalr and I-format ALU operations read a single source register.
    return (instr.rs1,)


def register_def(instr: Instruction) -> Optional[int]:
    """The register written by ``instr``, or None.

    Writes to x0 are architectural no-ops and are reported as None, so a
    ``j target`` (``jal x0``) is never treated as a definition.
    """
    mnemonic = instr.mnemonic
    if mnemonic == "ecall":
        return _A0
    if mnemonic in ("ebreak", "fence"):
        return None
    spec = instr.spec
    if spec.is_branch or spec.is_store:
        return None
    return instr.rd or None
