"""A small generic worklist dataflow solver.

The solver is direction-agnostic: a forward pass feeds it CFG successors,
a backward pass feeds it predecessors.  Facts must be immutable values with
structural equality (frozensets, tuples) drawn from a finite lattice so the
iteration terminates; passes needing widening (the interval analysis in
:mod:`repro.dataflow.absint`) implement their own specialised loop instead.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Mapping, TypeVar

Node = TypeVar("Node")
Fact = TypeVar("Fact")


def solve(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    transfer: Callable[[Node, Fact], Fact],
    join: Callable[[Fact, Fact], Fact],
    seeds: Mapping[Node, Fact],
) -> Dict[Node, Fact]:
    """Iterate ``transfer`` to a fixpoint and return the entry fact per node.

    ``seeds`` maps boundary nodes to their initial entry facts; nodes never
    reached by propagation are absent from the result (callers decide what
    absence means — typically unreachability or the bottom fact).
    """
    order = list(nodes)
    entry_facts: Dict[Node, Fact] = dict(seeds)
    worklist: deque = deque(node for node in order if node in entry_facts)
    pending = set(worklist)

    while worklist:
        node = worklist.popleft()
        pending.discard(node)
        exit_fact = transfer(node, entry_facts[node])
        for succ in successors(node):
            if succ in entry_facts:
                merged = join(entry_facts[succ], exit_fact)
                if merged == entry_facts[succ]:
                    continue
                entry_facts[succ] = merged
            else:
                entry_facts[succ] = exit_fact
            if succ not in pending:
                pending.add(succ)
                worklist.append(succ)
    return entry_facts
