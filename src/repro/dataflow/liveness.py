"""Backward register liveness and dead-definition detection.

Liveness runs over *all* CFG edge kinds, which over-approximates the
possible control flow (INDIRECT edges fan out to every function entry,
RETURN edges to every call continuation); an over-approximation of future
uses is exactly what makes a "this definition is dead" claim sound.  A
definition is reported dead only for side-effect-light instructions (ALU
ops, ``lui``/``auipc`` and loads) — never for linking jumps or ``ecall``,
whose register writes are incidental to their real effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.cfg.builder import ControlFlowGraph
from repro.dataflow import engine
from repro.dataflow.semantics import register_def, register_uses

Registers = FrozenSet[int]


@dataclass(frozen=True)
class DeadDef:
    """A register definition whose value is provably never read."""

    pc: int
    register: int
    mnemonic: str


@dataclass
class LivenessAnalysis:
    live_in: Dict[int, Registers]
    live_out: Dict[int, Registers]
    dead_defs: List[DeadDef]


def _flaggable(instr) -> bool:
    spec = instr.spec
    if spec.is_store or spec.is_branch or spec.is_system or spec.is_jump:
        return False
    return instr.mnemonic != "fence"


def analyze_liveness(cfg: ControlFlowGraph) -> LivenessAnalysis:
    """Solve block-level liveness and collect dead register definitions."""
    starts = [block.start for block in cfg.blocks]
    block_by_start = {block.start: block for block in cfg.blocks}

    def predecessors(start: int):
        return [edge.src for edge in cfg.predecessors(start)]

    def transfer(start: int, live_out: Registers) -> Registers:
        live = set(live_out)
        for instr in reversed(block_by_start[start].instructions):
            defined = register_def(instr)
            if defined is not None:
                live.discard(defined)
            live.update(u for u in register_uses(instr) if u)
        return frozenset(live)

    live_out = engine.solve(
        nodes=starts,
        successors=predecessors,
        transfer=transfer,
        join=lambda a, b: a | b,
        seeds={start: frozenset() for start in starts},
    )

    live_in: Dict[int, Registers] = {}
    dead: List[DeadDef] = []
    for start in starts:
        live = set(live_out.get(start, frozenset()))
        for instr in reversed(block_by_start[start].instructions):
            defined = register_def(instr)
            if defined is not None:
                if defined not in live and _flaggable(instr):
                    dead.append(DeadDef(instr.address, defined, instr.mnemonic))
                live.discard(defined)
            live.update(u for u in register_uses(instr) if u)
        live_in[start] = frozenset(live)
    dead.sort(key=lambda d: d.pc)
    return LivenessAnalysis(live_in=live_in, live_out=dict(live_out), dead_defs=dead)
