"""Static feasibility classification of candidate attack scenarios.

Replaces a portion of the adversary generator's execution-based vetting:
instead of running every candidate under every runtime scheme, candidates
whose effect on the measurement is statically forced are classified here
and only receive a single plain (uninstrumented) run for the behavioural
checks (termination, trigger firing, output divergence).

Soundness arguments:

* **Redirects** (`classify_redirect`): a control-flow redirect replaces the
  program counter *before* the trigger retires, so the attacked run's next
  control-flow record is the first control-flow instruction on the
  straight-line path from the redirect target, while the benign run's is
  the first on the path from the trigger.  If those two source addresses
  differ, the (src, dest) pair streams differ at that position and a
  collision-resistant stream hash must differ.  The argument is exact for
  C-FLAT's single chained hash; for LO-FAT the diverging pair may land in
  a loop-path encoding rather than the main hash, moving the difference
  from ``A`` to ``L`` — either way the report key changes.  Tier-1 pins
  the classification against the execution oracle for both schemes.
* **Data-only corruptions** (`classify_data_only`): if the corrupted byte
  range intersects no load instruction's address interval and no reachable
  ``ecall`` can select SYS_PRINT_STRING (whose handler reads memory beyond
  any load), the written bytes are never read, the execution is
  bit-identical to benign from the trigger onward, and the measurement —
  of any scheme — cannot change.

``UNKNOWN`` always falls back to the execution-based vetting path, so a
miss here costs time, never correctness.
"""

from __future__ import annotations

from typing import Optional

from repro.dataflow.program import ProgramAnalysis

#: The attacked measurement provably differs from the benign reference.
PROVEN_DIVERGENT = "proven-divergent"
#: The attacked measurement provably equals the benign reference.
PROVEN_INVISIBLE = "proven-invisible"
#: No static proof either way: vet by execution.
UNKNOWN = "unknown"


def classify_redirect(
    analysis: ProgramAnalysis, trigger_pc: int, target_pc: int
) -> str:
    """Classify a control-flow redirect (bend / skip / loop tamper)."""
    benign_next = analysis.first_control_flow_from(trigger_pc)
    attacked_next = analysis.first_control_flow_from(target_pc)
    if benign_next is None or attacked_next is None:
        return UNKNOWN  # a scan ran off the program image
    if benign_next != attacked_next:
        return PROVEN_DIVERGENT
    return UNKNOWN


def classify_data_only(
    analysis: ProgramAnalysis, address: int, size: int
) -> str:
    """Classify a memory corruption of ``size`` bytes at ``address``."""
    intervals = analysis.intervals
    if intervals.ecalls_may_print_string():
        return UNKNOWN
    corrupt_lo, corrupt_hi = address, address + size - 1
    for load_lo, load_hi in intervals.loaded_ranges():
        if not (corrupt_hi < load_lo or corrupt_lo > load_hi):
            return UNKNOWN  # some load may observe the corrupted bytes
    return PROVEN_INVISIBLE


def predicted_detection(scheme: str, verdict: str) -> Optional[bool]:
    """Whether ``scheme`` detects an attack with the given static verdict.

    True: the report key provably differs from the benign reference.
    False: the key provably matches (the attack is invisible).
    None: undecided — use execution-based vetting.
    """
    if verdict == PROVEN_INVISIBLE:
        return False
    if scheme == "static":
        # The static scheme measures the program image, not the run; no
        # runtime attack can move its measurement.
        return False
    if verdict == PROVEN_DIVERGENT:
        return True
    return None
