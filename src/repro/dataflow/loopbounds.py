"""Static loop trip-count inference.

For each natural loop, tries to prove an upper bound (and, in fully
constant cases, the exact count) on the number of *back-edge traversals*
per entry of the loop, by recognising a single induction cell — a register
or a constant-address memory word — updated by exactly one constant-step
instruction per iteration, and an exit branch comparing that cell against a
loop-invariant bound.

The bound is stated in back edges because that is what the LO-FAT monitor
counts: per episode, ``LoopRecord.iterations`` equals the number of back
edges observed (the first back edge *discovers* the loop, each further one
fires an iteration boundary, and the partial exit path adds the final
count).  Soundness argument for the upper bound, given the requirements
enforced below:

* the exit branch's block dominates the latch within the loop body, so the
  condition is evaluated at least once per back-edge traversal;
* the step instruction's block dominates the latch and belongs to no inner
  loop, so between consecutive evaluations the cell advances by at least
  one step toward the bound, and no other instruction writes the cell;
* the bound operand is loop-invariant, so its value stays inside the
  interval the fixpoint analysis assigns it;
* signedness/overflow guards keep the comparison monotone in the cell.

Hence the j-th evaluation that continues the loop sees a cell value at
least ``init_lo + (j-1)*step`` past the initial interval's low end, which
caps j — and with it the back-edge count.  Lower bounds are only claimed
when every quantity is an exact constant and the loop has a single exit
and no system instruction that could cut an iteration short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.builder import ControlFlowGraph, EdgeKind
from repro.cfg.loops import NaturalLoop
from repro.dataflow.absint import IntervalAnalysis, RegState, StoreFact
from repro.dataflow.lattice import Interval
from repro.dataflow.semantics import register_def
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction

INT_MAX = (1 << 31) - 1
WORD_MODULUS = 1 << 32

#: Symbolic block-local values: ("const", c), ("entry", reg, k) — register
#: value at block entry plus k — or ("cell", addr, k) — memory word value at
#: block entry plus k.
Sym = Tuple[str, int, int]

_BODY_EDGE_KINDS = (EdgeKind.FALLTHROUGH, EdgeKind.BRANCH_TAKEN, EdgeKind.JUMP)


@dataclass(frozen=True)
class LoopBound:
    """Inferred per-entry back-edge bounds for one natural loop."""

    header: int
    latch: int
    #: Sound upper bound on back edges per loop entry; None when unbounded.
    max_back_edges: Optional[int]
    #: Exact back-edge count when statically forced; None otherwise.
    exact_back_edges: Optional[int]
    #: Human-readable induction-cell description for lint output.
    counter: str = ""

    @property
    def bounded(self) -> bool:
        return self.max_back_edges is not None


def infer_loop_bounds(
    program: Program,
    cfg: ControlFlowGraph,
    loops: Sequence[NaturalLoop],
    intervals: IntervalAnalysis,
) -> Dict[int, LoopBound]:
    """Infer bounds for every loop; unbounded loops map to an open bound."""
    bounds: Dict[int, LoopBound] = {}
    for loop in loops:
        bounds[loop.header] = _analyze_loop(program, cfg, loops, loop, intervals)
    return bounds


def _analyze_loop(
    program: Program,
    cfg: ControlFlowGraph,
    loops: Sequence[NaturalLoop],
    loop: NaturalLoop,
    intervals: IntervalAnalysis,
) -> LoopBound:
    unbounded = LoopBound(loop.header, -1, None, None)
    if len(loop.back_edges) != 1:
        return unbounded
    latch = loop.back_edges[0][0]
    unbounded = LoopBound(loop.header, latch, None, None)
    body = set(loop.body)

    blocks = []
    has_system = False
    for start in sorted(body):
        block = cfg.block_starting_at(start)
        if block is None:
            return unbounded
        terminator = block.terminator
        if terminator.is_indirect_jump or (
            terminator.is_control_flow and terminator.writes_link_register
        ):
            return unbounded  # calls / indirect flow: no iteration contract
        if any(i.spec.is_system for i in block.instructions):
            has_system = True
        blocks.append(block)

    dominators = _body_dominators(cfg, loop.header, body)

    exiting_blocks = [
        block for block in blocks
        if any(edge.dst not in body for edge in cfg.successors(block.start)
               if edge.kind in _BODY_EDGE_KINDS)
    ]

    best: Optional[LoopBound] = None
    for block in blocks:
        terminator = block.terminator
        if not terminator.is_conditional_branch:
            continue
        taken = terminator.address + terminator.imm
        fall = block.end
        taken_in = taken in body
        fall_in = fall in body
        if taken_in == fall_in:
            continue  # not a (single-sided) exit branch
        single_exit = len(exiting_blocks) == 1 and exiting_blocks[0] is block
        candidate = _try_exit_branch(
            cfg, loops, loop, intervals, dominators, body,
            block, latch, continue_on_taken=taken_in,
            has_system=has_system, single_exit=single_exit,
        )
        if candidate is None:
            continue
        if best is None or (
            best.max_back_edges is None
            or (candidate.max_back_edges is not None
                and candidate.max_back_edges < best.max_back_edges)
        ):
            best = candidate
    return best if best is not None else unbounded


def _body_dominators(
    cfg: ControlFlowGraph, header: int, body: Set[int]
) -> Dict[int, Set[int]]:
    """Dominators of the loop-body subgraph, rooted at the header."""
    successors: Dict[int, List[int]] = {start: [] for start in body}
    for start in body:
        for edge in cfg.successors(start):
            if edge.kind in _BODY_EDGE_KINDS and edge.dst in body:
                successors[start].append(edge.dst)
    dominators: Dict[int, Set[int]] = {header: {header}}
    everything = set(body)
    for start in body:
        if start != header:
            dominators[start] = set(everything)
    changed = True
    order = sorted(body)
    while changed:
        changed = False
        for start in order:
            if start == header:
                continue
            preds = [p for p in body if start in successors[p]]
            incoming = None
            for pred in preds:
                incoming = (
                    set(dominators[pred]) if incoming is None
                    else incoming & dominators[pred]
                )
            new = (incoming or set()) | {start}
            if new != dominators[start]:
                dominators[start] = new
                changed = True
    return dominators


def _try_exit_branch(
    cfg: ControlFlowGraph,
    loops: Sequence[NaturalLoop],
    loop: NaturalLoop,
    intervals: IntervalAnalysis,
    dominators: Dict[int, Set[int]],
    body: Set[int],
    block,  # BasicBlock
    latch: int,
    continue_on_taken: bool,
    has_system: bool,
    single_exit: bool,
) -> Optional[LoopBound]:
    entry_regs = intervals.block_states.get(block.start)
    if entry_regs is None:
        return None  # statically unreachable: leave the loop unbounded
    if block.start not in dominators.get(latch, set()):
        return None  # the condition may be skipped on some iteration
    terminator = block.terminator
    sym, cmp = _symbolic_block(
        block, block.size - 1, entry_regs, intervals.store_facts
    )
    mnemonic = terminator.mnemonic
    lhs = sym.get(terminator.rs1)
    rhs = sym.get(terminator.rs2)
    # The codegen lowers `a < b` as `slt t, a, b; beq/bne t, x0, ...`:
    # rewrite such branches into the equivalent direct comparison.
    if mnemonic in ("beq", "bne"):
        for flag_reg, other_sym in ((terminator.rs1, rhs), (terminator.rs2, lhs)):
            fact = cmp.get(flag_reg)
            if fact is not None and other_sym == ("const", 0, 0):
                cmp_op, cmp_lhs, cmp_rhs = fact
                mnemonic = {
                    "slt": {"bne": "blt", "beq": "bge"},
                    "sltu": {"bne": "bltu", "beq": "bgeu"},
                }[cmp_op][mnemonic]
                lhs, rhs = cmp_lhs, cmp_rhs
                break
    if lhs is None or rhs is None:
        return None

    resolved = []
    for counter_sym, bound_sym, counter_left in ((lhs, rhs, True), (rhs, lhs, False)):
        step = _find_step(cfg, loops, loop, intervals, dominators, body,
                          latch, counter_sym)
        if step is None:
            continue
        bound = _invariant_bound(cfg, intervals, body, block, bound_sym)
        if bound is None:
            continue
        resolved.append((counter_sym, bound, counter_left, step))
    if len(resolved) != 1:
        return None
    counter_sym, bound_iv, counter_left, step_info = resolved[0]
    step, init_iv, counter_desc, single_writer = step_info

    op = _continue_op(mnemonic, continue_on_taken, counter_left)
    if op is None:
        return None
    offset = counter_sym[2]
    max_back = _max_back_edges(op, init_iv, offset, step, bound_iv)
    if max_back is None:
        return None

    exact: Optional[int] = None
    if (
        init_iv.is_const
        and bound_iv.is_const
        and not has_system
        and single_exit
        and single_writer
    ):
        exact = max_back
    return LoopBound(loop.header, latch, max_back, exact, counter_desc)


# ---------------------------------------------------------------------------
# induction cell discovery


def _find_step(
    cfg: ControlFlowGraph,
    loops: Sequence[NaturalLoop],
    loop: NaturalLoop,
    intervals: IntervalAnalysis,
    dominators: Dict[int, Set[int]],
    body: Set[int],
    latch: int,
    counter_sym: Sym,
):
    """Locate the unique step instruction for a candidate counter.

    Returns ``(step, init_interval, description, single_writer)`` or None.
    """
    kind = counter_sym[0]
    if kind == "entry":
        return _find_register_step(
            cfg, loops, loop, intervals, dominators, body, latch, counter_sym[1]
        )
    if kind == "cell":
        return _find_cell_step(
            cfg, loops, loop, intervals, dominators, body, latch, counter_sym[1]
        )
    return None


def _step_block_ok(
    loops: Sequence[NaturalLoop],
    loop: NaturalLoop,
    dominators: Dict[int, Set[int]],
    latch: int,
    block_start: int,
) -> bool:
    if block_start not in dominators.get(latch, set()):
        return False
    innermost = _innermost_loop(loops, block_start)
    return innermost is loop


def _innermost_loop(loops: Sequence[NaturalLoop], block_start: int) -> Optional[NaturalLoop]:
    best = None
    for candidate in loops:
        if block_start in candidate.body:
            if best is None or candidate.depth > best.depth:
                best = candidate
    return best


def _find_register_step(cfg, loops, loop, intervals, dominators, body, latch, reg):
    if reg == 0:
        return None
    writers: List[Instruction] = []
    for start in body:
        block = cfg.block_starting_at(start)
        for instr in block.instructions:
            if register_def(instr) == reg:
                writers.append(instr)
    if len(writers) != 1:
        return None
    step_instr = writers[0]
    if (
        step_instr.mnemonic != "addi"
        or step_instr.rs1 != reg
        or step_instr.imm == 0
    ):
        return None
    step_block = cfg.block_containing(step_instr.address)
    if step_block is None or not _step_block_ok(loops, loop, dominators, latch, step_block.start):
        return None
    init = _entry_edge_interval(cfg, intervals, body, loop.header, reg)
    if init is None:
        return None
    return (step_instr.imm, init, "reg x%d" % reg, True)


def _find_cell_step(cfg, loops, loop, intervals, dominators, body, latch, cell):
    step_instr: Optional[Instruction] = None
    step = 0
    for start in body:
        block = cfg.block_starting_at(start)
        for index, instr in enumerate(block.instructions):
            if not instr.spec.is_store:
                continue
            fact = intervals.store_facts.get(instr.address)
            if fact is None:
                if start in intervals.reachable_blocks:
                    return None
                continue  # unreachable store can never execute
            touch_lo, touch_hi = fact.address.lo, fact.address.hi + fact.size - 1
            if touch_hi < cell or touch_lo > cell + 3:
                continue
            # Any store that may alias the cell must be *the* step store.
            if (
                instr.mnemonic != "sw"
                or not fact.address.is_const
                or fact.address.value != cell
                or step_instr is not None
            ):
                return None
            entry_regs = intervals.block_states.get(start)
            if entry_regs is None:
                return None
            sym, _cmp = _symbolic_block(
                block, index, entry_regs, intervals.store_facts
            )
            value = sym.get(instr.rs2)
            if value is None or value[0] != "cell" or value[1] != cell or value[2] == 0:
                return None
            if not _step_block_ok(loops, loop, dominators, latch, start):
                return None
            step_instr = instr
            step = value[2]
    if step_instr is None:
        return None
    # The loop's own updates fold into the cell's interval, which keeps the
    # bound sound (only the interval's *low* end feeds the trip count) but
    # never constant: exactness is only claimed for register counters.  The
    # flow-sensitive header constraint is preferred over the flow-insensitive
    # memory word, which havocs to TOP for any loop deeper than the outer
    # memory rounds.
    init = intervals.block_cell_states.get(loop.header, {}).get(cell)
    if init is None:
        init = intervals.memory.read_word(cell)
    return (step, init, "cell 0x%x" % cell, False)


def _entry_edge_interval(cfg, intervals, body, header, reg) -> Optional[Interval]:
    joined: Optional[Interval] = None
    for (src, dst, _kind), state in intervals.edge_states.items():
        if dst != header or src in body:
            continue
        value = state[reg]
        joined = value if joined is None else joined.join(value)
    return joined


def _invariant_bound(cfg, intervals, body, block, bound_sym: Sym) -> Optional[Interval]:
    kind, ident, offset = bound_sym
    if kind == "const":
        return Interval.const(ident)
    if kind == "entry":
        if ident == 0:
            return Interval.const(offset)
        for start in body:
            for instr in cfg.block_starting_at(start).instructions:
                if register_def(instr) == ident:
                    return None  # written inside the loop: not invariant
        entry_regs = intervals.block_states.get(block.start)
        if entry_regs is None:
            return None
        return entry_regs[ident].add_const(offset)
    if kind == "cell":
        for start in body:
            for instr in cfg.block_starting_at(start).instructions:
                if not instr.spec.is_store:
                    continue
                fact = intervals.store_facts.get(instr.address)
                if fact is None:
                    if start in intervals.reachable_blocks:
                        return None
                    continue
                if fact.address.hi + fact.size - 1 < ident or fact.address.lo > ident + 3:
                    continue
                return None  # may be overwritten inside the loop
        value = intervals.memory.read_word(ident)
        constraint = intervals.block_cell_states.get(block.start, {}).get(ident)
        if constraint is not None:
            met = value.meet(constraint)
            value = met if met is not None else constraint
        return value.add_const(offset)
    return None


# ---------------------------------------------------------------------------
# block-local symbolic evaluation


#: A compare fact: ("slt" | "sltu", lhs sym, rhs sym) — the register holds
#: the 0/1 outcome of that comparison over block-entry-relative values.
CmpFact = Tuple[str, Sym, Sym]


def _signed_const(value: int) -> int:
    value %= WORD_MODULUS
    return value - WORD_MODULUS if value >= (1 << 31) else value


def _offset_sym(source: Sym, delta: int) -> Sym:
    """``source + delta`` where delta folds into the symbolic offset."""
    if source[0] == "const":
        return ("const", (source[1] + delta) % WORD_MODULUS, 0)
    return (source[0], source[1], source[2] + delta)


_SYM_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4}


def _symbolic_block(
    block,
    stop_index: int,
    entry_regs: RegState,
    store_facts: Optional[Dict[int, "StoreFact"]] = None,
) -> Tuple[Dict[int, Sym], Dict[int, CmpFact]]:
    """Evaluate ``block`` up to (excluding) ``stop_index`` symbolically.

    Register meanings are relative to the *block entry*: ``("entry", r, k)``
    is the entry value of ``r`` plus ``k``; ``("cell", a, k)`` is the value
    the word at constant address ``a`` held at block entry, plus ``k``.
    In-block word stores to known addresses are forwarded; other stores
    poison subsequent loads overlapping their fixpoint address range (or
    every load, when the range is unknown).  Alongside the value map,
    ``slt``-family results are tracked as compare facts so exit branches of
    the form ``slt t, a, b; beq t, x0`` can be decoded.
    """
    sym: Dict[int, Optional[Sym]] = {r: ("entry", r, 0) for r in range(32)}
    sym[0] = ("const", 0, 0)
    cmp: Dict[int, CmpFact] = {}
    local_cells: Dict[int, Sym] = {}
    poisoned: List[Tuple[int, int]] = []
    all_poisoned = False

    def _poison(lo: int, hi: int) -> None:
        poisoned.append((lo, hi))
        for cell in [c for c in local_cells if not (c + 3 < lo or c > hi)]:
            del local_cells[cell]

    for instr in block.instructions[:stop_index]:
        mnemonic = instr.mnemonic
        if instr.spec.is_store:
            size = _SYM_STORE_SIZES[mnemonic]
            address = _const_address(instr, sym, entry_regs)
            if address is not None and mnemonic == "sw" and address % 4 == 0:
                value = sym.get(instr.rs2)
                local_cells[address] = value if value is not None else ("top", 0, 0)
            elif address is not None:
                _poison(address, address + size - 1)
            else:
                fact = store_facts.get(instr.address) if store_facts else None
                if fact is not None and not fact.address.is_top:
                    _poison(fact.address.lo, fact.address.hi + size - 1)
                else:
                    all_poisoned = True
                    local_cells.clear()
            continue
        if instr.spec.is_load:
            result: Optional[Sym] = None
            if mnemonic == "lw":
                address = _const_address(instr, sym, entry_regs)
                if address is not None and address % 4 == 0:
                    if address in local_cells:
                        forwarded = local_cells[address]
                        result = forwarded if forwarded[0] != "top" else None
                    elif not all_poisoned and not any(
                        not (address + 3 < lo or address > hi)
                        for lo, hi in poisoned
                    ):
                        result = ("cell", address, 0)
            _sym_write(sym, cmp, instr.rd, result)
            continue
        if mnemonic == "lui":
            _sym_write(sym, cmp, instr.rd, ("const", (instr.imm << 12) % WORD_MODULUS, 0))
            continue
        if mnemonic == "auipc":
            value = ((instr.address or 0) + (instr.imm << 12)) % WORD_MODULUS
            _sym_write(sym, cmp, instr.rd, ("const", value, 0))
            continue
        if mnemonic == "addi":
            source = sym.get(instr.rs1)
            result = _offset_sym(source, instr.imm) if source is not None else None
            _sym_write(sym, cmp, instr.rd, result)
            continue
        if mnemonic in ("add", "sub"):
            a = sym.get(instr.rs1)
            b = sym.get(instr.rs2)
            result = None
            if a is not None and b is not None:
                if mnemonic == "add" and a[0] == "const" and b[0] != "const":
                    a, b = b, a
                if b[0] == "const":
                    delta = _signed_const(b[1])
                    result = _offset_sym(a, delta if mnemonic == "add" else -delta)
            _sym_write(sym, cmp, instr.rd, result)
            continue
        if mnemonic in ("slt", "slti", "sltu", "sltiu"):
            a = sym.get(instr.rs1)
            if mnemonic in ("slt", "sltu"):
                b = sym.get(instr.rs2)
            else:
                b = ("const", instr.imm % WORD_MODULUS, 0)
            _sym_write(sym, cmp, instr.rd, None)
            if a is not None and b is not None and instr.rd:
                cmp[instr.rd] = (
                    "slt" if mnemonic in ("slt", "slti") else "sltu", a, b
                )
            continue
        target = register_def(instr)
        if target is not None:
            sym[target] = None
            cmp.pop(target, None)
    return {r: v for r, v in sym.items() if v is not None}, cmp


def _sym_write(
    sym: Dict[int, Optional[Sym]],
    cmp: Dict[int, CmpFact],
    rd: int,
    value: Optional[Sym],
) -> None:
    if rd:
        sym[rd] = value
        cmp.pop(rd, None)


def _const_address(
    instr: Instruction, sym: Dict[int, Optional[Sym]], entry_regs: RegState
) -> Optional[int]:
    base = sym.get(instr.rs1)
    if base is None:
        return None
    if base[0] == "const":
        return (base[1] + instr.imm) % WORD_MODULUS
    if base[0] == "entry":
        interval = entry_regs[base[1]]
        if interval.is_const:
            return (interval.value + base[2] + instr.imm) % WORD_MODULUS
    return None


# ---------------------------------------------------------------------------
# trip-count arithmetic


def _continue_op(mnemonic: str, continue_on_taken: bool, counter_left: bool) -> Optional[str]:
    base = {
        "beq": "eq", "bne": "ne",
        "blt": "lt", "bge": "ge",
        "bltu": "ltu", "bgeu": "geu",
    }.get(mnemonic)
    if base is None:
        return None
    if not continue_on_taken:
        base = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                "ltu": "geu", "geu": "ltu"}[base]
    if not counter_left:
        base = {"eq": "eq", "ne": "ne", "lt": "gt", "ge": "le",
                "ltu": "gtu", "geu": "leu"}[base]
    return base


def _max_back_edges(
    op: str, init: Interval, offset: int, step: int, bound: Interval
) -> Optional[int]:
    """Upper bound on continue-evaluations (hence back edges), or None."""
    i_lo = init.lo + offset
    i_hi = init.hi + offset
    signed_ops = {"lt", "le", "gt", "ge"}
    if op in signed_ops:
        # Keep every quantity inside [0, INT_MAX] so the signed comparison
        # coincides with integer order and no wrap can occur.
        if not (0 <= i_lo and i_hi <= INT_MAX and bound.hi <= INT_MAX):
            return None
    else:
        if not (0 <= i_lo and i_hi <= WORD_MODULUS - 1):
            return None

    if op in ("lt", "ltu", "le", "leu"):
        if step <= 0:
            return None
        b_eff = bound.hi + (1 if op in ("le", "leu") else 0)
        if op in ("ltu", "leu") and b_eff + step > WORD_MODULUS:
            return None
        if op in ("lt", "le") and b_eff + step > INT_MAX + 1:
            return None
        if i_lo >= b_eff:
            return 0
        return (b_eff - i_lo - 1) // step + 1

    if op in ("gt", "gtu", "ge", "geu"):
        if step >= 0:
            return None
        magnitude = -step
        b_eff = bound.lo - (0 if op in ("gt", "gtu") else 1)
        if b_eff < 0:
            return None
        if op in ("gtu", "geu") and bound.lo < magnitude:
            return None  # the counter could wrap below zero and continue
        if i_hi <= b_eff:
            return 0
        return (i_hi - b_eff - 1) // magnitude + 1

    if op == "ne":
        if not (init.is_const and bound.is_const and step != 0):
            return None
        delta = bound.value - (init.value + offset)
        if step > 0 and 0 <= delta and delta % step == 0:
            return delta // step
        if step < 0 and delta <= 0 and delta % step == 0:
            return delta // step
        return None

    return None  # "eq" loops carry no useful static bound
