"""Value lattices for the dataflow passes.

The central domain is :class:`Interval`: a contiguous range of *unsigned*
32-bit machine words ``[lo, hi]`` with ``0 <= lo <= hi <= 2**32 - 1``.  The
top element is the full range; a singleton interval is a known constant.
There is deliberately no bottom element — unreachable states are represented
by absence (``None``) in the engine, which keeps every stored interval a
valid, inhabited set.

All transfer helpers are *conservative over-approximations* of the RV32IM
executor semantics in :mod:`repro.cpu.core`: for every concrete input drawn
from the argument intervals, the concrete result is contained in the result
interval.  When a precise range would wrap around 2**32 or straddle the
signed boundary in a way a single contiguous unsigned interval cannot
express, the helpers give up and return TOP rather than guess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

WORD_MASK = 0xFFFFFFFF
WORD_MODULUS = 1 << 32
SIGN_BIT = 1 << 31
INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit word as a signed integer."""
    return value - WORD_MODULUS if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to an unsigned 32-bit word."""
    return value & WORD_MASK


@dataclass(frozen=True)
class Interval:
    """A contiguous set of unsigned 32-bit words ``{lo, ..., hi}``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi <= WORD_MASK):
            raise ValueError("invalid interval [%d, %d]" % (self.lo, self.hi))

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def top() -> "Interval":
        return TOP

    @staticmethod
    def const(value: int) -> "Interval":
        value = to_unsigned(value)
        return Interval(value, value)

    @staticmethod
    def range(lo: int, hi: int) -> "Interval":
        return Interval(lo, hi)

    # -- queries --------------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == WORD_MASK

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def value(self) -> int:
        """The constant value; only meaningful when :attr:`is_const`."""
        if not self.is_const:
            raise ValueError("interval %r is not a constant" % (self,))
        return self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= to_unsigned(value) <= self.hi

    def signed_bounds(self) -> Optional[Tuple[int, int]]:
        """Signed ``(lo, hi)`` when the set is contiguous in signed order.

        Returns None when the interval straddles the signed boundary
        (contains both INT_MAX and INT_MIN as unsigned neighbours), in which
        case no single signed range describes it.
        """
        if self.hi < SIGN_BIT or self.lo >= SIGN_BIT:
            return (to_signed(self.lo), to_signed(self.hi))
        return None

    # -- lattice operations ---------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; None when the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self) -> "Interval":
        return TOP

    # -- arithmetic transfer --------------------------------------------------
    @staticmethod
    def _wrap(lo: int, hi: int) -> "Interval":
        """Normalize an un-truncated result range into the wrapped domain."""
        if hi - lo >= WORD_MODULUS:
            return TOP
        if (lo // WORD_MODULUS) != (hi // WORD_MODULUS):
            # The range straddles a wrap boundary: the truncated set is not
            # contiguous in unsigned order.
            return TOP
        return Interval(lo % WORD_MODULUS, hi % WORD_MODULUS)

    def add(self, other: "Interval") -> "Interval":
        return Interval._wrap(self.lo + other.lo, self.hi + other.hi)

    def add_const(self, constant: int) -> "Interval":
        return Interval._wrap(self.lo + constant, self.hi + constant)

    def sub(self, other: "Interval") -> "Interval":
        return Interval._wrap(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        # The executor computes a signed product and truncates.  For operands
        # below the signed boundary the signed and unsigned products agree,
        # and the unsigned product is monotone in both operands.
        if self.is_const and other.is_const:
            product = to_signed(self.value) * to_signed(other.value)
            return Interval.const(product)
        if self.hi < SIGN_BIT and other.hi < SIGN_BIT:
            return Interval._wrap(self.lo * other.lo, self.hi * other.hi)
        return TOP

    def and_(self, other: "Interval") -> "Interval":
        if self.is_const and other.is_const:
            return Interval.const(self.value & other.value)
        # Masking can only clear bits: the result never exceeds either bound.
        return Interval(0, min(self.hi, other.hi))

    def or_(self, other: "Interval") -> "Interval":
        if self.is_const and other.is_const:
            return Interval.const(self.value | other.value)
        # x | y < 2**k whenever both operands are < 2**k, and x | y >= x.
        bound = (1 << max(self.hi.bit_length(), other.hi.bit_length())) - 1
        return Interval(max(self.lo, other.lo), bound)

    def xor(self, other: "Interval") -> "Interval":
        if self.is_const and other.is_const:
            return Interval.const(self.value ^ other.value)
        bound = (1 << max(self.hi.bit_length(), other.hi.bit_length())) - 1
        return Interval(0, bound)

    def shl(self, other: "Interval") -> "Interval":
        if not other.is_const:
            return TOP
        amount = other.value & 0x1F
        return Interval._wrap(self.lo << amount, self.hi << amount)

    def shr_logical(self, other: "Interval") -> "Interval":
        if not other.is_const:
            return Interval(0, self.hi)
        amount = other.value & 0x1F
        return Interval(self.lo >> amount, self.hi >> amount)

    def shr_arithmetic(self, other: "Interval") -> "Interval":
        if not other.is_const:
            return TOP
        amount = other.value & 0x1F
        bounds = self.signed_bounds()
        if bounds is None:
            return TOP
        lo, hi = bounds
        return Interval(to_unsigned(lo >> amount), to_unsigned(hi >> amount))

    def divu(self, other: "Interval") -> "Interval":
        if other.contains(0):
            # Division by zero yields 0xFFFFFFFF; the union with the normal
            # quotient range is rarely contiguous, so stay conservative.
            return TOP
        return Interval(self.lo // other.hi, self.hi // other.lo)

    def remu(self, other: "Interval") -> "Interval":
        if other.contains(0):
            return TOP
        return Interval(0, min(self.hi, other.hi - 1))

    # -- comparisons (three-valued) ------------------------------------------
    def compare_ltu(self, other: "Interval") -> Optional[bool]:
        """Decide ``self < other`` (unsigned) when the intervals permit."""
        if self.hi < other.lo:
            return True
        if self.lo >= other.hi:
            return False
        return None

    def compare_lt(self, other: "Interval") -> Optional[bool]:
        """Decide ``self < other`` (signed) when the intervals permit."""
        a = self.signed_bounds()
        b = other.signed_bounds()
        if a is None or b is None:
            return None
        if a[1] < b[0]:
            return True
        if a[0] >= b[1]:
            return False
        return None

    def compare_eq(self, other: "Interval") -> Optional[bool]:
        if self.is_const and other.is_const:
            return self.value == other.value
        if self.meet(other) is None:
            return False
        return None

    def __repr__(self) -> str:
        if self.is_top:
            return "Interval(TOP)"
        if self.is_const:
            return "Interval(%#x)" % self.lo
        return "Interval(%#x..%#x)" % (self.lo, self.hi)


TOP = Interval(0, WORD_MASK)
ZERO = Interval(0, 0)
BOOL = Interval(0, 1)


def _signed_interval(lo: int, hi: int, fallback: Interval) -> Optional[Interval]:
    """Map a signed range back into the unsigned domain.

    Returns None for an empty range.  When the range straddles zero it is not
    contiguous in unsigned order, so ``fallback`` (the unrefined interval) is
    returned instead — a sound no-op refinement.
    """
    if lo > hi:
        return None
    if lo < INT_MIN or hi > INT_MAX:
        return fallback
    if lo >= 0 or hi < 0:
        return Interval(to_unsigned(lo), to_unsigned(hi))
    return fallback


def refine_branch(
    mnemonic: str, taken: bool, lhs: Interval, rhs: Interval
) -> Optional[Tuple[Interval, Interval]]:
    """Refine ``(lhs, rhs)`` under the outcome of a conditional branch.

    Returns the refined pair, or None when the outcome is infeasible for
    every concrete value drawn from the intervals.  Refinement is optional:
    returning the operands unchanged is always sound.
    """
    if mnemonic == "beq":
        if taken:
            met = lhs.meet(rhs)
            if met is None:
                return None
            return (met, met)
        return _refine_ne(lhs, rhs)
    if mnemonic == "bne":
        if taken:
            return _refine_ne(lhs, rhs)
        met = lhs.meet(rhs)
        if met is None:
            return None
        return (met, met)
    if mnemonic == "bltu":
        return _refine_ltu(lhs, rhs) if taken else _refine_geu(lhs, rhs)
    if mnemonic == "bgeu":
        return _refine_geu(lhs, rhs) if taken else _refine_ltu(lhs, rhs)
    if mnemonic == "blt":
        return _refine_lt(lhs, rhs) if taken else _refine_ge(lhs, rhs)
    if mnemonic == "bge":
        return _refine_ge(lhs, rhs) if taken else _refine_lt(lhs, rhs)
    return (lhs, rhs)


def _refine_ne(lhs: Interval, rhs: Interval) -> Optional[Tuple[Interval, Interval]]:
    if lhs.is_const and rhs.is_const and lhs.value == rhs.value:
        return None
    new_lhs, new_rhs = lhs, rhs
    if rhs.is_const and not lhs.is_const:
        if rhs.value == lhs.lo:
            new_lhs = Interval(lhs.lo + 1, lhs.hi)
        elif rhs.value == lhs.hi:
            new_lhs = Interval(lhs.lo, lhs.hi - 1)
    if lhs.is_const and not rhs.is_const:
        if lhs.value == rhs.lo:
            new_rhs = Interval(rhs.lo + 1, rhs.hi)
        elif lhs.value == rhs.hi:
            new_rhs = Interval(rhs.lo, rhs.hi - 1)
    return (new_lhs, new_rhs)


def _refine_ltu(lhs: Interval, rhs: Interval) -> Optional[Tuple[Interval, Interval]]:
    # lhs < rhs (unsigned): lhs <= rhs.hi - 1, rhs >= lhs.lo + 1.
    if rhs.hi == 0:
        return None
    new_lhs = lhs.meet(Interval(0, rhs.hi - 1))
    if new_lhs is None:
        return None
    new_rhs = rhs.meet(Interval(min(new_lhs.lo + 1, WORD_MASK), WORD_MASK))
    if new_rhs is None:
        return None
    return (new_lhs, new_rhs)


def _refine_geu(lhs: Interval, rhs: Interval) -> Optional[Tuple[Interval, Interval]]:
    # lhs >= rhs (unsigned): lhs >= rhs.lo, rhs <= lhs.hi.
    new_lhs = lhs.meet(Interval(rhs.lo, WORD_MASK))
    if new_lhs is None:
        return None
    new_rhs = rhs.meet(Interval(0, new_lhs.hi))
    if new_rhs is None:
        return None
    return (new_lhs, new_rhs)


def _refine_lt(lhs: Interval, rhs: Interval) -> Optional[Tuple[Interval, Interval]]:
    a = lhs.signed_bounds()
    b = rhs.signed_bounds()
    if a is None or b is None:
        return (lhs, rhs)
    new_lhs = _signed_interval(a[0], min(a[1], b[1] - 1), lhs)
    if new_lhs is None:
        return None
    new_rhs = _signed_interval(max(b[0], a[0] + 1), b[1], rhs)
    if new_rhs is None:
        return None
    return (new_lhs, new_rhs)


def _refine_ge(lhs: Interval, rhs: Interval) -> Optional[Tuple[Interval, Interval]]:
    a = lhs.signed_bounds()
    b = rhs.signed_bounds()
    if a is None or b is None:
        return (lhs, rhs)
    new_lhs = _signed_interval(max(a[0], b[0]), a[1], lhs)
    if new_lhs is None:
        return None
    new_rhs = _signed_interval(b[0], min(b[1], a[1]), rhs)
    if new_rhs is None:
        return None
    return (new_lhs, new_rhs)
