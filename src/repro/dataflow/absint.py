"""Interval abstract interpretation over the whole-program CFG.

Computes, for every reachable basic block, a sound over-approximation of
each register's value set as an unsigned 32-bit :class:`Interval`, together
with derived facts used by the other passes and consumers:

* per-load / per-store address intervals (data-only attack vetting),
* the ``a7`` interval at every reachable ``ecall`` (syscall resolution),
* conditional-branch edges proven infeasible at the fixpoint,
* indirect-jump target resolution (``jalr`` destinations),
* the set of statically reachable blocks.

Registers are tracked flow-sensitively.  Memory is tracked at two levels:

* *flow-insensitively*, a word cell's interval covering every value the
  cell can hold at any point of any execution (the register pass runs in
  outer rounds against a memory snapshot, accumulating store effects into
  the next snapshot until the memory fixpoint is reached); and
* *flow-sensitively* as per-block **cell constraints**: for constant,
  word-aligned addresses, an interval the cell provably lies in at block
  entry.  Constraints are strongly updated by ``sw`` to a known address,
  refined along conditional edges (including through the codegen's
  ``slt t, a, b; beq/bne t, x0`` flag idiom), widened against the set of
  immediates appearing in the program, and dropped across calls.  They are
  what bounds memory-resident loop counters, which the flow-insensitive
  view alone cannot do.

Interprocedural contract: register states propagate into callees along CALL
and feasible INDIRECT edges.  A call's continuation receives the call-site
state with every register not in :data:`repro.dataflow.semantics.CALLEE_SAVED`
havocked to TOP — i.e. the analysis *assumes* callees honour the RISC-V ABI
preservation rules for ``sp``/``gp``/``tp``/``s0``–``s11``.  That assumption
(and every other fact produced here) is pinned empirically by the tier-1
soundness oracle, which replays dynamic traces of the whole golden corpus
against the static claims.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.builder import ControlFlowGraph, EdgeKind
from repro.cpu.core import CpuConfig
from repro.dataflow.lattice import (
    TOP,
    ZERO,
    Interval,
    refine_branch,
    to_signed,
    to_unsigned,
)
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.dataflow.semantics import CALLEE_SAVED, register_def

#: After this many *changed* joins into one block, changed registers widen
#: straight to TOP.  Loop trip counts come from the dedicated induction
#: analysis in :mod:`repro.dataflow.loopbounds`, not from interval widening,
#: so an aggressive limit costs little precision.
WIDEN_LIMIT = 8

#: Maximum outer rounds for the flow-insensitive memory fixpoint before the
#: whole memory havocs to TOP.
MAX_MEMORY_ROUNDS = 8

#: A non-constant store address whose span exceeds this many bytes havocs
#: all of memory instead of individual cells.
HAVOC_SPAN_CAP = 4096

RegState = List[Interval]

#: Flow-sensitive constraints on constant-address word cells at a block
#: entry: ``{word address: interval}``.  Absence of a key means the only
#: known fact is the flow-insensitive memory interval.
CellState = Dict[int, Interval]

_SP = 2
_GP = 3
_A0 = 10
_A7 = 17


class MemoryState:
    """Flow-insensitive abstract memory over the CPU's data region.

    Word-granular: each aligned word cell holds an interval covering the
    initial image value joined with every value any store may write to it.
    Reads outside the data region (including the code region) return TOP.
    """

    def __init__(self, program: Program, region_size: Optional[int] = None) -> None:
        if region_size is None:
            region_size = CpuConfig().data_region_size
        self.data_base = program.data_base
        self.data_end = program.data_base + region_size
        self._image = program.data
        self.havocked = False
        self._cells: Dict[int, Interval] = {}
        self._pending: Dict[int, Interval] = {}
        self._pending_havoc = False

    # -- reads ---------------------------------------------------------------
    def initial_word(self, address: int) -> Interval:
        offset = address - self.data_base
        chunk = bytes(self._image[offset:offset + 4]) if 0 <= offset else b""
        if len(chunk) < 4:
            chunk = chunk + b"\x00" * (4 - len(chunk))
        return Interval.const(int.from_bytes(chunk, "little"))

    def read_word(self, address: int) -> Interval:
        if self.havocked:
            return TOP
        if address % 4 or not (self.data_base <= address <= self.data_end - 4):
            return TOP
        stored = self._cells.get(address)
        initial = self.initial_word(address)
        return initial if stored is None else initial.join(stored)

    def read(self, address: Interval, size: int, signed: bool) -> Interval:
        if address.is_const:
            value = self._read_const(address.value, size)
            if value is not None:
                return Interval.const(_extend(value, size, signed))
        if size == 1 and not signed:
            return Interval(0, 0xFF)
        if size == 2 and not signed:
            return Interval(0, 0xFFFF)
        if size == 4 and address.is_const:
            return self.read_word(address.value)
        return TOP

    def _read_const(self, address: int, size: int) -> Optional[int]:
        """The exact loaded value when the covering word cell is constant."""
        word_addr = address - (address % 4)
        if address % 4 + size > 4:
            return None  # crosses a word boundary
        cell = self.read_word(word_addr)
        if not cell.is_const:
            return None
        shift = 8 * (address % 4)
        return (cell.value >> shift) & ((1 << (8 * size)) - 1)

    # -- stores --------------------------------------------------------------
    def record_store(self, address: Interval, value: Interval, size: int) -> None:
        if address.hi + size <= self.data_base or address.lo >= self.data_end:
            return  # entirely outside the data region: would fault, no effect
        if address.is_const:
            target = address.value
            if size == 4 and target % 4 == 0:
                self._pend(target, value)
            else:
                first = target - (target % 4)
                last = (target + size - 1) - ((target + size - 1) % 4)
                for word in range(first, last + 4, 4):
                    self._pend(word, TOP)
            return
        span = (address.hi - address.lo) + size
        if span > HAVOC_SPAN_CAP:
            self._pending_havoc = True
            return
        lo = max(address.lo, self.data_base)
        hi = min(address.hi + size - 1, self.data_end - 1)
        for word in range(lo - (lo % 4), hi - (hi % 4) + 4, 4):
            self._pend(word, TOP)

    def _pend(self, address: int, value: Interval) -> None:
        if not (self.data_base <= address <= self.data_end - 4):
            return
        existing = self._pending.get(address)
        self._pending[address] = value if existing is None else existing.join(value)

    def commit(self) -> bool:
        """Fold pending store effects into the cells; True if anything grew."""
        changed = False
        if self._pending_havoc and not self.havocked:
            self.havocked = True
            changed = True
        if not self.havocked:
            for address, value in self._pending.items():
                current = self._cells.get(address)
                merged = value if current is None else current.join(value)
                if merged != current:
                    self._cells[address] = merged
                    changed = True
        self._pending.clear()
        self._pending_havoc = False
        return changed

    def havoc(self) -> None:
        self.havocked = True
        self._pending.clear()
        self._pending_havoc = False


def _extend(value: int, size: int, signed: bool) -> int:
    if not signed:
        return value
    bits = 8 * size
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return to_unsigned(value)


@dataclass
class StoreFact:
    """Final-fixpoint facts about one store instruction."""

    address: Interval
    value: Interval
    size: int


@dataclass
class IntervalAnalysis:
    """Fixpoint results of the interval abstract interpretation."""

    program: Program
    cfg: ControlFlowGraph
    memory: MemoryState
    #: Reachable block start -> register in-state at block entry.
    block_states: Dict[int, RegState]
    #: (src block, dst block, EdgeKind name) -> joined propagated state.
    edge_states: Dict[Tuple[int, int, str], RegState]
    #: Load pc -> (address interval, access size in bytes).
    load_ranges: Dict[int, Tuple[Interval, int]]
    #: Store pc -> address/value facts.
    store_facts: Dict[int, StoreFact]
    #: Reachable ecall pc -> a7 interval.
    ecall_sites: Dict[int, Interval]
    #: (src block, dst block) conditional-branch edges proven infeasible.
    infeasible_edges: Set[Tuple[int, int]]
    #: jalr pc -> (feasible destination blocks, resolved flag).  Unresolved
    #: means the target interval was TOP and every INDIRECT edge stayed live.
    indirect_targets: Dict[int, Tuple[FrozenSet[int], bool]]
    reachable_blocks: Set[int] = field(default_factory=set)
    #: Reachable block start -> cell constraints at block entry.
    block_cell_states: Dict[int, CellState] = field(default_factory=dict)

    def ecalls_may_print_string(self) -> bool:
        """True when some reachable ecall may select SYS_PRINT_STRING (4),
        whose handler reads memory beyond any load instruction's range."""
        return any(a7.contains(4) for a7 in self.ecall_sites.values())

    def loaded_ranges(self) -> List[Tuple[int, int]]:
        """Inclusive byte ranges any load instruction may touch."""
        return [
            (interval.lo, min(interval.hi + size - 1, 0xFFFFFFFF))
            for interval, size in self.load_ranges.values()
        ]


#: mnemonic -> (access size, sign-extended)
_LOAD_SIZES = {
    "lb": (1, True), "lbu": (1, False),
    "lh": (2, True), "lhu": (2, False),
    "lw": (4, True),
}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4}

_INT_MIN = -(1 << 31)


def _div_signed(lhs: int, rhs: int) -> int:
    a, b = to_signed(lhs), to_signed(rhs)
    if b == 0:
        return to_unsigned(-1)
    if a == _INT_MIN and b == -1:
        return to_unsigned(_INT_MIN)
    return to_unsigned(int(a / b))


def _rem_signed(lhs: int, rhs: int) -> int:
    a, b = to_signed(lhs), to_signed(rhs)
    if b == 0:
        return to_unsigned(a)
    if a == _INT_MIN and b == -1:
        return 0
    return to_unsigned(a - int(a / b) * b)


def _bool_interval(verdict: Optional[bool]) -> Interval:
    if verdict is None:
        return Interval(0, 1)
    return Interval.const(1 if verdict else 0)


class _Sink:
    """Per-round fact collector; only the final round's sink is kept."""

    def __init__(self) -> None:
        self.load_ranges: Dict[int, Tuple[Interval, int]] = {}
        self.store_facts: Dict[int, StoreFact] = {}
        self.ecall_sites: Dict[int, Interval] = {}
        self.infeasible: Dict[Tuple[int, int], bool] = {}
        self.indirect: Dict[int, Tuple[Set[int], bool]] = {}
        self.edge_states: Dict[Tuple[int, int, str], RegState] = {}

    def load(self, pc: int, address: Interval, size: int) -> None:
        current = self.load_ranges.get(pc)
        if current is None:
            self.load_ranges[pc] = (address, size)
        else:
            self.load_ranges[pc] = (current[0].join(address), size)

    def store(self, pc: int, address: Interval, value: Interval, size: int) -> None:
        current = self.store_facts.get(pc)
        if current is None:
            self.store_facts[pc] = StoreFact(address, value, size)
        else:
            self.store_facts[pc] = StoreFact(
                current.address.join(address), current.value.join(value), size
            )

    def ecall(self, pc: int, a7: Interval) -> None:
        current = self.ecall_sites.get(pc)
        self.ecall_sites[pc] = a7 if current is None else current.join(a7)

    def edge_feasible(self, src: int, dst: int, feasible: bool) -> None:
        self.infeasible[(src, dst)] = self.infeasible.get((src, dst), False) or feasible

    def indirect_target(self, pc: int, dst: Optional[int], resolved: bool) -> None:
        targets, was_resolved = self.indirect.setdefault(pc, (set(), True))
        if dst is not None:
            targets.add(dst)
        self.indirect[pc] = (targets, was_resolved and resolved)


def _step(instr: Instruction, regs: RegState, memory: MemoryState, sink: _Sink) -> None:
    """Abstractly execute one non-control-flow instruction in place."""
    mnemonic = instr.mnemonic
    spec = instr.spec
    if spec.is_load:
        size, signed = _LOAD_SIZES[mnemonic]
        address = regs[instr.rs1].add_const(instr.imm)
        sink.load(instr.address, address, size)
        _write(regs, instr.rd, memory.read(address, size, signed))
        return
    if spec.is_store:
        size = _STORE_SIZES[mnemonic]
        address = regs[instr.rs1].add_const(instr.imm)
        value = regs[instr.rs2]
        sink.store(instr.address, address, value, size)
        memory.record_store(address, value, size)
        return
    if mnemonic == "ecall":
        sink.ecall(instr.address, regs[_A7])
        _write(regs, _A0, TOP)
        return
    if mnemonic in ("ebreak", "fence"):
        return
    if mnemonic == "lui":
        _write(regs, instr.rd, Interval.const(instr.imm << 12))
        return
    if mnemonic == "auipc":
        _write(regs, instr.rd, Interval.const((instr.address or 0) + (instr.imm << 12)))
        return
    if spec.fmt.name == "I":
        lhs = regs[instr.rs1]
        imm = instr.imm
        result = _alu_imm(mnemonic, lhs, imm)
    else:
        result = _alu_reg(mnemonic, regs[instr.rs1], regs[instr.rs2])
    _write(regs, instr.rd, result)


def _alu_imm(mnemonic: str, lhs: Interval, imm: int) -> Interval:
    if mnemonic == "addi":
        return lhs.add_const(imm)
    if mnemonic == "slti":
        return _bool_interval(lhs.compare_lt(Interval.const(imm)))
    if mnemonic == "sltiu":
        return _bool_interval(lhs.compare_ltu(Interval.const(imm)))
    if mnemonic == "xori":
        return lhs.xor(Interval.const(imm))
    if mnemonic == "ori":
        return lhs.or_(Interval.const(imm))
    if mnemonic == "andi":
        return lhs.and_(Interval.const(imm))
    if mnemonic == "slli":
        return lhs.shl(Interval.const(imm))
    if mnemonic == "srli":
        return lhs.shr_logical(Interval.const(imm))
    if mnemonic == "srai":
        return lhs.shr_arithmetic(Interval.const(imm))
    return TOP


def _alu_reg(mnemonic: str, lhs: Interval, rhs: Interval) -> Interval:
    if mnemonic == "add":
        return lhs.add(rhs)
    if mnemonic == "sub":
        return lhs.sub(rhs)
    if mnemonic == "sll":
        return lhs.shl(rhs)
    if mnemonic == "slt":
        return _bool_interval(lhs.compare_lt(rhs))
    if mnemonic == "sltu":
        return _bool_interval(lhs.compare_ltu(rhs))
    if mnemonic == "xor":
        return lhs.xor(rhs)
    if mnemonic == "srl":
        return lhs.shr_logical(rhs)
    if mnemonic == "sra":
        return lhs.shr_arithmetic(rhs)
    if mnemonic == "or":
        return lhs.or_(rhs)
    if mnemonic == "and":
        return lhs.and_(rhs)
    if mnemonic == "mul":
        return lhs.mul(rhs)
    if mnemonic == "divu":
        return lhs.divu(rhs)
    if mnemonic == "remu":
        return lhs.remu(rhs)
    if lhs.is_const and rhs.is_const:
        return _const_muldiv(mnemonic, lhs.value, rhs.value)
    return TOP


def _const_muldiv(mnemonic: str, lhs: int, rhs: int) -> Interval:
    sl, sr = to_signed(lhs), to_signed(rhs)
    if mnemonic == "mulh":
        return Interval.const((sl * sr) >> 32)
    if mnemonic == "mulhu":
        return Interval.const((lhs * rhs) >> 32)
    if mnemonic == "mulhsu":
        return Interval.const((sl * rhs) >> 32)
    if mnemonic == "div":
        return Interval.const(_div_signed(lhs, rhs))
    if mnemonic == "rem":
        return Interval.const(_rem_signed(lhs, rhs))
    return TOP


def _write(regs: RegState, rd: int, value: Interval) -> None:
    if rd:
        regs[rd] = value


def entry_state(program: Program, region_size: Optional[int] = None) -> RegState:
    """Register state at the program entry, mirroring ``Cpu.reset``."""
    if region_size is None:
        region_size = CpuConfig().data_region_size
    regs: RegState = [ZERO] * 32
    regs[_SP] = Interval.const(program.data_base + region_size)
    regs[_GP] = Interval.const(program.data_base)
    return regs


def _call_transparent(regs: RegState) -> RegState:
    """The continuation state after a call, under the ABI assumption."""
    return [regs[i] if i in CALLEE_SAVED else TOP for i in range(32)]


def _widening_thresholds(program: Program) -> List[int]:
    """Ascending candidate landing points for cell-constraint widening.

    Loop bounds almost always appear as instruction immediates (the compare
    constant, or an address offset); widening a growing constraint to the
    next such value — rather than straight to TOP — lets counted loops
    stabilise at their true bound.
    """
    values: Set[int] = {0, 1}
    for instr in program.instructions:
        imm = instr.imm
        if 0 <= imm <= (1 << 20):
            values.add(imm)
            values.add(imm + 1)
    return sorted(values)


def _widen_cell(thresholds: List[int], old: Interval, new: Interval) -> Optional[Interval]:
    """Widen a changed cell constraint; None drops the constraint."""
    lo = new.lo
    if lo < old.lo:
        # Land on 1 first: ``while (x > 0)``-style refinement keeps a
        # decremented counter at lo == 1, and jumping straight to 0 would
        # let the post-continue decrement wrap the interval to TOP.
        lo = 1 if lo >= 1 else 0
    hi = new.hi
    if hi > old.hi:
        for candidate in thresholds:
            if candidate >= hi:
                hi = candidate
                break
        else:
            return None
    return Interval(lo, hi)


def analyze_intervals(program: Program, cfg: ControlFlowGraph) -> IntervalAnalysis:
    """Run the interval analysis to its register+memory fixpoint."""
    memory = MemoryState(program)
    states: Dict[int, RegState] = {}
    cell_states: Dict[int, CellState] = {}
    sink = _Sink()
    for _ in range(MAX_MEMORY_ROUNDS):
        sink = _Sink()
        states, cell_states = _register_round(program, cfg, memory, sink)
        if not memory.commit():
            break
    else:
        memory.havoc()
        sink = _Sink()
        states, cell_states = _register_round(program, cfg, memory, sink)
        memory.commit()

    reachable = set(states)
    infeasible: Set[Tuple[int, int]] = set()
    for (src, dst), feasible in sink.infeasible.items():
        if not feasible and src in reachable:
            infeasible.add((src, dst))
    indirect = {
        pc: (frozenset(targets), resolved)
        for pc, (targets, resolved) in sink.indirect.items()
    }
    return IntervalAnalysis(
        program=program,
        cfg=cfg,
        memory=memory,
        block_states=states,
        edge_states=sink.edge_states,
        load_ranges=sink.load_ranges,
        store_facts=sink.store_facts,
        ecall_sites=sink.ecall_sites,
        infeasible_edges=infeasible,
        indirect_targets=indirect,
        reachable_blocks=reachable,
        block_cell_states=cell_states,
    )


#: A flag fact: register holds the 0/1 result of ``lhs < rhs`` — (signed,
#: lhs interval at compare time, lhs source cell, rhs interval, rhs cell).
_FlagFact = Tuple[bool, Interval, Optional[int], Interval, Optional[int]]


class _BlockCells:
    """Cell constraints + register provenance while stepping one block."""

    def __init__(self, cells: CellState) -> None:
        self.cells: CellState = dict(cells)
        #: register -> cell whose *current* value the register holds.
        self.reg_cell: Dict[int, int] = {}
        #: register -> compare fact for slt-family results.
        self.flags: Dict[int, _FlagFact] = {}

    def invalidate_cell(self, cell: int) -> None:
        self.cells.pop(cell, None)
        self.reg_cell = {r: c for r, c in self.reg_cell.items() if c != cell}
        self.flags = {
            r: (s, li, None if lc == cell else lc, ri, None if rc == cell else rc)
            for r, (s, li, lc, ri, rc) in self.flags.items()
        }

    def invalidate_all(self) -> None:
        self.cells.clear()
        self.reg_cell.clear()
        self.flags = {
            r: (s, li, None, ri, None)
            for r, (s, li, lc, ri, rc) in self.flags.items()
        }

    def drop_register(self, reg: int) -> None:
        self.reg_cell.pop(reg, None)
        self.flags.pop(reg, None)

    def store(self, instr: Instruction, address: Interval, size: int) -> None:
        if address.is_const and size == 4 and address.value % 4 == 0:
            target = address.value
            self.invalidate_cell(target)
            return  # caller records the strong update after the step
        if address.is_top or (address.hi - address.lo) + size > HAVOC_SPAN_CAP:
            self.invalidate_all()
            return
        lo = address.lo - (address.lo % 4)
        hi = (address.hi + size - 1) - ((address.hi + size - 1) % 4)
        touched = [c for c in self.cells if lo <= c <= hi]
        touched += [c for c in set(self.reg_cell.values()) if lo <= c <= hi]
        for cell in set(touched):
            self.invalidate_cell(cell)


def _refine_into(cells: CellState, cell: Optional[int], refined: Interval) -> bool:
    """Meet a refinement into an edge cell state; False when contradictory."""
    if cell is None:
        return True
    current = cells.get(cell)
    met = refined if current is None else current.meet(refined)
    if met is None:
        return False
    cells[cell] = met
    return True


def _register_round(
    program: Program,
    cfg: ControlFlowGraph,
    memory: MemoryState,
    sink: _Sink,
) -> Tuple[Dict[int, RegState], Dict[int, CellState]]:
    """One flow-sensitive register pass against a fixed memory snapshot."""
    edge_states = sink.edge_states
    thresholds = _widening_thresholds(program)
    states: Dict[int, RegState] = {}
    cell_states: Dict[int, CellState] = {}
    visits: Dict[int, int] = {}
    worklist: deque = deque()
    pending: Set[int] = set()

    def propagate(
        dst: int,
        state: RegState,
        cells: CellState,
        edge_key: Optional[Tuple[int, int, str]],
    ) -> None:
        if cfg.block_starting_at(dst) is None:
            return
        if edge_key is not None:
            recorded = edge_states.get(edge_key)
            edge_states[edge_key] = (
                list(state) if recorded is None
                else [a.join(b) for a, b in zip(recorded, state)]
            )
        current = states.get(dst)
        if current is None:
            states[dst] = list(state)
            cell_states[dst] = dict(cells)
        else:
            joined = [a.join(b) for a, b in zip(current, state)]
            current_cells = cell_states.get(dst, {})
            joined_cells: CellState = {}
            for cell, interval in current_cells.items():
                incoming = cells.get(cell)
                if incoming is not None:
                    joined_cells[cell] = interval.join(incoming)
            if joined == current and joined_cells == current_cells:
                return
            visits[dst] = visits.get(dst, 0) + 1
            if visits[dst] > WIDEN_LIMIT:
                joined = [
                    old if new == old else TOP
                    for old, new in zip(current, joined)
                ]
                widened_cells: CellState = {}
                for cell, interval in joined_cells.items():
                    old_cell = current_cells[cell]
                    if interval == old_cell:
                        widened_cells[cell] = interval
                        continue
                    widened = _widen_cell(thresholds, old_cell, interval)
                    if widened is not None:
                        widened_cells[cell] = widened
                joined_cells = widened_cells
                if joined == current and joined_cells == current_cells:
                    return
            states[dst] = joined
            cell_states[dst] = joined_cells
        if dst not in pending:
            pending.add(dst)
            worklist.append(dst)

    entry_block = cfg.entry_block
    if entry_block is None:
        return states, cell_states
    propagate(entry_block.start, entry_state(program), {}, None)

    while worklist:
        start = worklist.popleft()
        pending.discard(start)
        block = cfg.block_starting_at(start)
        regs = list(states[start])
        tracker = _BlockCells(cell_states.get(start, {}))
        terminator = block.terminator
        body = block.instructions[:-1] if terminator.is_control_flow else block.instructions
        for instr in body:
            mnemonic = instr.mnemonic
            defined = register_def(instr)
            flag_fact: Optional[_FlagFact] = None
            if mnemonic in ("slt", "slti", "sltu", "sltiu"):
                if mnemonic in ("slt", "sltu"):
                    rhs_iv: Interval = regs[instr.rs2]
                    rhs_cell = tracker.reg_cell.get(instr.rs2)
                else:
                    rhs_iv = Interval.const(to_unsigned(instr.imm))
                    rhs_cell = None
                flag_fact = (
                    mnemonic in ("slt", "slti"),
                    regs[instr.rs1], tracker.reg_cell.get(instr.rs1),
                    rhs_iv, rhs_cell,
                )
            load_address: Optional[Interval] = None
            if instr.spec.is_load:
                load_address = regs[instr.rs1].add_const(instr.imm)
            if instr.spec.is_store:
                tracker.store(
                    instr,
                    regs[instr.rs1].add_const(instr.imm),
                    _STORE_SIZES[mnemonic],
                )
            _step(instr, regs, memory, sink)
            if defined is not None:
                tracker.drop_register(defined)
            if flag_fact is not None and defined:
                tracker.flags[defined] = flag_fact
            if instr.spec.is_store:
                address = regs[instr.rs1].add_const(instr.imm)
                if (
                    mnemonic == "sw"
                    and address.is_const
                    and address.value % 4 == 0
                ):
                    tracker.cells[address.value] = regs[instr.rs2]
                    if instr.rs2:
                        tracker.reg_cell[instr.rs2] = address.value
            elif (
                mnemonic == "lw"
                and load_address is not None
                and load_address.is_const
                and load_address.value % 4 == 0
            ):
                cell = load_address.value
                constraint = tracker.cells.get(cell)
                if constraint is not None and instr.rd:
                    met = regs[instr.rd].meet(constraint)
                    if met is not None:
                        regs[instr.rd] = met
                if instr.rd:
                    tracker.reg_cell[instr.rd] = cell

        out_edges = cfg.successors(start)
        is_branch = terminator.is_conditional_branch
        for edge in out_edges:
            kind = edge.kind
            if kind is EdgeKind.RETURN:
                continue  # continuations are fed from their call sites below
            key = (start, edge.dst, kind.name)
            if kind in (EdgeKind.BRANCH_TAKEN, EdgeKind.FALLTHROUGH) and is_branch:
                taken = kind is EdgeKind.BRANCH_TAKEN
                refined = refine_branch(
                    terminator.mnemonic, taken,
                    regs[terminator.rs1], regs[terminator.rs2],
                )
                feasible = refined is not None
                state = list(regs)
                edge_cells = dict(tracker.cells)
                if feasible:
                    assert refined is not None
                    _write(state, terminator.rs1, refined[0])
                    if terminator.rs2 != terminator.rs1:
                        _write(state, terminator.rs2, refined[1])
                    feasible = _refine_into(
                        edge_cells, tracker.reg_cell.get(terminator.rs1), refined[0]
                    ) and _refine_into(
                        edge_cells, tracker.reg_cell.get(terminator.rs2), refined[1]
                    )
                if feasible and terminator.mnemonic in ("beq", "bne"):
                    flag = None
                    if terminator.rs2 == 0 and terminator.rs1 in tracker.flags:
                        flag = terminator.rs1
                    elif terminator.rs1 == 0 and terminator.rs2 in tracker.flags:
                        flag = terminator.rs2
                    if flag is not None:
                        signed, lhs_iv, lhs_cell, rhs_iv, rhs_cell = tracker.flags[flag]
                        # flag != 0  <=>  lhs < rhs
                        cmp_taken = taken if terminator.mnemonic == "bne" else not taken
                        cmp_refined = refine_branch(
                            "blt" if signed else "bltu", cmp_taken, lhs_iv, rhs_iv
                        )
                        if cmp_refined is None:
                            feasible = False
                        else:
                            feasible = _refine_into(
                                edge_cells, lhs_cell, cmp_refined[0]
                            ) and _refine_into(edge_cells, rhs_cell, cmp_refined[1])
                sink.edge_feasible(start, edge.dst, feasible)
                if not feasible:
                    continue
                propagate(edge.dst, state, edge_cells, key)
            elif kind is EdgeKind.INDIRECT:
                raw = regs[terminator.rs1].add_const(terminator.imm)
                # jalr clears bit 0 of the computed target.
                target = Interval(raw.lo & ~1, raw.hi & ~1)
                resolved = not raw.is_top
                if resolved and not target.contains(edge.dst):
                    sink.indirect_target(terminator.address, None, resolved)
                    continue
                sink.indirect_target(terminator.address, edge.dst, resolved)
                state = list(regs)
                _write(state, terminator.rd, Interval.const(terminator.address + 4))
                propagate(edge.dst, state, {}, key)
            elif kind is EdgeKind.CALL:
                state = list(regs)
                _write(state, terminator.rd, Interval.const(terminator.address + 4))
                propagate(edge.dst, state, {}, key)
            elif kind is EdgeKind.JUMP:
                state = regs
                if terminator.mnemonic == "jal" and terminator.rd:
                    state = list(regs)
                    _write(state, terminator.rd, Interval.const(terminator.address + 4))
                propagate(edge.dst, state, tracker.cells, key)
            else:  # plain fallthrough from a non-branch terminator
                propagate(edge.dst, regs, tracker.cells, key)

        # A linking terminator's continuation is fed directly from the call
        # site with caller-saved registers havocked (ABI assumption); the
        # callee may write any cell, so no constraint survives the call.
        if terminator.is_control_flow and terminator.writes_link_register:
            continuation = cfg.block_starting_at(block.end)
            if continuation is not None:
                propagate(block.end, _call_transparent(regs), {}, None)
    return states, cell_states
