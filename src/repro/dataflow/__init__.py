"""Static program analysis over assembled ISA programs.

``repro.dataflow`` is *program* analysis (lattices, fixpoints, proofs about
a single binary); the similarly named ``repro.analysis`` package is
*campaign* analysis (aggregating detection results across runs).  See
``docs/ANALYSIS.md`` for the split and for the soundness contract every
pass in this package honours: no statically "proven" fact may be violated
by any dynamic trace of the same program.
"""

from repro.dataflow.absint import IntervalAnalysis, analyze_intervals
from repro.dataflow.attackvet import (
    PROVEN_DIVERGENT,
    PROVEN_INVISIBLE,
    UNKNOWN,
    classify_data_only,
    classify_redirect,
    predicted_detection,
)
from repro.dataflow.engine import solve
from repro.dataflow.lattice import Interval, refine_branch
from repro.dataflow.lint import Finding, lint_program, new_findings
from repro.dataflow.liveness import DeadDef, LivenessAnalysis, analyze_liveness
from repro.dataflow.loopbounds import LoopBound, infer_loop_bounds
from repro.dataflow.policy import POLICY_VERSION, LoopPolicy, StaticPolicy
from repro.dataflow.program import (
    ProgramAnalysis,
    analyze_program,
    clear_analysis_cache,
)
from repro.dataflow.reaching import ReachingDefinitions, analyze_reaching_definitions

__all__ = [
    "Interval",
    "refine_branch",
    "solve",
    "IntervalAnalysis",
    "analyze_intervals",
    "LoopBound",
    "infer_loop_bounds",
    "DeadDef",
    "LivenessAnalysis",
    "analyze_liveness",
    "ReachingDefinitions",
    "analyze_reaching_definitions",
    "LoopPolicy",
    "StaticPolicy",
    "POLICY_VERSION",
    "ProgramAnalysis",
    "analyze_program",
    "clear_analysis_cache",
    "Finding",
    "lint_program",
    "new_findings",
    "PROVEN_DIVERGENT",
    "PROVEN_INVISIBLE",
    "UNKNOWN",
    "classify_redirect",
    "classify_data_only",
    "predicted_detection",
]
