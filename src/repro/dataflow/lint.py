"""Lint over assembled programs, fed by the dataflow passes.

Finding kinds:

* ``dead-block`` — a basic block the interval fixpoint proves unreachable
  from the program entry.
* ``unbounded-loop`` — a natural loop with no statically provable
  trip-count bound (legitimate for data-dependent loops; the finding makes
  the verifier's blind spot explicit).
* ``unresolved-indirect`` — a ``jalr`` whose target interval is TOP, so
  every function entry stays a feasible destination.
* ``dead-def`` — a side-effect-light instruction whose register result is
  provably never read (reported only inside reachable blocks).

Findings are deterministic for a given program, so CI can diff them
against a checked-in baseline and fail on *new* findings only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.dataflow.program import ProgramAnalysis


@dataclass(frozen=True)
class Finding:
    kind: str
    address: int
    detail: str

    def key(self) -> Tuple[str, int]:
        return (self.kind, self.address)

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "address": self.address, "detail": self.detail}


def lint_program(analysis: ProgramAnalysis) -> List[Finding]:
    """All lint findings for one analysed program, sorted by address."""
    findings: List[Finding] = []

    for start in sorted(analysis.unreachable_blocks):
        block = analysis.cfg.block_starting_at(start)
        label = block.label if block is not None and block.label else ""
        findings.append(Finding(
            "dead-block", start,
            "block %s%#x is unreachable from the program entry"
            % (("%s at " % label) if label else "", start),
        ))

    for header, bound in sorted(analysis.loop_bounds.items()):
        if bound.max_back_edges is None:
            findings.append(Finding(
                "unbounded-loop", header,
                "no static trip-count bound for the loop headed at %#x" % header,
            ))

    intervals = analysis.intervals
    for pc, (targets, resolved) in sorted(intervals.indirect_targets.items()):
        if not resolved:
            findings.append(Finding(
                "unresolved-indirect", pc,
                "indirect jump at %#x: target interval is TOP "
                "(%d candidate entries remain)" % (pc, len(targets)),
            ))

    reachable_pcs: Set[int] = set()
    for start in intervals.reachable_blocks:
        block = analysis.cfg.block_starting_at(start)
        if block is not None:
            reachable_pcs.update(i.address for i in block.instructions)
    for dead in analysis.liveness.dead_defs:
        if dead.pc in reachable_pcs:
            findings.append(Finding(
                "dead-def", dead.pc,
                "%s at %#x defines x%d but the value is never read"
                % (dead.mnemonic, dead.pc, dead.register),
            ))

    findings.sort(key=lambda f: (f.address, f.kind))
    return findings


def new_findings(
    findings: Sequence[Finding], baseline: Iterable[Mapping[str, object]]
) -> List[Finding]:
    """Findings not present in a baseline (matched on kind + address)."""
    known = {(str(row["kind"]), int(row["address"])) for row in baseline}  # type: ignore[arg-type]
    return [f for f in findings if f.key() not in known]
