"""Deterministic seed plumbing for the adversarial tooling.

One integer seed controls everything the adversary package generates:
scenario synthesis, fuzz mutation streams, and the adversary campaign
preset.  Precedence is explicit argument > ``REPRO_SEED`` environment
variable > :data:`DEFAULT_SEED`, so a failure printed with its seed
reproduces with ``repro adversary --seed N`` regardless of how the original
run was configured.

Independent random streams are derived by hashing the seed together with a
purpose label (:func:`derive_rng`); adding a new consumer never perturbs the
streams existing consumers see.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import Optional

#: Seed used when neither ``--seed`` nor ``REPRO_SEED`` is given (the paper's
#: publication date, because every constant should mean something).
DEFAULT_SEED = 20170618

#: Environment variable overriding the default seed.
ENV_SEED = "REPRO_SEED"

#: Environment variable scaling fuzzer iteration counts (opt-in deep runs).
ENV_FUZZ_EXAMPLES = "REPRO_FUZZ_EXAMPLES"


def resolve_seed(seed: Optional[int] = None) -> int:
    """Resolve the effective seed: explicit > ``REPRO_SEED`` > default."""
    if seed is not None:
        return int(seed)
    raw = os.environ.get(ENV_SEED)
    if raw:
        try:
            return int(raw, 0)
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (ENV_SEED, raw)
            ) from None
    return DEFAULT_SEED


def resolve_fuzz_examples(default: int) -> int:
    """Number of fuzz iterations per surface: ``REPRO_FUZZ_EXAMPLES`` or ``default``."""
    raw = os.environ.get(ENV_FUZZ_EXAMPLES)
    if not raw:
        return default
    try:
        value = int(raw, 0)
    except ValueError:
        raise ValueError(
            "%s must be an integer, got %r" % (ENV_FUZZ_EXAMPLES, raw)
        ) from None
    if value <= 0:
        raise ValueError("%s must be positive, got %d" % (ENV_FUZZ_EXAMPLES, value))
    return value


def derive_rng(seed: int, *labels: str) -> random.Random:
    """A :class:`random.Random` for one purpose, derived from seed + labels.

    The stream depends only on the seed and the label path, never on Python's
    per-process hash randomisation (SHA3, not ``hash()``), so generation is
    reproducible across processes and platforms.
    """
    material = ":".join([str(int(seed))] + [str(label) for label in labels])
    digest = hashlib.sha3_256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))
