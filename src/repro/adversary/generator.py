"""CFG-derived synthesis of benign variants and attack scenarios.

The generator walks a workload's control-flow graph and proposes candidate
perturbations in the paper's attack-class taxonomy, then *vets every
candidate empirically* before emitting it:

* a control-flow attack (edge bend, skipped node, loop tampering) is kept
  only if the attacked run terminates, the corruption actually fired, and
  the measurement ``(A, L)`` diverges from the benign reference under
  **both** runtime schemes (lofat and cflat) -- a bend that rejoins the
  benign event stream is indistinguishable from the benign run by
  construction and would poison the detection matrix;
* a data-only corruption is kept only if the measurement is *identical* to
  the benign reference under both runtime schemes -- that is what makes it
  the documented expected-miss case;
* a benign input variant is kept only if the program runs to completion on
  it within the vetting fuel budget.

Where the static analyzer (:mod:`repro.dataflow.attackvet`) can *prove* the
measurement outcome, the scheme-instrumented vetting runs are skipped: a
redirect proven divergent needs one plain run (termination / trigger /
output checks) instead of one instrumented run per runtime scheme, and a
data-only corruption proven invisible needs no extra run at all -- its
attacked execution is bit-identical to the benign profile already captured.
Candidates the analyzer cannot decide fall back to full execution vetting,
so the emitted population is byte-identical either way (tier-1 pins this).

Candidates that fail vetting are discarded, not patched: the RNG stream is
consumed identically either way, so generation is deterministic in the seed.

Emitted attacks are plain :class:`repro.attacks.injector.AttackScenario`
objects, compatible with the hand-written registry, the campaign runner and
the attestation prover's attack hook.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.injector import (
    AttackScenario,
    ControlFlowRedirect,
    MemoryCorruption,
)
from repro.adversary.seeds import derive_rng, resolve_seed
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.exceptions import CpuError
from repro.dataflow.attackvet import (
    PROVEN_DIVERGENT,
    PROVEN_INVISIBLE,
    classify_data_only,
    classify_redirect,
)
from repro.dataflow.program import analyze_program
from repro.schemes import get_scheme
from repro.workloads import Workload, get_workload

#: Instruction budget for vetting runs: large enough for every registered
#: workload's benign run, small enough that a runaway candidate (e.g. a
#: redirect that re-arms a countdown loop) is rejected quickly.
VET_FUEL = 400_000

#: Runtime schemes a control-flow attack must be visible to (and a data-only
#: corruption invisible to) before the generator emits it.
RUNTIME_SCHEMES = ("lofat", "cflat")


@dataclass
class GeneratorLimits:
    """Per-family quotas and the candidate-attempt budget."""

    benign_variants: int = 12
    edge_bends: int = 10
    skipped_nodes: int = 4
    loop_overcounts: int = 3
    loop_undercounts: int = 3
    data_only: int = 6
    #: Candidate attempts allowed per emitted scenario before giving up.
    attempts_per_quota: int = 40

    def scaled(self, factor: float) -> "GeneratorLimits":
        """A proportionally smaller/larger quota set (at least 1 each)."""
        return GeneratorLimits(
            benign_variants=max(1, int(self.benign_variants * factor)),
            edge_bends=max(1, int(self.edge_bends * factor)),
            skipped_nodes=max(1, int(self.skipped_nodes * factor)),
            loop_overcounts=max(1, int(self.loop_overcounts * factor)),
            loop_undercounts=max(1, int(self.loop_undercounts * factor)),
            data_only=max(1, int(self.data_only * factor)),
            attempts_per_quota=self.attempts_per_quota,
        )


@dataclass
class BenignVariant:
    """An input assignment on which the unattacked program must verify."""

    name: str
    workload_name: str
    inputs: Tuple[int, ...]
    kind: str  # "default" | "permutation" | "jitter" | "rotation"
    observed_output: str = ""


@dataclass
class GeneratedSuite:
    """Everything the generator produced for one workload at one seed."""

    workload_name: str
    seed: int
    benign: List[BenignVariant] = field(default_factory=list)
    attacks: List[AttackScenario] = field(default_factory=list)
    #: How many candidates the static pre-filter proved (and so vetted
    #: without scheme-instrumented runs) versus deferred to execution.
    static_vet: Dict[str, int] = field(default_factory=dict)

    @property
    def scenario_count(self) -> int:
        return len(self.benign) + len(self.attacks)

    def counts(self) -> Dict[str, int]:
        """Scenario counts per family (benign kinds and attack categories)."""
        tally: Counter = Counter()
        for variant in self.benign:
            tally["benign:" + variant.kind] += 1
        for scenario in self.attacks:
            tally[scenario.category] += 1
        return dict(tally)


def _measurement_key(measurement) -> Tuple[bytes, bytes]:
    return (measurement.measurement, measurement.metadata.to_bytes())


def _run_measured(scheme, program, inputs, corruptions=()):
    """One bounded run with ``corruptions`` installed under ``scheme``.

    Returns ``(result, (A, L))`` or ``None`` if the run raised a CPU error
    (out of fuel, memory protection, illegal instruction, misalignment --
    the candidate is simply not viable).
    """
    cpu = Cpu(
        program,
        inputs=list(inputs),
        config=CpuConfig(collect_trace=False, max_instructions=VET_FUEL),
    )
    session = scheme.open_session(program)
    cpu.attach_monitor(session.observe)
    for corruption in corruptions:
        corruption.install(cpu)
    try:
        result = cpu.run()
    except CpuError:
        return None
    return result, _measurement_key(session.finalize())


def _redirect_builder(trigger_pc: int, target: int, occurrence: int):
    def build(program):
        return [
            ControlFlowRedirect(
                trigger_pc=trigger_pc, target=target, occurrence=occurrence
            )
        ]
    return build


def _corruption_builder(trigger_pc: int, address: int, value: int, occurrence: int):
    def build(program):
        return [
            MemoryCorruption(
                trigger_pc=trigger_pc,
                address=address,
                value=value,
                occurrence=occurrence,
            )
        ]
    return build


class _WorkloadContext:
    """Benign references and execution profile shared by all candidates."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self.program = workload.build()
        self.analysis = analyze_program(self.program)
        self.cfg = self.analysis.cfg
        self.loops = self.analysis.loops
        self.inputs = tuple(workload.inputs)
        #: How often the static pre-filter decided (or declined to decide) a
        #: candidate; purely observational, surfaced by ``repro adversary``.
        self.static_vet_counts: Counter = Counter()

        cpu = Cpu(
            self.program,
            inputs=list(self.inputs),
            config=CpuConfig(max_instructions=VET_FUEL),
        )
        result = cpu.run()
        self.benign_output = result.output
        #: How often each pc retired on the benign run (trigger candidates).
        self.pc_counts: Counter = Counter(
            record.pc for record in result.trace.records
        )

        self.schemes = {name: get_scheme(name) for name in RUNTIME_SCHEMES}
        self.references: Dict[str, Tuple[bytes, bytes]] = {}
        for name, scheme in self.schemes.items():
            measured = _run_measured(scheme, self.program, self.inputs)
            if measured is None:  # pragma: no cover - benign run must work
                raise RuntimeError(
                    "benign reference run failed for %r" % workload.name
                )
            self.references[name] = measured[1]

        self.block_starts = [block.start for block in self.cfg.blocks]

    def vet_control_flow(self, builder) -> Optional[Tuple[bool, str]]:
        """Vet a control-flow candidate; returns (changes_output, output) or None.

        The candidate must terminate, fire, and diverge from the benign
        reference under every runtime scheme.  When the analyzer proves the
        divergence, one plain run replaces the per-scheme instrumented runs.
        """
        redirect = self._single_redirect(builder)
        if redirect is not None:
            verdict = classify_redirect(
                self.analysis, redirect.trigger_pc, int(redirect.target)
            )
            if verdict == PROVEN_DIVERGENT:
                self.static_vet_counts["redirect_proven_divergent"] += 1
                return self._vet_plain_run(builder)
            self.static_vet_counts["redirect_unknown"] += 1
        observed_output = None
        for name, scheme in self.schemes.items():
            corruptions = builder(self.program)
            measured = _run_measured(scheme, self.program, self.inputs, corruptions)
            if measured is None:
                return None
            result, key = measured
            if not any(corruption.fired for corruption in corruptions):
                return None
            if key == self.references[name]:
                return None
            observed_output = result.output
        return (observed_output != self.benign_output, observed_output)

    def vet_data_only(self, builder) -> Optional[Tuple[bool, str]]:
        """Vet a data-only candidate; returns (changes_output, output) or None.

        The candidate must terminate, fire, and leave the measurement
        *identical* to the benign reference under every runtime scheme.
        When the analyzer proves the written bytes are never read, the
        attacked run is bit-identical to the benign profile, so no run at
        all is needed: firing follows from the benign pc counts and the
        output cannot change.
        """
        corruption = self._single_corruption(builder)
        if corruption is not None:
            verdict = classify_data_only(
                self.analysis, int(corruption.address), corruption.size
            )
            if verdict == PROVEN_INVISIBLE:
                self.static_vet_counts["data_proven_invisible"] += 1
                if self.pc_counts.get(corruption.trigger_pc, 0) < corruption.occurrence:
                    return None
                return (False, self.benign_output)
            self.static_vet_counts["data_unknown"] += 1
        observed_output = None
        for name, scheme in self.schemes.items():
            corruptions = builder(self.program)
            measured = _run_measured(scheme, self.program, self.inputs, corruptions)
            if measured is None:
                return None
            result, key = measured
            if not any(corruption.fired for corruption in corruptions):
                return None
            if key != self.references[name]:
                return None
            observed_output = result.output
        return (observed_output != self.benign_output, observed_output)

    # ---------------------------------------------------- static pre-filter
    def _single_redirect(self, builder) -> Optional[ControlFlowRedirect]:
        """The candidate's lone constant redirect, when that's its shape."""
        corruptions = builder(self.program)
        if len(corruptions) != 1:
            return None
        corruption = corruptions[0]
        if not isinstance(corruption, ControlFlowRedirect):
            return None
        if callable(corruption.target) or corruption.repeat:
            return None
        return corruption

    def _single_corruption(self, builder) -> Optional[MemoryCorruption]:
        """The candidate's lone constant word write into the mapped data
        region, when that's its shape (so the write itself cannot fault and
        the invisibility proof extends to the whole run)."""
        corruptions = builder(self.program)
        if len(corruptions) != 1:
            return None
        corruption = corruptions[0]
        if not isinstance(corruption, MemoryCorruption):
            return None
        if callable(corruption.address) or callable(corruption.value):
            return None
        if corruption.repeat:
            return None
        address = int(corruption.address)
        region_end = self.program.data_base + CpuConfig().data_region_size
        if address < self.program.data_base or address + corruption.size > region_end:
            return None
        return corruption

    def _vet_plain_run(self, builder) -> Optional[Tuple[bool, str]]:
        """Behavioural checks only: terminate, fire, observe the output."""
        corruptions = builder(self.program)
        cpu = Cpu(
            self.program,
            inputs=list(self.inputs),
            config=CpuConfig(collect_trace=False, max_instructions=VET_FUEL),
        )
        for corruption in corruptions:
            corruption.install(cpu)
        try:
            result = cpu.run()
        except CpuError:
            return None
        if not any(corruption.fired for corruption in corruptions):
            return None
        return (result.output != self.benign_output, result.output)

    def vet_benign(self, inputs: Sequence[int]) -> Optional[str]:
        """Vet a benign input variant; returns its output or None."""
        cpu = Cpu(
            self.program,
            inputs=list(inputs),
            config=CpuConfig(collect_trace=False, max_instructions=VET_FUEL),
        )
        try:
            result = cpu.run()
        except CpuError:
            return None
        return result.output


def _generate_benign(context: _WorkloadContext, rng, limits: GeneratorLimits):
    workload = context.workload
    variants: List[BenignVariant] = []
    seen = set()

    def add(kind: str, inputs: Sequence[int]) -> bool:
        key = tuple(int(value) for value in inputs)
        if key in seen:
            return False
        output = context.vet_benign(key)
        if output is None:
            return False
        seen.add(key)
        variants.append(
            BenignVariant(
                name="%s_benign_%s%02d" % (workload.name, kind, len(variants)),
                workload_name=workload.name,
                inputs=key,
                kind=kind,
                observed_output=output,
            )
        )
        return True

    add("default", context.inputs)
    base = list(context.inputs)
    attempts = limits.benign_variants * limits.attempts_per_quota
    while len(variants) < limits.benign_variants and attempts > 0:
        attempts -= 1
        choice = rng.randrange(3)
        if choice == 0 and len(base) >= 2:
            # Input permutation: same multiset of values, different schedule.
            shuffled = list(base)
            rng.shuffle(shuffled)
            add("permutation", shuffled)
        elif choice == 1 and base:
            # Rotation: an equivalent schedule of the same input stream.
            pivot = rng.randrange(1, len(base)) if len(base) > 1 else 0
            add("rotation", base[pivot:] + base[:pivot])
        else:
            # Value jitter: fresh small values (small keeps loop trip counts
            # and therefore vetting runs short).
            add("jitter", [rng.randint(0, 64) for _ in range(max(1, len(base)))])
    return variants


def _executed_blocks(context: _WorkloadContext, by_terminator: bool):
    blocks = []
    for block in context.cfg.blocks:
        pc = block.terminator_address if by_terminator else block.start
        if context.pc_counts.get(pc):
            blocks.append(block)
    return blocks


def _occurrence(rng, count: int) -> int:
    return rng.randint(1, min(count, 8))


def _generate_family(
    context,
    rng,
    quota: int,
    attempts_per_quota: int,
    propose,
    vet,
    describe,
    category: str,
    attack_class: int,
    control_flow_visible: bool,
    start_index: int,
    seed: int,
):
    """Propose/vet loop shared by every attack family."""
    scenarios: List[AttackScenario] = []
    signatures = set()
    attempts = quota * attempts_per_quota
    while len(scenarios) < quota and attempts > 0:
        attempts -= 1
        candidate = propose()
        if candidate is None:
            continue
        signature, builder_args = candidate
        if signature in signatures:
            continue
        builder = builder_args[0]
        verdict = vet(builder)
        if verdict is None:
            continue
        changes_output, _ = verdict
        signatures.add(signature)
        index = start_index + len(scenarios)
        scenarios.append(
            AttackScenario(
                name="adv_%s_%s%02d_s%d"
                % (context.workload.name, category, index, seed),
                description=describe(signature),
                attack_class=attack_class,
                workload_name=context.workload.name,
                build_corruptions=builder,
                challenge_inputs=list(context.inputs),
                changes_output=changes_output,
                control_flow_visible=control_flow_visible,
                category=category,
            )
        )
    return scenarios


def generate_suite(
    workload_name: str,
    seed: Optional[int] = None,
    limits: Optional[GeneratorLimits] = None,
) -> GeneratedSuite:
    """Generate the benign-variant and attack-scenario suite for a workload.

    Deterministic in ``(seed, workload_name, limits)``: the RNG stream is
    derived from the seed and the workload name only, and every candidate is
    vetted on the deterministic CPU model.
    """
    seed = resolve_seed(seed)
    limits = limits or GeneratorLimits()
    workload = get_workload(workload_name)
    context = _WorkloadContext(workload)
    rng = derive_rng(seed, "generator", workload.name)
    suite = GeneratedSuite(workload_name=workload.name, seed=seed)

    suite.benign = _generate_benign(context, rng, limits)

    block_starts = context.block_starts

    # --- class 3: edge bends (ROP/JOP-style pivots at a block terminator) ---
    bend_sources = _executed_blocks(context, by_terminator=True)

    def propose_bend():
        if not bend_sources:
            return None
        block = rng.choice(bend_sources)
        trigger = block.terminator_address
        legal = context.cfg.successor_starts(block.start)
        targets = [
            start
            for start in block_starts
            if start not in legal and start != block.start
        ]
        if not targets:
            return None
        target = rng.choice(targets)
        occurrence = _occurrence(rng, context.pc_counts[trigger])
        signature = ("bend", trigger, target, occurrence)
        return signature, (_redirect_builder(trigger, target, occurrence),)

    suite.attacks += _generate_family(
        context, rng, limits.edge_bends, limits.attempts_per_quota,
        propose_bend, context.vet_control_flow,
        lambda sig: (
            "Edge bend: pivot from the terminator at 0x%x (occurrence %d) to "
            "non-successor block 0x%x, modelling a code-pointer hijack."
            % (sig[1], sig[3], sig[2])
        ),
        category="edge_bend", attack_class=3, control_flow_visible=True,
        start_index=0, seed=seed,
    )

    # --- class 3: skipped nodes (shortcut from a block entry to a successor) ---
    skip_sources = [
        block for block in _executed_blocks(context, by_terminator=False)
        if block.size >= 2
    ]

    def propose_skip():
        if not skip_sources:
            return None
        block = rng.choice(skip_sources)
        successors = sorted(context.cfg.successor_starts(block.start))
        targets = [start for start in successors if start != block.start]
        if not targets:
            return None
        target = rng.choice(targets)
        occurrence = _occurrence(rng, context.pc_counts[block.start])
        signature = ("skip", block.start, target, occurrence)
        return signature, (_redirect_builder(block.start, target, occurrence),)

    suite.attacks += _generate_family(
        context, rng, limits.skipped_nodes, limits.attempts_per_quota,
        propose_skip, context.vet_control_flow,
        lambda sig: (
            "Skipped node: shortcut from block entry 0x%x (occurrence %d) "
            "straight to successor 0x%x, skipping the block's body."
            % (sig[1], sig[3], sig[2])
        ),
        category="skipped_node", attack_class=3, control_flow_visible=True,
        start_index=0, seed=seed,
    )

    # --- class 2: loop-iteration tampering --------------------------------
    executed_loops = [
        loop for loop in sorted(context.loops, key=lambda l: l.header)
        if context.pc_counts.get(loop.header, 0) >= 2
    ]

    def propose_overcount():
        if not executed_loops:
            return None
        loop = rng.choice(executed_loops)
        exits = [
            start for start in sorted(loop.exits) if context.pc_counts.get(start)
        ]
        if not exits:
            return None
        trigger = rng.choice(exits)
        body_entries = [
            start
            for start in sorted(context.cfg.successor_starts(loop.header))
            if start in loop.body
        ]
        target = rng.choice(body_entries) if body_entries else loop.header
        occurrence = _occurrence(rng, context.pc_counts[trigger])
        signature = ("overcount", trigger, target, occurrence, loop.header)
        return signature, (_redirect_builder(trigger, target, occurrence),)

    suite.attacks += _generate_family(
        context, rng, limits.loop_overcounts, limits.attempts_per_quota,
        propose_overcount, context.vet_control_flow,
        lambda sig: (
            "Loop over-count: on reaching loop exit 0x%x (occurrence %d), "
            "re-enter the body of the loop headed at 0x%x via 0x%x for an "
            "extra iteration." % (sig[1], sig[3], sig[4], sig[2])
        ),
        category="loop_overcount", attack_class=2, control_flow_visible=True,
        start_index=0, seed=seed,
    )

    def propose_undercount():
        if not executed_loops:
            return None
        loop = rng.choice(executed_loops)
        visits = context.pc_counts.get(loop.header, 0)
        if visits < 3:
            return None
        exits = sorted(loop.exits)
        if not exits:
            return None
        target = rng.choice(exits)
        occurrence = rng.randint(2, min(visits - 1, 8))
        signature = ("undercount", loop.header, target, occurrence)
        return signature, (_redirect_builder(loop.header, target, occurrence),)

    suite.attacks += _generate_family(
        context, rng, limits.loop_undercounts, limits.attempts_per_quota,
        propose_undercount, context.vet_control_flow,
        lambda sig: (
            "Loop under-count: break out of the loop headed at 0x%x on its "
            "%d-th header visit, jumping to exit 0x%x early."
            % (sig[1], sig[3], sig[2])
        ),
        category="loop_undercount", attack_class=2, control_flow_visible=True,
        start_index=0, seed=seed,
    )

    # --- class 1: data-only corruption (the documented expected miss) -----
    program = context.program
    data_words = len(program.data) // 4
    stack_top = program.data_base + CpuConfig().data_region_size
    address_pool = [program.data_base + 4 * i for i in range(data_words)]
    address_pool += [stack_top - 4 * k for k in range(1, 17)]
    executed_pcs = sorted(context.pc_counts)

    def propose_data_only():
        if not address_pool or not executed_pcs:
            return None
        trigger = rng.choice(executed_pcs)
        address = rng.choice(address_pool)
        value = rng.choice(
            [0, 1, rng.randint(0, 0x7FFFFFFF), rng.randint(0, 0xFF)]
        )
        occurrence = _occurrence(rng, min(context.pc_counts[trigger], 4))
        signature = ("data", trigger, address, value, occurrence)
        return signature, (
            _corruption_builder(trigger, address, value, occurrence),
        )

    suite.attacks += _generate_family(
        context, rng, limits.data_only, limits.attempts_per_quota,
        propose_data_only, context.vet_data_only,
        lambda sig: (
            "Data-only corruption: at pc 0x%x (occurrence %d) write 0x%x to "
            "0x%x; the control-flow event stream is unchanged, so runtime "
            "attestation is expected to miss it." % (sig[1], sig[4], sig[3], sig[2])
        ),
        category="data_only", attack_class=1, control_flow_visible=False,
        start_index=0, seed=seed,
    )

    suite.static_vet = dict(context.static_vet_counts)
    return suite


#: Workloads the adversary tooling targets by default: the three hand-written
#: attack targets (auth, pump, ROP victim) -- small, loop-rich, and already
#: the E5 subjects.
DEFAULT_WORKLOADS = ("auth_check", "syringe_pump", "vulnerable_process")
