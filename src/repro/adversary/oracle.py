"""The oracle harness: generated scenarios vs. the detection matrix.

For every generated scenario the harness runs the *full* signed attestation
protocol -- challenge, attested execution on the prover, report verification
on the verifier -- under each scheme, and checks the paper's claims:

=================  ========  ========  ========
scenario family     lofat     cflat     static
=================  ========  ========  ========
benign variant      accept    accept    accept
edge bend           reject    reject    accept*
skipped node        reject    reject    accept*
loop over-count     reject    reject    accept*
loop under-count    reject    reject    accept*
data-only           accept*   accept*   accept*
=================  ========  ========  ========

``accept*`` entries are **expected misses**: static attestation cannot see
runtime attacks by design, and control-flow attestation cannot see a
corruption that never perturbs the measured event stream (the C-FLAT
lineage's documented blind spot).  The harness asserts the misses too -- an
expected miss that suddenly gets detected means the generator's
classification and the schemes disagree, which is exactly the kind of drift
the matrix exists to catch.

The expectation for an (attack, scheme) pair is *derived*, not hardcoded:
``reject`` iff the scheme claims runtime detection
(``detects_runtime_attacks``) and the scenario perturbs the measured stream
(``control_flow_visible``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.generator import (
    DEFAULT_WORKLOADS,
    GeneratedSuite,
    GeneratorLimits,
    generate_suite,
)
from repro.adversary.seeds import resolve_seed
from repro.attestation import Prover, Verifier
from repro.attacks.injector import AttackScenario
from repro.schemes import get_scheme

#: Scheme set the oracle checks by default: every registered scheme.
DEFAULT_SCHEMES = ("lofat", "cflat", "static")


def expected_accept(scheme_name: str, scenario: AttackScenario) -> bool:
    """Whether ``scheme_name`` is expected to accept an attacked run."""
    scheme = get_scheme(scheme_name)
    return not (scheme.detects_runtime_attacks and scenario.control_flow_visible)


@dataclass
class MatrixEntry:
    """One (scenario, scheme) protocol run and its verdict."""

    workload: str
    scheme: str
    scenario: str
    family: str                 # "benign:<kind>" or the attack category
    attack_class: Optional[int]
    expected: str               # "accept" | "reject"
    actual: str
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.expected == self.actual

    @property
    def is_expected_miss(self) -> bool:
        """An attack the scheme accepts by design (and did accept)."""
        return (
            self.attack_class is not None
            and self.expected == "accept"
            and self.ok
        )


@dataclass
class OracleReport:
    """Everything one oracle run produced."""

    seed: int
    schemes: List[str]
    entries: List[MatrixEntry] = field(default_factory=list)
    suites: Dict[str, GeneratedSuite] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[MatrixEntry]:
        return [entry for entry in self.entries if not entry.ok]

    @property
    def expected_misses(self) -> List[MatrixEntry]:
        return [entry for entry in self.entries if entry.is_expected_miss]

    def scenario_counts(self) -> Dict[str, int]:
        """Generated scenario count per workload (benign + attacks)."""
        return {
            name: suite.scenario_count for name, suite in self.suites.items()
        }

    def matrix(self) -> Dict[Tuple[str, str], Tuple[int, int]]:
        """(family, scheme) -> (entries that held, total entries)."""
        held: Counter = Counter()
        total: Counter = Counter()
        for entry in self.entries:
            key = (entry.family, entry.scheme)
            total[key] += 1
            if entry.ok:
                held[key] += 1
        return {key: (held[key], total[key]) for key in total}

    def format_matrix(self) -> str:
        """Human-readable matrix table (families x schemes)."""
        cells = self.matrix()
        families = sorted({family for family, _ in cells})
        lines = ["%-24s" % "family" + "".join("%14s" % s for s in self.schemes)]
        for family in families:
            row = "%-24s" % family
            for scheme in self.schemes:
                ok_count, total = cells.get((family, scheme), (0, 0))
                row += "%14s" % ("%d/%d" % (ok_count, total))
            lines.append(row)
        return "\n".join(lines)


def _verify_scenario(
    verifier: Verifier,
    prover: Prover,
    program_id: str,
    inputs: Sequence[int],
    scheme: str,
    mode: str,
):
    challenge = verifier.challenge(program_id, inputs, scheme=scheme)
    report = prover.attest(challenge)
    return verifier.verify(report, device_id=prover.device_id, mode=mode)


def run_oracle(
    workloads: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    limits: Optional[GeneratorLimits] = None,
    mode: str = "replay",
    suites: Optional[Dict[str, GeneratedSuite]] = None,
) -> OracleReport:
    """Generate suites and drive every scenario through every scheme.

    ``suites`` lets a caller reuse already-generated suites (the tests
    generate once and share); otherwise suites are generated here from
    ``seed``.
    """
    seed = resolve_seed(seed)
    workload_names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    report = OracleReport(seed=seed, schemes=list(schemes))

    for workload_name in workload_names:
        if suites is not None and workload_name in suites:
            suite = suites[workload_name]
        else:
            suite = generate_suite(workload_name, seed=seed, limits=limits)
        report.suites[workload_name] = suite

        from repro.workloads import get_workload

        program = get_workload(workload_name).build()
        prover = Prover({workload_name: program})

        for scheme_name in schemes:
            verifier = Verifier()
            verifier.register_program(workload_name, program)
            verifier.register_device_key(
                prover.device_id, prover.keystore.export_for_verifier()
            )

            for variant in suite.benign:
                verdict = _verify_scenario(
                    verifier, prover, workload_name, variant.inputs,
                    scheme_name, mode,
                )
                report.entries.append(
                    MatrixEntry(
                        workload=workload_name,
                        scheme=scheme_name,
                        scenario=variant.name,
                        family="benign:" + variant.kind,
                        attack_class=None,
                        expected="accept",
                        actual="accept" if verdict.accepted else "reject",
                        reason=verdict.reason.value,
                    )
                )

            for scenario in suite.attacks:
                prover.clear_attacks()
                prover.install_attack(scenario.prover_hook(program))
                try:
                    verdict = _verify_scenario(
                        verifier, prover, workload_name,
                        scenario.challenge_inputs, scheme_name, mode,
                    )
                finally:
                    prover.clear_attacks()
                report.entries.append(
                    MatrixEntry(
                        workload=workload_name,
                        scheme=scheme_name,
                        scenario=scenario.name,
                        family=scenario.category,
                        attack_class=scenario.attack_class,
                        expected=(
                            "accept"
                            if expected_accept(scheme_name, scenario)
                            else "reject"
                        ),
                        actual="accept" if verdict.accepted else "reject",
                        reason=verdict.reason.value,
                    )
                )

    return report
