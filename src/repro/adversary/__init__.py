"""Adversarial scenario generation and trust-boundary fuzzing.

The paper's security argument is a coverage claim: control-flow attestation
detects code-reuse (edge bends), skipped nodes and loop-iteration tampering,
while -- like C-FLAT in the same lineage -- deliberately missing pure
data-only attacks that never perturb the control-flow event stream.  The
hand-written corpus in :mod:`repro.attacks` only ever tests the attacks we
thought of; this package turns the claim into a machine:

* :mod:`repro.adversary.generator` walks a workload's CFG and synthesizes
  benign input variants and attack scenarios by class, keeping only
  candidates whose measurement-level effect matches their class (a bend
  that rejoins the benign event stream is not an attack, it is noise).
* :mod:`repro.adversary.fuzz` mutates the two untrusted parser surfaces
  (tracefile blobs, wire frames) and asserts fail-closed behaviour: every
  mutant either round-trips byte-identically or raises the documented error
  family.
* :mod:`repro.adversary.oracle` drives generated scenarios through the full
  signed attestation protocol under every scheme and checks the detection
  matrix: benign accepts, claimed-catch rejects, expected-miss misses.

Everything is seeded (:mod:`repro.adversary.seeds`): a failure reproduces
from the seed printed next to it.
"""

from repro.adversary.seeds import (
    DEFAULT_SEED,
    ENV_FUZZ_EXAMPLES,
    ENV_SEED,
    derive_rng,
    resolve_fuzz_examples,
    resolve_seed,
)
from repro.adversary.generator import (
    BenignVariant,
    GeneratedSuite,
    GeneratorLimits,
    generate_suite,
)
from repro.adversary.fuzz import (
    FuzzFailure,
    FuzzReport,
    fuzz_framing,
    fuzz_tracefile,
)
from repro.adversary.oracle import MatrixEntry, OracleReport, run_oracle

__all__ = [
    "DEFAULT_SEED",
    "ENV_FUZZ_EXAMPLES",
    "ENV_SEED",
    "derive_rng",
    "resolve_fuzz_examples",
    "resolve_seed",
    "BenignVariant",
    "GeneratedSuite",
    "GeneratorLimits",
    "generate_suite",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_framing",
    "fuzz_tracefile",
    "MatrixEntry",
    "OracleReport",
    "run_oracle",
]
