"""Mutation fuzzing for the two untrusted parser surfaces.

The trust boundary of the reproduction has exactly two parsers that consume
attacker-controllable bytes: serialised trace blobs
(:mod:`repro.cpu.tracefile`, what the capture-once store and the measurement
database ingest) and wire frames (:mod:`repro.attestation.framing`, what the
verifier service reads off a socket).  The fail-closed property both must
uphold:

    every byte string either parses and re-serialises **byte-identically**,
    or raises the surface's documented error family
    (:class:`~repro.cpu.tracefile.TraceFormatError`,
    :class:`~repro.attestation.framing.FramingError`) -- never any other
    exception, never a silent wrong parse.

:func:`fuzz_tracefile` / :func:`fuzz_framing` drive seeded mutation streams
(byte flips, truncations, extensions, length-prefix lies, field splices)
against real serialised artefacts and check the property on every mutant.
:func:`build_regression_corpus` produces the deterministic always-replayed
corpus of previously-interesting mutants that lives in
``tests/data/adversary_corpus/``.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.seeds import derive_rng, resolve_fuzz_examples, resolve_seed
from repro.attestation.framing import (
    MAX_FRAME_BYTES,
    FrameType,
    FramingError,
    decode_frame,
    encode_frame,
)
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.trace import ControlFlowTrace
from repro.cpu.tracefile import (
    _HEADER,
    _RECORD,
    _V2_COUNTERS,
    TraceFormatError,
    dumps_trace,
    loads_trace,
)
from repro.isa.assembler import assemble

#: Default mutation count per surface (the acceptance floor); scaled up via
#: ``REPRO_FUZZ_EXAMPLES`` for deep opt-in runs.
DEFAULT_EXAMPLES = 1000

#: A tiny looping program whose trace seeds the tracefile fuzzer: short
#: enough to serialise in microseconds, control-flow-rich enough that v2
#: blobs have several records to splice.
_SEED_PROGRAM_SOURCE = """
    .text
_start:
    li   s0, 3
loop:
    addi s0, s0, -1
    bnez s0, loop
    call leaf
    li   a0, 7
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall
leaf:
    ret
"""

#: (offset, size) spans whose values the "lie" mutation rewrites: the
#: version and record-count fields of the trace header and the v2 counters.
_TRACE_LIE_SPANS = (
    (4, 2),                                   # version
    (6, 4),                                   # record count
    (_HEADER.size, 1),                        # v2 flags
    (_HEADER.size + 1, 8),                    # v2 instructions
    (_HEADER.size + 9, 8),                    # v2 cycles
)

#: (offset, size) spans for frames: the type byte and the length prefix.
_FRAME_LIE_SPANS = (
    (0, 1),                                   # frame type
    (1, 4),                                   # payload length
)


@dataclass
class FuzzFailure:
    """One mutant that violated the fail-closed property."""

    surface: str
    iteration: int
    description: str
    blob_hex: str


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzzing run against one surface."""

    surface: str
    seed: int
    iterations: int
    outcomes: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        tally = ", ".join(
            "%s=%d" % (key, self.outcomes[key]) for key in sorted(self.outcomes)
        )
        verdict = "ok" if self.ok else "%d FAILURES" % len(self.failures)
        return "%-10s seed=%d iterations=%d  %s  [%s]" % (
            self.surface, self.seed, self.iterations, tally, verdict
        )


def _resolve_iterations(iterations: Optional[int]) -> int:
    if iterations is not None:
        return int(iterations)
    return resolve_fuzz_examples(DEFAULT_EXAMPLES)


def _trace_seed_blobs() -> List[bytes]:
    """Serialised traces the mutator starts from (v1, v2, edge shapes)."""
    program = assemble(_SEED_PROGRAM_SOURCE)
    result = Cpu(program, config=CpuConfig(max_instructions=10_000)).run()
    full = result.trace
    cf = ControlFlowTrace.from_trace(full)
    non_replayable = ControlFlowTrace(
        records=list(cf.control_flow_records),
        instructions=len(full),
        cycles=full.records[-1].cycle if full.records else 0,
        replayable=False,
    )
    empty = ControlFlowTrace(records=[], instructions=0, cycles=0, replayable=True)
    return [
        dumps_trace(full),                    # v1 full trace
        dumps_trace(cf),                      # v2 control-flow capture
        dumps_trace(non_replayable),          # v2 with replayable flag clear
        dumps_trace(empty),                   # v2 with zero records
    ]


def _frame_seed_blobs() -> List[bytes]:
    """Encoded frames the mutator starts from (all sizes, several types)."""
    hello = json.dumps({"versions": [1], "client": "fuzz"}).encode("ascii")
    report = bytes(range(256)) * 4
    return [
        encode_frame(FrameType.HELLO, hello),
        encode_frame(FrameType.CHALLENGE, b"\x01" * 48),
        encode_frame(FrameType.REPORT, report),
        encode_frame(FrameType.BYE, b""),
        encode_frame(FrameType.VERDICT, b"{}"),
    ]


def _mutate(rng, blob: bytes, pool: Sequence[bytes], lie_spans) -> bytes:
    """One mutation: flip / truncate / extend / splice / field lie."""
    if not blob:
        return bytes([rng.randrange(256)])
    data = bytearray(blob)
    op = rng.randrange(6)
    if op == 0:
        for _ in range(rng.randint(1, 4)):
            index = rng.randrange(len(data))
            data[index] ^= rng.randint(1, 255)
        return bytes(data)
    if op == 1:
        return bytes(data[: rng.randrange(len(data))])
    if op == 2:
        tail = bytes(rng.randrange(256) for _ in range(rng.randint(1, 9)))
        return bytes(data) + tail
    if op == 3:
        other = rng.choice(list(pool))
        cut = rng.randrange(len(data) + 1)
        graft = rng.randrange(len(other) + 1) if other else 0
        return bytes(data[:cut]) + bytes(other[graft:])
    if op == 4:
        offset, size = rng.choice(list(lie_spans))
        if offset + size <= len(data):
            value = rng.choice([0, 1, 0xFF, rng.getrandbits(8 * size)])
            data[offset:offset + size] = int(value).to_bytes(
                8, "little"
            )[:size]
        return bytes(data)
    other = rng.choice(list(pool))
    if other:
        size = rng.choice([1, 2, 4, 8])
        dst = rng.randrange(len(data))
        src = rng.randrange(len(other))
        data[dst:dst + size] = other[src:src + size]
    return bytes(data)


def _check_tracefile(blob: bytes) -> Tuple[str, Optional[str]]:
    """Classify one blob: ('reject'|'roundtrip'|'failure', problem)."""
    try:
        trace = loads_trace(blob)
    except TraceFormatError:
        return "reject", None
    except Exception as exc:  # noqa: BLE001 - the property under test
        return "failure", "uncaught %s: %s" % (type(exc).__name__, exc)
    try:
        round_trip = dumps_trace(trace)
    except Exception as exc:  # noqa: BLE001
        return "failure", "re-serialisation raised %s: %s" % (
            type(exc).__name__, exc,
        )
    if round_trip != blob:
        return "failure", "silent wrong parse: round-trip differs from input"
    return "roundtrip", None


def _check_framing(blob: bytes) -> Tuple[str, Optional[str]]:
    """Classify one frame blob the same way."""
    try:
        frame_type, payload, rest = decode_frame(blob)
    except FramingError:
        return "reject", None
    except Exception as exc:  # noqa: BLE001
        return "failure", "uncaught %s: %s" % (type(exc).__name__, exc)
    try:
        round_trip = encode_frame(frame_type, payload) + rest
    except Exception as exc:  # noqa: BLE001
        return "failure", "re-encode raised %s: %s" % (type(exc).__name__, exc)
    if round_trip != blob:
        return "failure", "silent wrong parse: round-trip differs from input"
    return "roundtrip", None


def _fuzz_surface(
    surface: str,
    seed: Optional[int],
    iterations: Optional[int],
    seed_blobs,
    lie_spans,
    check,
) -> FuzzReport:
    seed = resolve_seed(seed)
    iterations = _resolve_iterations(iterations)
    pool = seed_blobs()
    rng = derive_rng(seed, "fuzz", surface)
    outcomes: Counter = Counter()
    failures: List[FuzzFailure] = []
    for iteration in range(iterations):
        blob = _mutate(rng, rng.choice(pool), pool, lie_spans)
        outcome, problem = check(blob)
        outcomes[outcome] += 1
        if problem is not None:
            failures.append(
                FuzzFailure(
                    surface=surface,
                    iteration=iteration,
                    description=problem,
                    blob_hex=blob.hex(),
                )
            )
    return FuzzReport(
        surface=surface,
        seed=seed,
        iterations=iterations,
        outcomes=dict(outcomes),
        failures=failures,
    )


def fuzz_tracefile(
    seed: Optional[int] = None, iterations: Optional[int] = None
) -> FuzzReport:
    """Fuzz the tracefile parser; see the module docstring for the property."""
    return _fuzz_surface(
        "tracefile", seed, iterations, _trace_seed_blobs, _TRACE_LIE_SPANS,
        _check_tracefile,
    )


def fuzz_framing(
    seed: Optional[int] = None, iterations: Optional[int] = None
) -> FuzzReport:
    """Fuzz the wire-frame parser; see the module docstring for the property."""
    return _fuzz_surface(
        "framing", seed, iterations, _frame_seed_blobs, _FRAME_LIE_SPANS,
        _check_framing,
    )


# --------------------------------------------------------------------------
# Regression corpus: previously-interesting mutants, replayed deterministically
# --------------------------------------------------------------------------

@dataclass
class CorpusEntry:
    """One checked-in mutant and the behaviour the parser owes it."""

    name: str
    surface: str            # "tracefile" | "framing"
    expected: str           # "reject" | "roundtrip"
    blob: bytes


def _edit(blob: bytes, offset: int, value: bytes) -> bytes:
    data = bytearray(blob)
    data[offset:offset + len(value)] = value
    return bytes(data)


def build_regression_corpus() -> List[CorpusEntry]:
    """The deterministic corpus (no randomness: derived from fixed seeds).

    Each entry is a mutant class that either has bitten during development
    of the hardened parsers or pins a boundary the fuzzer found interesting.
    """
    blobs = _trace_seed_blobs()
    v1, v2, empty_v2 = blobs[0], blobs[1], blobs[3]
    record0 = _HEADER.size + _V2_COUNTERS.size  # first v2 record offset
    frame = encode_frame(FrameType.REPORT, b"payload-bytes")
    entries = [
        CorpusEntry("trace_v1_roundtrip", "tracefile", "roundtrip", v1),
        CorpusEntry("trace_v2_roundtrip", "tracefile", "roundtrip", v2),
        CorpusEntry("trace_v2_empty", "tracefile", "roundtrip", empty_v2),
        CorpusEntry(
            "trace_bad_magic", "tracefile", "reject", b"XXXX" + v2[4:]
        ),
        CorpusEntry(
            "trace_bad_version", "tracefile", "reject",
            _edit(v2, 4, (3).to_bytes(2, "little")),
        ),
        CorpusEntry(
            "trace_truncated_header", "tracefile", "reject", v2[:5]
        ),
        CorpusEntry(
            "trace_truncated_counters", "tracefile", "reject",
            v2[:_HEADER.size + 3],
        ),
        CorpusEntry(
            "trace_truncated_record", "tracefile", "reject", v2[:-3]
        ),
        CorpusEntry(
            "trace_unknown_kind", "tracefile", "reject",
            _edit(v2, record0 + 20, b"\x07"),
        ),
        CorpusEntry(
            "trace_taken_two", "tracefile", "reject",
            _edit(v2, record0 + 21, b"\x02"),
        ),
        CorpusEntry(
            "trace_undefined_flag", "tracefile", "reject",
            _edit(v2, _HEADER.size, bytes([v2[_HEADER.size] | 0x80])),
        ),
        CorpusEntry(
            "trace_trailing_byte", "tracefile", "reject", v2 + b"\x00"
        ),
        CorpusEntry(
            "trace_count_overclaim", "tracefile", "reject",
            _edit(
                v2, 6,
                (int.from_bytes(v2[6:10], "little") + 1).to_bytes(4, "little"),
            ),
        ),
        CorpusEntry(
            "trace_count_underclaim", "tracefile", "reject",
            _edit(
                v2, 6,
                (int.from_bytes(v2[6:10], "little") - 1).to_bytes(4, "little"),
            ),
        ),
        CorpusEntry(
            "trace_undecodable_word", "tracefile", "reject",
            _edit(v2, record0 + 12, b"\x00\x00\x00\x00"),
        ),
        CorpusEntry(
            "trace_v2_noncf_record", "tracefile", "reject",
            _edit(v2, record0 + 20, b"\x00"),
        ),
        # Fuzzer-found: an instruction count with the u64 top bit set parsed
        # fine but could not re-serialise (len() cannot return it).
        CorpusEntry(
            "trace_huge_instructions", "tracefile", "roundtrip",
            _edit(v2, _HEADER.size + 1, (2 ** 63 + 17).to_bytes(8, "little")),
        ),
        CorpusEntry("frame_roundtrip", "framing", "roundtrip", frame),
        CorpusEntry(
            "frame_with_rest", "framing", "roundtrip",
            frame + encode_frame(FrameType.BYE, b""),
        ),
        CorpusEntry(
            "frame_empty_payload", "framing", "roundtrip",
            encode_frame(FrameType.BYE, b""),
        ),
        CorpusEntry("frame_truncated_header", "framing", "reject", frame[:3]),
        CorpusEntry("frame_truncated_payload", "framing", "reject", frame[:-1]),
        CorpusEntry(
            "frame_oversized_length", "framing", "reject",
            bytes([FrameType.REPORT])
            + (MAX_FRAME_BYTES + 1).to_bytes(4, "little"),
        ),
        CorpusEntry(
            "frame_unknown_type", "framing", "reject",
            _edit(frame, 0, b"\xee"),
        ),
        CorpusEntry(
            "frame_short_length_rest", "framing", "roundtrip",
            _edit(frame, 1, (4).to_bytes(4, "little")),
        ),
    ]
    return entries


def check_corpus_entry(entry: CorpusEntry) -> Optional[str]:
    """Replay one corpus entry; returns a problem description or None."""
    check = _check_tracefile if entry.surface == "tracefile" else _check_framing
    outcome, problem = check(entry.blob)
    if problem is not None:
        return "%s: %s" % (entry.name, problem)
    if outcome != entry.expected:
        return "%s: expected %s, got %s" % (entry.name, entry.expected, outcome)
    return None


def write_corpus(directory: str) -> List[str]:
    """Write the regression corpus to ``directory`` (blobs + manifest)."""
    os.makedirs(directory, exist_ok=True)
    manifest = {}
    written = []
    for entry in build_regression_corpus():
        filename = entry.name + ".bin"
        with open(os.path.join(directory, filename), "wb") as handle:
            handle.write(entry.blob)
        manifest[entry.name] = {
            "surface": entry.surface,
            "expected": entry.expected,
            "file": filename,
        }
        written.append(filename)
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return written


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Load a corpus previously written by :func:`write_corpus`."""
    with open(os.path.join(directory, "manifest.json")) as handle:
        manifest = json.load(handle)
    entries = []
    for name in sorted(manifest):
        meta = manifest[name]
        with open(os.path.join(directory, meta["file"]), "rb") as handle:
            blob = handle.read()
        entries.append(
            CorpusEntry(
                name=name,
                surface=meta["surface"],
                expected=meta["expected"],
                blob=blob,
            )
        )
    return entries
