"""A minimal ``ecall`` environment for program I/O.

Embedded workloads need a way to signal completion and to emit results so
tests can check functional correctness.  We use a small Linux-flavoured
convention: the syscall number is passed in ``a7`` and arguments in
``a0``/``a1``.

=======  ==========================  =========================================
 a7       name                        behaviour
=======  ==========================  =========================================
 93       exit                        stop execution, exit code in ``a0``
 1        print_int                   append ``str(signed(a0))`` to the output
 4        print_string                append the NUL-terminated string at a0
 11       print_char                  append ``chr(a0 & 0xff)``
 5        read_int                    pop the next value from the input queue
                                      into ``a0`` (0 when exhausted)
=======  ==========================  =========================================

The ``read_int`` call is how the verifier-chosen input ``i`` and the
adversary-chosen inputs ``I`` from the paper's protocol (Figure 2) reach the
program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional
from collections import deque

from repro.cpu.memory import Memory
from repro.isa.registers import RegisterFile, to_signed

SYS_EXIT = 93
SYS_PRINT_INT = 1
SYS_PRINT_STRING = 4
SYS_READ_INT = 5
SYS_PRINT_CHAR = 11


@dataclass
class SyscallResult:
    """Outcome of one ``ecall``."""

    exited: bool = False
    exit_code: int = 0


class SyscallHandler:
    """Dispatches ``ecall`` instructions against a small host environment."""

    def __init__(self, inputs: Optional[List[int]] = None) -> None:
        self._inputs: Deque[int] = deque(inputs or [])
        self.output: List[str] = []
        self.exit_code: Optional[int] = None

    @property
    def output_text(self) -> str:
        """All program output concatenated."""
        return "".join(self.output)

    @property
    def printed_values(self) -> List[int]:
        """All integers printed via ``print_int``, in order."""
        values = []
        for chunk in self.output:
            try:
                values.append(int(chunk))
            except ValueError:
                continue
        return values

    def push_input(self, value: int) -> None:
        """Queue another input value for ``read_int``."""
        self._inputs.append(value)

    def handle(self, registers: RegisterFile, memory: Memory) -> SyscallResult:
        """Execute the syscall selected by ``a7``."""
        number = registers["a7"]
        if number == SYS_EXIT:
            self.exit_code = to_signed(registers["a0"])
            return SyscallResult(exited=True, exit_code=self.exit_code)
        if number == SYS_PRINT_INT:
            self.output.append(str(to_signed(registers["a0"])))
            return SyscallResult()
        if number == SYS_PRINT_CHAR:
            self.output.append(chr(registers["a0"] & 0xFF))
            return SyscallResult()
        if number == SYS_PRINT_STRING:
            self.output.append(memory.read_cstring(registers["a0"]))
            return SyscallResult()
        if number == SYS_READ_INT:
            value = self._inputs.popleft() if self._inputs else 0
            registers["a0"] = value & 0xFFFFFFFF
            return SyscallResult()
        # Unknown syscalls are treated as no-ops so that partially ported
        # firmware does not crash the simulation.
        return SyscallResult()
