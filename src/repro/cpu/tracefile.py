"""Serialisation of execution traces (capture once, attest offline).

The LO-FAT hardware consumes the retired-instruction stream live, but for
development, debugging, regression archiving -- and, at campaign scale, the
capture-once / verify-many pipeline -- it is convenient to capture a trace
once and re-run the attestation engines over it offline -- exactly what the
authors did with their ModelSim dumps.  This module provides a compact,
versioned binary format for :class:`repro.cpu.trace.ExecutionTrace` (format
v1) and :class:`repro.cpu.trace.ControlFlowTrace` (format v2) plus a helper
that replays a stored full trace through any monitor (e.g. a
:class:`repro.lofat.engine.LoFatEngine`).

Format (little-endian):

* header: magic ``LFTR``, format version (u16), record count (u32)
* v2 only: flags (u8; bit 0 = replayable), total retired instructions (u64),
  final cycle (u64) -- the straight-line run counters a control-flow-only
  capture cannot derive from its records
* per record: index (u32), cycle (u32), pc (u32), word (u32), next_pc (u32),
  kind (u8), taken (u8)

Version negotiation happens in the reader: v1 archives deserialise to a full
:class:`ExecutionTrace` exactly as before, v2 files to a
:class:`ControlFlowTrace`.  v1 cannot represent a fast-path (control-flow
only) capture -- writing one as v1 is an error rather than a silent loss.

The decoded instruction is reconstructed from the stored instruction word, so
round-tripping a trace preserves everything the LO-FAT engine needs.
"""

from __future__ import annotations

import hashlib
import io
import struct
from typing import BinaryIO, Callable, Iterable, Union

from repro.cpu.trace import (
    BranchKind,
    ControlFlowTrace,
    ExecutionTrace,
    TraceRecord,
)
from repro.isa.encoding import EncodingError, decode

#: File magic and current format version.
MAGIC = b"LFTR"
VERSION = 2
#: Versions this reader understands.
SUPPORTED_VERSIONS = (1, 2)

_HEADER = struct.Struct("<4sHI")
_V2_COUNTERS = struct.Struct("<BQQ")
_RECORD = struct.Struct("<IIIIIBB")

#: v2 flag bits.
_FLAG_REPLAYABLE = 0x01

#: Stable numeric codes for the branch kinds.
_KIND_TO_CODE = {
    BranchKind.NOT_CONTROL_FLOW: 0,
    BranchKind.CONDITIONAL: 1,
    BranchKind.DIRECT_JUMP: 2,
    BranchKind.DIRECT_CALL: 3,
    BranchKind.INDIRECT_JUMP: 4,
    BranchKind.INDIRECT_CALL: 5,
    BranchKind.RETURN: 6,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has an unsupported version."""


def _pack_record(record: TraceRecord) -> bytes:
    return _RECORD.pack(
        record.index,
        record.cycle,
        record.pc,
        record.word,
        record.next_pc,
        _KIND_TO_CODE[record.kind],
        1 if record.taken else 0,
    )


def dump_trace(
    trace: Union[ExecutionTrace, ControlFlowTrace],
    stream: BinaryIO,
    version: int = None,
) -> int:
    """Write ``trace`` to a binary ``stream``; returns the number of bytes.

    The version is negotiated from the trace type by default: a full
    :class:`ExecutionTrace` keeps the v1 layout (existing archives and
    tooling stay byte-identical), a :class:`ControlFlowTrace` needs v2.
    Passing ``version`` explicitly forces a format; requesting v1 for a
    control-flow-only capture raises :class:`TraceFormatError` because v1
    has no way to carry the straight-line run counters.
    """
    cf_only = isinstance(trace, ControlFlowTrace)
    if version is None:
        version = 2 if cf_only else 1
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError("unsupported trace version: %d" % version)
    if version == 1:
        if cf_only:
            raise TraceFormatError(
                "format v1 cannot represent a control-flow-only capture "
                "(straight-line run counters would be lost); write v2"
            )
        written = stream.write(_HEADER.pack(MAGIC, 1, len(trace)))
        for record in trace:
            written += stream.write(_pack_record(record))
        return written

    if not cf_only:
        trace = ControlFlowTrace.from_trace(trace)
    records = trace.control_flow_records
    flags = _FLAG_REPLAYABLE if trace.replayable else 0
    written = stream.write(_HEADER.pack(MAGIC, 2, len(records)))
    # trace.instructions, not len(trace): __len__ cannot return a u64 whose
    # top bit is set (OverflowError), but the field is a full u64 on disk --
    # a parsed blob must always re-serialise (fuzzer-found asymmetry).
    written += stream.write(
        _V2_COUNTERS.pack(flags, trace.instructions, trace.cycles)
    )
    for record in records:
        written += stream.write(_pack_record(record))
    return written


def dumps_trace(
    trace: Union[ExecutionTrace, ControlFlowTrace], version: int = None
) -> bytes:
    """Serialise ``trace`` to bytes."""
    buffer = io.BytesIO()
    dump_trace(trace, buffer, version=version)
    return buffer.getvalue()


def _read_records(stream: BinaryIO, count: int, control_flow_only: bool = False):
    for position in range(count):
        raw = stream.read(_RECORD.size)
        if len(raw) != _RECORD.size:
            raise TraceFormatError("truncated trace record")
        index, cycle, pc, word, next_pc, kind_code, taken = _RECORD.unpack(raw)
        if kind_code not in _CODE_TO_KIND:
            raise TraceFormatError("unknown branch-kind code: %d" % kind_code)
        if control_flow_only and kind_code == _KIND_TO_CODE[BranchKind.NOT_CONTROL_FLOW]:
            raise TraceFormatError(
                "record %d: non-control-flow record in a v2 (control-flow-only) trace"
                % position
            )
        if taken not in (0, 1):
            raise TraceFormatError(
                "record %d: invalid taken byte %d (must be 0 or 1)" % (position, taken)
            )
        try:
            instruction = decode(word, address=pc)
        except EncodingError as exc:
            raise TraceFormatError(
                "record %d: undecodable instruction word 0x%08x: %s"
                % (position, word, exc)
            ) from exc
        yield TraceRecord(
            index=index,
            cycle=cycle,
            pc=pc,
            word=word,
            instruction=instruction,
            next_pc=next_pc,
            kind=_CODE_TO_KIND[kind_code],
            taken=bool(taken),
        )


def load_trace(stream: BinaryIO) -> Union[ExecutionTrace, ControlFlowTrace]:
    """Read a trace from a binary ``stream`` (negotiates the format version).

    Returns an :class:`ExecutionTrace` for v1 files and a
    :class:`ControlFlowTrace` for v2 files.
    """
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, count = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TraceFormatError("bad magic: %r" % magic)
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError("unsupported trace version: %d" % version)

    if version == 1:
        trace = ExecutionTrace()
        for record in _read_records(stream, count):
            trace.append(record)
        return trace

    counters = stream.read(_V2_COUNTERS.size)
    if len(counters) != _V2_COUNTERS.size:
        raise TraceFormatError("truncated v2 trace counters")
    flags, instructions, cycles = _V2_COUNTERS.unpack(counters)
    if flags & ~_FLAG_REPLAYABLE:
        raise TraceFormatError("undefined v2 flag bits set: 0x%02x" % flags)
    return ControlFlowTrace(
        records=list(_read_records(stream, count, control_flow_only=True)),
        instructions=instructions,
        cycles=cycles,
        replayable=bool(flags & _FLAG_REPLAYABLE),
    )


def loads_trace(data: bytes) -> Union[ExecutionTrace, ControlFlowTrace]:
    """Deserialise a trace from bytes.

    Unlike the stream reader :func:`load_trace` (which stops at the end of
    the trace so a trace can be embedded in a larger stream), this rejects
    trailing bytes: a standalone blob that keeps going after the declared
    record count is malformed, not a trace plus luggage.
    """
    stream = io.BytesIO(data)
    trace = load_trace(stream)
    trailing = len(data) - stream.tell()
    if trailing:
        raise TraceFormatError("%d trailing byte(s) after the trace" % trailing)
    return trace


def trace_digest(data: bytes) -> str:
    """Content address of a serialised trace (SHA3-256 over the bytes).

    This is the key the content-addressed trace store and the measurement
    database's trace-keyed entries use: two captures that produced the same
    serialised trace share one digest, whatever signature they were captured
    under.
    """
    return hashlib.sha3_256(data).hexdigest()


def save_trace(
    trace: Union[ExecutionTrace, ControlFlowTrace], path: str, version: int = None
) -> int:
    """Write ``trace`` to ``path``; returns the number of bytes written."""
    with open(path, "wb") as handle:
        return dump_trace(trace, handle, version=version)


def open_trace(path: str) -> Union[ExecutionTrace, ControlFlowTrace]:
    """Load a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        return load_trace(handle)


def replay_trace(
    trace: Union[ExecutionTrace, Iterable[TraceRecord]],
    monitor: Callable[[TraceRecord], None],
) -> int:
    """Feed every record of a *full* ``trace`` to ``monitor``; returns the count.

    This is the per-record offline-attestation path: replaying a stored full
    trace through a fresh :class:`repro.lofat.engine.LoFatEngine` yields
    exactly the same measurement and metadata as live observation did.  A
    :class:`ControlFlowTrace` cannot be replayed per record (the monitor
    would miss the straight-line instructions its loop-exit checks need);
    replay those through a scheme's
    :meth:`repro.schemes.base.AttestationScheme.replay_measurement`, which
    drives the batched observation path instead.
    """
    count = 0
    for record in trace:
        monitor(record)
        count += 1
    return count
