"""Serialisation of execution traces (capture once, attest offline).

The LO-FAT hardware consumes the retired-instruction stream live, but for
development, debugging and regression archiving it is convenient to capture a
trace once and re-run the attestation engine over it offline -- exactly what
the authors did with their ModelSim dumps.  This module provides a compact,
versioned binary format for :class:`repro.cpu.trace.ExecutionTrace` plus a
helper that replays a stored trace through any monitor (e.g. a
:class:`repro.lofat.engine.LoFatEngine`).

Format (little-endian):

* header: magic ``LFTR``, format version (u16), record count (u32)
* per record: index (u32), cycle (u32), pc (u32), word (u32), next_pc (u32),
  kind (u8), taken (u8)

The decoded instruction is reconstructed from the stored instruction word, so
round-tripping a trace preserves everything the LO-FAT engine needs.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Callable, Iterable, Union

from repro.cpu.trace import BranchKind, ExecutionTrace, TraceRecord
from repro.isa.encoding import decode

#: File magic and current format version.
MAGIC = b"LFTR"
VERSION = 1

_HEADER = struct.Struct("<4sHI")
_RECORD = struct.Struct("<IIIIIBB")

#: Stable numeric codes for the branch kinds.
_KIND_TO_CODE = {
    BranchKind.NOT_CONTROL_FLOW: 0,
    BranchKind.CONDITIONAL: 1,
    BranchKind.DIRECT_JUMP: 2,
    BranchKind.DIRECT_CALL: 3,
    BranchKind.INDIRECT_JUMP: 4,
    BranchKind.INDIRECT_CALL: 5,
    BranchKind.RETURN: 6,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has an unsupported version."""


def dump_trace(trace: ExecutionTrace, stream: BinaryIO) -> int:
    """Write ``trace`` to a binary ``stream``; returns the number of bytes."""
    written = stream.write(_HEADER.pack(MAGIC, VERSION, len(trace)))
    for record in trace:
        written += stream.write(_RECORD.pack(
            record.index,
            record.cycle,
            record.pc,
            record.word,
            record.next_pc,
            _KIND_TO_CODE[record.kind],
            1 if record.taken else 0,
        ))
    return written


def dumps_trace(trace: ExecutionTrace) -> bytes:
    """Serialise ``trace`` to bytes."""
    buffer = io.BytesIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: BinaryIO) -> ExecutionTrace:
    """Read an :class:`ExecutionTrace` from a binary ``stream``."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, count = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TraceFormatError("bad magic: %r" % magic)
    if version != VERSION:
        raise TraceFormatError("unsupported trace version: %d" % version)

    trace = ExecutionTrace()
    for _ in range(count):
        raw = stream.read(_RECORD.size)
        if len(raw) != _RECORD.size:
            raise TraceFormatError("truncated trace record")
        index, cycle, pc, word, next_pc, kind_code, taken = _RECORD.unpack(raw)
        if kind_code not in _CODE_TO_KIND:
            raise TraceFormatError("unknown branch-kind code: %d" % kind_code)
        trace.append(TraceRecord(
            index=index,
            cycle=cycle,
            pc=pc,
            word=word,
            instruction=decode(word, address=pc),
            next_pc=next_pc,
            kind=_CODE_TO_KIND[kind_code],
            taken=bool(taken),
        ))
    return trace


def loads_trace(data: bytes) -> ExecutionTrace:
    """Deserialise a trace from bytes."""
    return load_trace(io.BytesIO(data))


def save_trace(trace: ExecutionTrace, path: str) -> int:
    """Write ``trace`` to ``path``; returns the number of bytes written."""
    with open(path, "wb") as handle:
        return dump_trace(trace, handle)


def open_trace(path: str) -> ExecutionTrace:
    """Load a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        return load_trace(handle)


def replay_trace(
    trace: Union[ExecutionTrace, Iterable[TraceRecord]],
    monitor: Callable[[TraceRecord], None],
) -> int:
    """Feed every record of ``trace`` to ``monitor``; returns the record count.

    This is the offline-attestation path: replaying a stored trace through a
    fresh :class:`repro.lofat.engine.LoFatEngine` yields exactly the same
    measurement and metadata as live observation did.
    """
    count = 0
    for record in trace:
        monitor(record)
        count += 1
    return count
