"""Machine-level fault types raised by the CPU model."""

from __future__ import annotations


class CpuError(Exception):
    """Base class for all CPU execution faults."""


class IllegalInstructionError(CpuError):
    """Raised when the core fetches a word that does not decode."""

    def __init__(self, address: int, word: int) -> None:
        super().__init__(
            "illegal instruction %#010x at pc=%#010x" % (word, address)
        )
        self.address = address
        self.word = word


class MemoryProtectionError(CpuError):
    """Raised on an access that violates region permissions (e.g. write to rx)."""

    def __init__(self, address: int, access: str) -> None:
        super().__init__("%s access violation at address %#010x" % (access, address))
        self.address = address
        self.access = access


class MisalignedAccessError(CpuError):
    """Raised on a misaligned fetch, load or store."""

    def __init__(self, address: int, width: int) -> None:
        super().__init__(
            "misaligned %d-byte access at address %#010x" % (width, address)
        )
        self.address = address
        self.width = width


class OutOfFuelError(CpuError):
    """Raised when execution exceeds the configured instruction/cycle budget."""

    def __init__(self, limit: int) -> None:
        super().__init__("execution exceeded the budget of %d retired instructions" % limit)
        self.limit = limit
