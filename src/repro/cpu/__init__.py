"""A Pulpino-like RV32IM embedded core model.

The CPU package provides the prover-side execution substrate that the paper's
RTL/ModelSim environment provided:

* :mod:`repro.cpu.memory` -- byte-addressable memory with read-execute /
  read-write region protection (the paper's ``rx`` code and ``rw`` data).
* :mod:`repro.cpu.core` -- a functional RV32IM interpreter with a
  cycle-cost model approximating Pulpino's 4-stage pipeline, producing a
  retired-instruction trace.
* :mod:`repro.cpu.trace` -- the per-retired-instruction records consumed by
  the LO-FAT branch filter.
* :mod:`repro.cpu.syscalls` -- a tiny ``ecall`` environment for program I/O.
* :mod:`repro.cpu.exceptions` -- machine-level fault types.
"""

from repro.cpu.exceptions import (
    CpuError,
    IllegalInstructionError,
    MemoryProtectionError,
    MisalignedAccessError,
    OutOfFuelError,
)
from repro.cpu.memory import Memory, MemoryRegion, Permissions
from repro.cpu.trace import BranchKind, ExecutionTrace, TraceRecord
from repro.cpu.syscalls import SyscallHandler, SyscallResult
from repro.cpu.core import Cpu, CpuConfig, ExecutionResult, run_program
from repro.cpu.tracefile import (
    dumps_trace,
    loads_trace,
    open_trace,
    replay_trace,
    save_trace,
)

__all__ = [
    "CpuError",
    "IllegalInstructionError",
    "MemoryProtectionError",
    "MisalignedAccessError",
    "OutOfFuelError",
    "Memory",
    "MemoryRegion",
    "Permissions",
    "BranchKind",
    "ExecutionTrace",
    "TraceRecord",
    "SyscallHandler",
    "SyscallResult",
    "Cpu",
    "CpuConfig",
    "ExecutionResult",
    "run_program",
    "dumps_trace",
    "loads_trace",
    "open_trace",
    "replay_trace",
    "save_trace",
]
