"""Retired-instruction trace records.

The LO-FAT branch filter is "tightly coupled to the processor" and observes,
for every clock cycle, the current program counter and the executed
instruction (paper §4/§5.1).  :class:`TraceRecord` is the Python equivalent of
those pipeline signals: one record per retired instruction, carrying the PC,
the raw instruction word, the decoded instruction, the next PC and the branch
outcome.  The records are produced by :class:`repro.cpu.core.Cpu` and consumed
by :class:`repro.lofat.branch_filter.BranchFilter`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Instruction


class BranchKind(enum.Enum):
    """Classification of a retired control-flow instruction."""

    NOT_CONTROL_FLOW = "none"
    CONDITIONAL = "conditional"
    DIRECT_JUMP = "direct_jump"
    DIRECT_CALL = "direct_call"
    INDIRECT_JUMP = "indirect_jump"
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"

    @property
    def is_control_flow(self) -> bool:
        return self is not BranchKind.NOT_CONTROL_FLOW

    @property
    def is_indirect(self) -> bool:
        return self in (
            BranchKind.INDIRECT_JUMP,
            BranchKind.INDIRECT_CALL,
            BranchKind.RETURN,
        )

    @property
    def is_linking(self) -> bool:
        """True if the transfer writes the link register (a subroutine call)."""
        return self in (BranchKind.DIRECT_CALL, BranchKind.INDIRECT_CALL)


def classify_branch(instruction: Instruction) -> BranchKind:
    """Classify ``instruction`` the way the branch filter does in hardware."""
    if instruction.is_conditional_branch:
        return BranchKind.CONDITIONAL
    if instruction.is_direct_jump:
        if instruction.writes_link_register:
            return BranchKind.DIRECT_CALL
        return BranchKind.DIRECT_JUMP
    if instruction.is_indirect_jump:
        if instruction.is_return:
            return BranchKind.RETURN
        if instruction.writes_link_register:
            return BranchKind.INDIRECT_CALL
        return BranchKind.INDIRECT_JUMP
    return BranchKind.NOT_CONTROL_FLOW


@dataclass
class TraceRecord:
    """One retired instruction as observed on the pipeline interface.

    Attributes:
        index: retirement order (0-based).
        cycle: cycle at which the instruction retired under the cost model.
        pc: address of the instruction (the branch *source*).
        word: raw 32-bit instruction word.
        instruction: decoded instruction.
        next_pc: address of the next retired instruction (the branch *dest*).
        kind: control-flow classification.
        taken: for conditional branches, whether the branch was taken; for
            unconditional transfers always True; for non-control-flow False.
    """

    index: int
    cycle: int
    pc: int
    word: int
    instruction: Instruction
    next_pc: int
    kind: BranchKind
    taken: bool

    @property
    def is_control_flow(self) -> bool:
        """True if this record should reach the branch filter's output."""
        return self.kind.is_control_flow

    @property
    def src_dest(self) -> tuple:
        """The (Src, Dest) address pair hashed by LO-FAT."""
        return (self.pc, self.next_pc)

    @property
    def is_backward(self) -> bool:
        """True for a taken transfer whose destination precedes its source."""
        return self.taken and self.next_pc <= self.pc


@dataclass
class ExecutionTrace:
    """A full retired-instruction trace plus summary statistics."""

    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def control_flow_records(self) -> List[TraceRecord]:
        """Only the records the branch filter lets through."""
        return [r for r in self.records if r.is_control_flow]

    @property
    def control_flow_events(self) -> int:
        """Number of retired control-flow instructions."""
        return sum(1 for r in self.records if r.is_control_flow)

    @property
    def taken_control_flow_events(self) -> int:
        """Number of control-flow instructions that actually redirected the PC."""
        return sum(1 for r in self.records if r.is_control_flow and r.taken)

    @property
    def executed_edges(self) -> List[tuple]:
        """The sequence of (Src, Dest) pairs of all control-flow instructions."""
        return [r.src_dest for r in self.records if r.is_control_flow]

    @property
    def cycles(self) -> int:
        """Total cycles consumed (cycle of the last retired instruction)."""
        if not self.records:
            return 0
        return self.records[-1].cycle

    def summary(self) -> dict:
        """A small dictionary of trace statistics used in reports."""
        kinds = {}
        for record in self.records:
            if record.is_control_flow:
                kinds[record.kind.value] = kinds.get(record.kind.value, 0) + 1
        return {
            "instructions": len(self.records),
            "cycles": self.cycles,
            "control_flow_events": self.control_flow_events,
            "taken_control_flow_events": self.taken_control_flow_events,
            "by_kind": kinds,
        }


class TraceNotRecordedError(RuntimeError):
    """Raised when per-record trace data is requested from a streaming trace."""


class ControlFlowTrace:
    """Control-flow records plus straight-line run counters (capture format).

    The compact representation behind the capture-once / verify-many
    pipeline: only the control-flow :class:`TraceRecord` objects are kept --
    exactly the stream the fast execution path delivers to batched monitors
    -- together with the summary counters of the straight-line instructions
    between them.  Replaying the records through a scheme session's
    ``observe_batch`` (plus one ``finish_run`` with the stored totals)
    produces the same measurement as live execution, while the stored size
    is O(control-flow events), not O(instructions).

    A :class:`ControlFlowTrace` doubles as a CPU monitor: attach
    :meth:`observe` via :meth:`repro.cpu.core.Cpu.attach_monitor` and the
    fast path feeds it through :meth:`observe_batch`/:meth:`finish_run`,
    while the legacy per-record loop goes through :meth:`observe`.  The
    statistics surface mirrors :class:`ExecutionTrace` (``cycles``,
    ``control_flow_events``, ``summary()``, ``len()``), so cost models work
    on it unchanged; per-instruction record access raises
    :class:`TraceNotRecordedError` like a streaming trace.
    """

    def __init__(
        self,
        records: Optional[List[TraceRecord]] = None,
        instructions: int = 0,
        cycles: int = 0,
        replayable: bool = True,
    ) -> None:
        self._cf_records: List[TraceRecord] = list(records or [])
        self._instructions = instructions
        self._cycles = cycles
        #: False when the capture observed a control-flow redirect without a
        #: record (a pre-hook rewrote the PC): the straight-line continuity
        #: batched replay relies on is broken, so replaying these records
        #: could diverge from the live measurement.
        self._replayable = replayable

    @classmethod
    def from_trace(cls, trace: "ExecutionTrace") -> "ControlFlowTrace":
        """Compact a full per-instruction trace into its control-flow form."""
        return cls(
            records=trace.control_flow_records,
            instructions=len(trace),
            cycles=trace.cycles,
        )

    # ------------------------------------------------------- capture (input)
    def observe(self, record: TraceRecord) -> None:
        """Per-record capture hook (legacy interpreter loop)."""
        self._instructions += 1
        if record.cycle > self._cycles:
            self._cycles = record.cycle
        if record.kind.is_control_flow:
            self._cf_records.append(record)

    def observe_batch(self, records) -> None:
        """Batched capture hook (fast path; control-flow records only)."""
        if records:
            self._cf_records.extend(records)
            last_cycle = records[-1].cycle
            if last_cycle > self._cycles:
                self._cycles = last_cycle

    def observe_block(self, records, chunk, pairs) -> None:
        """Per-block capture hook (compiled engine).

        A capture only needs the records themselves; the precomputed hash
        chunk is for measurement sessions, so delegate to the batched hook.
        """
        self.observe_batch(records)

    def finish_run(self, instructions: int, cycle: int) -> None:
        """End-of-run sync from the fast path (totals incl. straight-line tail)."""
        if instructions > self._instructions:
            self._instructions = instructions
        if cycle > self._cycles:
            self._cycles = cycle

    def sync_straight_line(self, next_pc: int, cycle: int) -> None:
        """A pre-hook redirected control flow: mark the capture non-replayable."""
        self._replayable = False

    # ---------------------------------------------------------- statistics
    @property
    def replayable(self) -> bool:
        """True when batched replay of the records reproduces the live run."""
        return self._replayable

    @property
    def control_flow_records(self) -> List[TraceRecord]:
        """The captured control-flow records, in retirement order."""
        return self._cf_records

    @property
    def control_flow_events(self) -> int:
        return len(self._cf_records)

    @property
    def taken_control_flow_events(self) -> int:
        return sum(1 for r in self._cf_records if r.taken)

    @property
    def executed_edges(self) -> List[tuple]:
        return [r.src_dest for r in self._cf_records]

    @property
    def cycles(self) -> int:
        return self._cycles

    @property
    def instructions(self) -> int:
        """Total retired instructions.

        Equals ``len(self)`` for any trace a CPU can produce, but unlike
        ``__len__`` it can carry a full u64 (a deserialised blob may declare
        a count Python's ``__len__`` protocol cannot return).
        """
        return self._instructions

    def __len__(self) -> int:
        return self._instructions

    def __iter__(self) -> Iterator[TraceRecord]:
        raise TraceNotRecordedError(
            "a control-flow trace keeps only control-flow records; iterate "
            "control_flow_records (offline replay must go through a "
            "session's observe_batch, not per-record observe)"
        )

    def __getitem__(self, index):
        raise TraceNotRecordedError(
            "per-instruction records were not kept in a control-flow trace"
        )

    @property
    def records(self) -> List[TraceRecord]:
        raise TraceNotRecordedError(
            "per-instruction records were not kept in a control-flow trace"
        )

    def summary(self) -> dict:
        kinds: Dict[str, int] = {}
        for record in self._cf_records:
            kinds[record.kind.value] = kinds.get(record.kind.value, 0) + 1
        return {
            "instructions": self._instructions,
            "cycles": self._cycles,
            "control_flow_events": len(self._cf_records),
            "taken_control_flow_events": self.taken_control_flow_events,
            "by_kind": kinds,
        }


class StreamingTrace:
    """Trace statistics without record accumulation.

    A drop-in replacement for :class:`ExecutionTrace` on the statistics side
    (``cycles``, ``control_flow_events``, ``summary()``, ``len()``) that keeps
    only running counters: each :class:`TraceRecord` is observed, counted and
    dropped.  This is what the attestation hot path uses -- LO-FAT itself
    consumes the instruction stream as it retires, so neither the verifier's
    golden replay nor the campaign workers need the O(instructions) record
    list in memory.  Accessing per-record data raises
    :class:`TraceNotRecordedError`.
    """

    def __init__(self) -> None:
        self._instructions = 0
        self._cycles = 0
        self._control_flow_events = 0
        self._taken_control_flow_events = 0
        self._by_kind: Dict[str, int] = {}

    def append(self, record: TraceRecord) -> None:
        self._instructions += 1
        self._cycles = record.cycle
        if record.is_control_flow:
            self._control_flow_events += 1
            kind = record.kind.value
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
            if record.taken:
                self._taken_control_flow_events += 1

    def absorb_counts(
        self,
        instructions: int,
        cycles: int,
        control_flow_events: int,
        taken_control_flow_events: int,
        by_kind: Dict[str, int],
    ) -> None:
        """Fold the summary counters of a fast-path run into the trace.

        The fused inner loop (:meth:`repro.cpu.core.Cpu.run_fast`) counts
        retirements locally instead of materializing a :class:`TraceRecord`
        per instruction; this absorbs those counters in one call so the
        streaming trace reports the same summary as per-record appends.
        ``cycles`` is the absolute cycle of the last retired instruction.
        """
        self._instructions += instructions
        if cycles > self._cycles:
            self._cycles = cycles
        self._control_flow_events += control_flow_events
        self._taken_control_flow_events += taken_control_flow_events
        for kind, count in by_kind.items():
            self._by_kind[kind] = self._by_kind.get(kind, 0) + count

    def __len__(self) -> int:
        return self._instructions

    def __iter__(self) -> Iterator[TraceRecord]:
        raise TraceNotRecordedError(
            "trace records were not kept (CpuConfig.collect_trace=False); "
            "only summary statistics are available on a streaming trace"
        )

    def __getitem__(self, index):
        raise TraceNotRecordedError(
            "trace records were not kept (CpuConfig.collect_trace=False)"
        )

    @property
    def records(self) -> List[TraceRecord]:
        raise TraceNotRecordedError(
            "trace records were not kept (CpuConfig.collect_trace=False)"
        )

    @property
    def control_flow_records(self) -> List[TraceRecord]:
        raise TraceNotRecordedError(
            "trace records were not kept (CpuConfig.collect_trace=False)"
        )

    @property
    def executed_edges(self) -> List[tuple]:
        raise TraceNotRecordedError(
            "trace records were not kept (CpuConfig.collect_trace=False)"
        )

    @property
    def control_flow_events(self) -> int:
        return self._control_flow_events

    @property
    def taken_control_flow_events(self) -> int:
        return self._taken_control_flow_events

    @property
    def cycles(self) -> int:
        return self._cycles

    def summary(self) -> dict:
        return {
            "instructions": self._instructions,
            "cycles": self._cycles,
            "control_flow_events": self._control_flow_events,
            "taken_control_flow_events": self._taken_control_flow_events,
            "by_kind": dict(self._by_kind),
        }
