"""Superblock-to-Python compilation: the backend of ``Cpu.run_compiled``.

The fused interpreter (:meth:`repro.cpu.core.Cpu.run_fast`) still pays one
round of Python dispatch per retired instruction.  This module removes that
cost for straight-line code: every basic block of a program -- extended into
superblock chains across fall-throughs and forward ``jal x0`` jumps
(:mod:`repro.cfg.superblocks`) -- is translated once into a single generated
Python function, ``compile()``d and cached per program digest.  Executing a
block is then one function call operating directly on the register list,
with immediates, masks and cycle costs baked in as constants; the
inter-block trampoline (:meth:`repro.cpu.core.Cpu.run_compiled`) only runs
once per *block*, not once per instruction.

The compiled-function contract (generated signature
``fn(cpu, x, rf, load, store, buf, mv2, mv4)`` with ``x`` the raw register
list, ``load``/``store`` the bound memory accessors and ``buf``/``mv2``/
``mv4`` the data region's live bytearray plus its halfword/word memoryview
casts -- the baked fast path for in-region aligned accesses)::

    next_pc, retired, cycle_delta, taken, cf_seen = fn(...)

* ``retired``/``cycle_delta`` are the instructions retired and cycles
  consumed by this execution of the block (cycle costs are static per
  instruction, so both are compile-time constants per exit path);
* ``taken`` is the terminator's branch outcome (False for fall-through and
  early ``ecall``/``ebreak`` halts);
* ``cf_seen`` counts how many of the block's control-flow templates fired,
  in order: ``cf_seen == cf_total`` means the terminator was reached, any
  smaller value means the block halted early at an ``ecall``/``ebreak``.

Because each block knows its chain-internal jumps at compile time, it also
carries their (Src, Dest) pairs as one precomputed, pre-masked byte chunk
(:attr:`CompiledBlock.static_chunk`): the trampoline hands the chunk to
monitors implementing ``observe_block``, which absorb it with a single
sponge update instead of rebuilding the bytes per edge.  Trace records are
still materialized per edge with exact indices/cycles, so captured traces,
TraceStore signatures and replayed reports stay byte-identical to the other
engines.

The compiler *declines* a program (forcing the ``run_fast`` fallback) when
any non-return indirect jump is unresolved under the interval analysis
(:mod:`repro.dataflow`): such a jalr may land at an address the static
block map cannot anticipate mid-stride, and the equivalence-pinned
interpreter is the safe engine for it.  Resolved indirects and canonical
returns are fine -- their dynamic targets are block leaders, which the
trampoline looks up (or lazily compiles) at run time.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cfg.basic_blocks import split_basic_blocks
from repro.cfg.superblocks import form_superblocks
from repro.cpu.core import _div_value, _rem_value
from repro.cpu.trace import BranchKind, classify_branch
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction

_M = 0xFFFFFFFF

#: ``memoryview.cast`` reads and writes in *native* byte order, so the
#: baked data-region fast path (direct ``mv2``/``mv4`` element access) is
#: only correct -- and only emitted -- on little-endian hosts; elsewhere
#: every memory access goes through the checked accessors.
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Configuration baked into generated code, in cache-key order:
#: (taken_branch_penalty, load_latency, mul_latency, div_latency,
#: data_region_size).  The data-region size participates because generated
#: load/store guards compare offsets against it as literal constants.
CostKey = Tuple[int, int, int, int, int]


def _fast_data_enabled(data_size: int) -> bool:
    """Whether generated code may access the data-region buffer directly."""
    return _LITTLE_ENDIAN and data_size >= 4 and data_size % 4 == 0

#: One chain-internal control-flow template: (retire_offset, cycle_offset,
#: pc, word, instruction, next_pc, kind).  All fields are static; at run
#: time the trampoline adds the block-entry retirement index and cycle.
InternalTemplate = Tuple[int, int, int, int, Instruction, int, BranchKind]

#: The terminator's static record fields: (pc, word, instruction, kind).
TerminatorTemplate = Tuple[int, int, Instruction, BranchKind]


class CompiledBlock:
    """One superblock compiled to a step function plus its CF templates."""

    __slots__ = (
        "head", "fn", "size", "templates", "n_internal", "term_cf",
        "term_template", "cf_total", "static_chunk", "static_pairs",
        "kind_items", "packed",
    )

    def __init__(
        self,
        head: int,
        fn: Callable,
        size: int,
        templates: Tuple[InternalTemplate, ...],
        term_cf: bool,
        term_template: Optional[TerminatorTemplate],
    ) -> None:
        self.head = head
        self.fn = fn
        #: Maximum instructions one execution of this block can retire
        #: (the trampoline's conservative fuel check).
        self.size = size
        self.templates = templates
        self.n_internal = len(templates)
        self.term_cf = term_cf
        self.term_template = term_template
        self.cf_total = self.n_internal + (1 if term_cf else 0)
        #: Pre-masked (src, dest) pairs of the internal jumps and their
        #: concatenated little-endian bytes -- the per-block absorb chunk.
        pairs = tuple(
            (template[2] & _M, template[5] & _M) for template in templates
        )
        self.static_pairs = pairs
        self.static_chunk = b"".join(
            src.to_bytes(4, "little") + dest.to_bytes(4, "little")
            for src, dest in pairs
        )
        #: Streaming-trace kind counters for a full (terminator-reached)
        #: execution; internal jumps are always plain direct jumps.
        kinds: Dict[str, int] = {}
        if self.n_internal:
            kinds[BranchKind.DIRECT_JUMP.value] = self.n_internal
        if term_cf and term_template is not None:
            kind_name = term_template[3].value
            kinds[kind_name] = kinds.get(kind_name, 0) + 1
        self.kind_items = tuple(kinds.items())
        #: Hot-path view for the trampoline: every per-step field in one
        #: tuple, fetched with a single attribute access per block step.
        self.packed = (
            fn, size, self.templates, self.n_internal, self.term_cf,
            self.term_template, self.cf_total, self.static_chunk,
            self.static_pairs, self.kind_items,
        )


class CompiledProgram:
    """Every superblock of one program compiled under one cost model."""

    def __init__(self, program: Program, costs: CostKey) -> None:
        self.program = program
        self.costs = costs
        #: Data-region bounds the generated guards were baked against, and
        #: whether the generated code expects the live buffer views at all.
        #: The trampoline validates the CPU's actual data region against
        #: these before running (they always match by construction: the
        #: digest covers ``data_base``, the cost key ``data_region_size``).
        self.data_base = program.data_base
        self.data_size = costs[4]
        self.uses_data_buffer = _fast_data_enabled(costs[4])
        #: head pc -> CompiledBlock; populated eagerly for every block
        #: leader, lazily for stray entry points (indirect targets that are
        #: not leaders).
        self.blocks: Dict[int, CompiledBlock] = {}
        self._instruction_by_address: Dict[int, Instruction] = {
            instr.address: instr for instr in program.instructions
        }

    def compile_block_at(self, pc: int) -> Optional[CompiledBlock]:
        """Lazily compile a single block starting at a stray ``pc``.

        A resolved indirect transfer normally lands on a block leader, but
        nothing forces it to: scan the straight line from ``pc`` to the
        first control-flow instruction and compile that suffix as a
        one-member chain.  Returns None when ``pc`` is not an instruction
        address or the scan runs off the program -- the trampoline then
        delegates to ``run_fast``, which raises the exact same fetch fault
        the legacy loop would.
        """
        by_address = self._instruction_by_address
        if pc not in by_address:
            return None
        member: List[Instruction] = []
        address = pc
        while True:
            instruction = by_address.get(address)
            if instruction is None:
                return None
            member.append(instruction)
            if instruction.is_control_flow:
                break
            address += 4
        entry = _compile_chain(self.program, pc, [member], self.costs)
        # Idempotent insert (dict assignment is atomic under the GIL); two
        # threads compiling the same stray pc produce equivalent entries.
        self.blocks[pc] = entry
        return entry


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------
# One statement (or none) per straight-line instruction, operating directly
# on the register list ``x``.  Every emitted expression must preserve the
# RegisterFile invariant -- stored values are unsigned 32-bit ints -- and the
# exact semantics of the interpreter executors in repro.cpu.core; the
# three-way differential in tests/test_fastpath_equivalence.py pins this.


def _reg(number: int) -> str:
    return "0" if number == 0 else "x[%d]" % number


def _signed(number: int) -> str:
    """Signed 32-bit view of a register, inlined (no helper call)."""
    if number == 0:
        return "0"
    r = "x[%d]" % number
    return "(%s - 0x100000000 if %s > 0x7FFFFFFF else %s)" % (r, r, r)


def _address_expr(rs1: int, imm: int) -> str:
    if rs1 == 0:
        return "%d" % (imm & _M)
    if imm == 0:
        return "x[%d]" % rs1
    return "(x[%d] + %d) & 0xFFFFFFFF" % (rs1, imm)


def _branch_condition(instr: Instruction) -> str:
    a, b = _reg(instr.rs1), _reg(instr.rs2)
    sa, sb = _signed(instr.rs1), _signed(instr.rs2)
    return {
        "beq": "%s == %s" % (a, b),
        "bne": "%s != %s" % (a, b),
        "blt": "%s < %s" % (sa, sb),
        "bge": "%s >= %s" % (sa, sb),
        "bltu": "%s < %s" % (a, b),
        "bgeu": "%s >= %s" % (a, b),
    }[instr.mnemonic]


#: Loads: mnemonic -> (size, signed).
_LOADS = {
    "lb": (1, True), "lbu": (1, False),
    "lh": (2, True), "lhu": (2, False),
    "lw": (4, False),
}
_STORES = {"sb": 1, "sh": 2, "sw": 4}


def _alu_value_expr(instr: Instruction) -> Optional[str]:
    """The unsigned 32-bit result expression for an ALU instruction."""
    m = instr.mnemonic
    rs1, rs2, imm = instr.rs1, instr.rs2, instr.imm
    a, b = _reg(rs1), _reg(rs2)
    sa, sb = _signed(rs1), _signed(rs2)
    if m == "lui":
        return "%d" % ((imm << 12) & _M)
    if m == "auipc":
        return "%d" % (((instr.address or 0) + (imm << 12)) & _M)
    if m == "addi":
        if rs1 == 0:
            return "%d" % (imm & _M)
        if imm == 0:
            return a
        return "(%s + %d) & 0xFFFFFFFF" % (a, imm)
    if m == "slti":
        return "1 if %s < %d else 0" % (sa, imm)
    if m == "sltiu":
        return "1 if %s < %d else 0" % (a, imm & _M)
    if m == "xori":
        return "%s ^ %d" % (a, imm & _M)
    if m == "ori":
        return "%s | %d" % (a, imm & _M)
    if m == "andi":
        return "%s & %d" % (a, imm & _M)
    if m == "slli":
        return "(%s << %d) & 0xFFFFFFFF" % (a, imm & 0x1F)
    if m == "srli":
        return "%s >> %d" % (a, imm & 0x1F)
    if m == "srai":
        return "(%s >> %d) & 0xFFFFFFFF" % (sa, imm & 0x1F)
    if m == "add":
        return "(%s + %s) & 0xFFFFFFFF" % (a, b)
    if m == "sub":
        return "(%s - %s) & 0xFFFFFFFF" % (a, b)
    if m == "sll":
        return "(%s << (%s & 0x1F)) & 0xFFFFFFFF" % (a, b)
    if m == "slt":
        return "1 if %s < %s else 0" % (sa, sb)
    if m == "sltu":
        return "1 if %s < %s else 0" % (a, b)
    if m == "xor":
        return "%s ^ %s" % (a, b)
    if m == "srl":
        return "%s >> (%s & 0x1F)" % (a, b)
    if m == "sra":
        return "(%s >> (%s & 0x1F)) & 0xFFFFFFFF" % (sa, b)
    if m == "or":
        return "%s | %s" % (a, b)
    if m == "and":
        return "%s & %s" % (a, b)
    if m == "mul":
        return "(%s * %s) & 0xFFFFFFFF" % (sa, sb)
    if m == "mulh":
        return "((%s * %s) >> 32) & 0xFFFFFFFF" % (sa, sb)
    if m == "mulhu":
        return "(%s * %s) >> 32" % (a, b)
    if m == "mulhsu":
        return "((%s * %s) >> 32) & 0xFFFFFFFF" % (sa, b)
    if m == "div":
        return "_div_value(%s, %s) & 0xFFFFFFFF" % (sa, sb)
    if m == "divu":
        return "0xFFFFFFFF if %s == 0 else %s // %s" % (b, a, b)
    if m == "rem":
        return "_rem_value(%s, %s) & 0xFFFFFFFF" % (sa, sb)
    if m == "remu":
        return "%s if %s == 0 else %s %% %s" % (a, b, a, b)
    return None


def _rebase_line(addr: str, data_base: int) -> str:
    """Assign the data-region offset of ``addr`` to the temp ``_o``."""
    if data_base:
        return "    _o = (%s) - %d" % (addr, data_base)
    return "    _o = %s" % addr


def _emit_straight(
    instr: Instruction,
    load_latency: int,
    mul_latency: int,
    div_latency: int,
    data_base: int,
    data_size: int,
) -> Tuple[List[str], int]:
    """Emit one straight-line instruction; return (lines, extra_cycles).

    With a non-zero ``data_size``, loads and stores get an inlined
    data-region fast path: the effective address is rebased against the
    compile-time-constant data region and, when in range and naturally
    aligned, served directly from the region's buffer views
    (``buf``/``mv2``/``mv4``) -- the common case for stack and heap
    traffic.  Out-of-range, misaligned or code-region accesses fall back
    to the checked ``load``/``store`` accessors, which raise exactly the
    faults the interpreter would.
    """
    m = instr.mnemonic
    if m in _LOADS:
        size, signed = _LOADS[m]
        addr = _address_expr(instr.rs1, instr.imm)
        rd = instr.rd
        if rd == 0:
            # The load still executes for its fault and latency semantics;
            # only the register write is discarded.
            line = "    load(%s, %d%s)" % (addr, size, ", True" if signed else "")
            return [line], load_latency
        if not data_size:
            if signed:
                line = "    x[%d] = load(%s, %d, True) & 0xFFFFFFFF" % (
                    rd, addr, size)
            else:
                line = "    x[%d] = load(%s, %d)" % (rd, addr, size)
            return [line], load_latency
        lines = [_rebase_line(addr, data_base)]
        if size == 4:
            lines.append(
                "    x[%d] = mv4[_o >> 2] if 0 <= _o <= %d and not _o & 3"
                " else load(%s, 4)" % (rd, data_size - 4, addr))
        elif size == 2 and not signed:
            lines.append(
                "    x[%d] = mv2[_o >> 1] if 0 <= _o <= %d and not _o & 1"
                " else load(%s, 2)" % (rd, data_size - 2, addr))
        elif size == 2:
            lines.append("    if 0 <= _o <= %d and not _o & 1:" % (data_size - 2))
            lines.append("        _v = mv2[_o >> 1]")
            lines.append(
                "        x[%d] = _v | 0xFFFF0000 if _v & 0x8000 else _v" % rd)
            lines.append("    else:")
            lines.append(
                "        x[%d] = load(%s, 2, True) & 0xFFFFFFFF" % (rd, addr))
        elif signed:  # lb
            lines.append("    if 0 <= _o < %d:" % data_size)
            lines.append("        _v = buf[_o]")
            lines.append(
                "        x[%d] = _v | 0xFFFFFF00 if _v & 0x80 else _v" % rd)
            lines.append("    else:")
            lines.append(
                "        x[%d] = load(%s, 1, True) & 0xFFFFFFFF" % (rd, addr))
        else:  # lbu
            lines.append(
                "    x[%d] = buf[_o] if 0 <= _o < %d else load(%s, 1)" % (
                    rd, data_size, addr))
        return lines, load_latency
    if m in _STORES:
        size = _STORES[m]
        addr = _address_expr(instr.rs1, instr.imm)
        value = _reg(instr.rs2)
        if not data_size:
            return ["    store(%s, %s, %d)" % (addr, value, size)], 0
        lines = [_rebase_line(addr, data_base)]
        if size == 4:
            # Register values are unsigned 32-bit by invariant: storable
            # into the 'I'-cast view unmasked.
            lines.append("    if 0 <= _o <= %d and not _o & 3:" % (data_size - 4))
            lines.append("        mv4[_o >> 2] = %s" % value)
        elif size == 2:
            masked = "0" if instr.rs2 == 0 else "%s & 0xFFFF" % value
            lines.append("    if 0 <= _o <= %d and not _o & 1:" % (data_size - 2))
            lines.append("        mv2[_o >> 1] = %s" % masked)
        else:
            masked = "0" if instr.rs2 == 0 else "%s & 0xFF" % value
            lines.append("    if 0 <= _o < %d:" % data_size)
            lines.append("        buf[_o] = %s" % masked)
        lines.append("    else:")
        lines.append("        store(%s, %s, %d)" % (addr, value, size))
        return lines, 0
    if m == "fence":
        return [], 0
    value = _alu_value_expr(instr)
    if value is None:  # pragma: no cover - decoder only emits known ops
        raise ValueError("unsupported mnemonic in block compiler: %r" % m)
    extra = 0
    if instr.spec.is_mul_div:
        extra = div_latency if m in ("div", "divu", "rem", "remu") else mul_latency
    if instr.rd == 0:
        # x0 is hard-wired to zero and ALU expressions cannot fault: the
        # whole instruction reduces to its cycle cost.
        return [], extra
    return ["    x[%d] = %s" % (instr.rd, value)], extra


def _word_at(program: Program, address: int) -> int:
    offset = address - program.code_base
    return int.from_bytes(program.code[offset:offset + 4], "little")


def _compile_chain(
    program: Program,
    head: int,
    members: Sequence[Sequence[Instruction]],
    costs: CostKey,
) -> CompiledBlock:
    """Generate, compile and wrap the step function for one chain."""
    taken_penalty, load_latency, mul_latency, div_latency, data_size = costs
    if not _fast_data_enabled(data_size):
        data_size = 0
    data_base = program.data_base
    name = "_sb_%x" % head
    lines: List[str] = []
    templates: List[InternalTemplate] = []
    cycle = 0
    ridx = 0
    dead = False
    terminated = False
    term_cf = False
    term_template: Optional[TerminatorTemplate] = None
    last_address = head

    n_members = len(members)
    for member_index, member in enumerate(members):
        if dead:
            break
        final_member = member_index == n_members - 1
        n_instrs = len(member)
        for instr_index, instr in enumerate(member):
            last_address = instr.address or 0
            if instr.is_control_flow:
                pcv = instr.address or 0
                word = _word_at(program, pcv)
                if not (final_member and instr_index == n_instrs - 1):
                    # Chain-internal transfer: by construction a forward
                    # jal x0 -- fully static, no code, just cycle cost and
                    # a trace-record template.
                    cycle += 1 + taken_penalty
                    ridx += 1
                    templates.append((
                        ridx - 1, cycle, pcv, word, instr,
                        pcv + instr.imm, BranchKind.DIRECT_JUMP,
                    ))
                    continue
                # The chain terminator.
                kind = classify_branch(instr)
                cf_n = len(templates) + 1
                if instr.is_conditional_branch:
                    target = (pcv + instr.imm) & _M
                    lines.append("    if %s:" % _branch_condition(instr))
                    lines.append("        return %d, %d, %d, True, %d" % (
                        target, ridx + 1, cycle + 1 + taken_penalty, cf_n))
                    lines.append("    return %d, %d, %d, False, %d" % (
                        pcv + 4, ridx + 1, cycle + 1, cf_n))
                elif instr.is_direct_jump:
                    target = (pcv + instr.imm) & _M
                    if instr.rd:
                        lines.append("    x[%d] = %d" % (instr.rd, (pcv + 4) & _M))
                    lines.append("    return %d, %d, %d, True, %d" % (
                        target, ridx + 1, cycle + 1 + taken_penalty, cf_n))
                else:  # jalr: target computed before the link write
                    if instr.rs1:
                        lines.append("    _t = (x[%d] + %d) & 0xFFFFFFFE" % (
                            instr.rs1, instr.imm))
                    else:
                        lines.append("    _t = %d" % (instr.imm & _M & ~1))
                    if instr.rd:
                        lines.append("    x[%d] = %d" % (instr.rd, (pcv + 4) & _M))
                    lines.append("    return _t, %d, %d, True, %d" % (
                        ridx + 1, cycle + 1 + taken_penalty, cf_n))
                ridx += 1
                term_cf = True
                term_template = (pcv, word, instr, kind)
                terminated = True
                dead = True
                continue
            if instr.mnemonic == "ecall":
                cycle += 1
                ridx += 1
                lines.append("    if cpu.syscalls.handle(rf, cpu.memory).exited:")
                lines.append("        cpu.halted = True")
                lines.append("        return %d, %d, %d, False, %d" % (
                    (instr.address or 0) + 4, ridx, cycle, len(templates)))
                continue
            if instr.mnemonic == "ebreak":
                cycle += 1
                ridx += 1
                lines.append("    cpu.halted = True")
                lines.append("    return %d, %d, %d, False, %d" % (
                    (instr.address or 0) + 4, ridx, cycle, len(templates)))
                # Everything after an unconditional ebreak is unreachable
                # from this chain entry.
                terminated = True
                dead = True
                continue
            emitted, extra = _emit_straight(
                instr, load_latency, mul_latency, div_latency,
                data_base, data_size)
            lines.extend(emitted)
            cycle += 1 + extra
            ridx += 1

    if not terminated:
        # The final member ends in a non-control-flow instruction: static
        # fall-through out of the chain (the next leader starts a new one).
        lines.append("    return %d, %d, %d, False, %d" % (
            last_address + 4, ridx, cycle, len(templates)))

    header = "def %s(cpu, x, rf, load, store, buf, mv2, mv4):" % name
    source = "\n".join([header] + lines)
    filename = "<repro-compiled:%s:%#x>" % (program.digest[:12], head)
    namespace: Dict[str, object] = {
        "_div_value": _div_value,
        "_rem_value": _rem_value,
    }
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return CompiledBlock(
        head=head,
        fn=namespace[name],  # type: ignore[arg-type]
        size=ridx,
        templates=tuple(templates),
        term_cf=term_cf,
        term_template=term_template,
    )


# ---------------------------------------------------------------------------
# Plan construction and the process-wide compiled-program cache
# ---------------------------------------------------------------------------


def _build_plan(program: Program, costs: CostKey) -> Optional[CompiledProgram]:
    """Compile every superblock of ``program``, or decline (None).

    The decline check consults the interval analysis once per digest: any
    non-return indirect jump whose target set stayed unresolved makes the
    whole program ineligible -- its jalr may stride into the middle of a
    block the static map cannot anticipate.
    """
    from repro.dataflow.program import analyze_program

    analysis = analyze_program(program)
    indirect_targets = analysis.intervals.indirect_targets
    for instr in program.instructions:
        if instr.is_indirect_jump and not instr.is_return:
            resolution = indirect_targets.get(instr.address or 0)
            if resolution is None or not resolution[1]:
                return None

    plan = CompiledProgram(program, costs)
    for superblock in form_superblocks(split_basic_blocks(program)):
        plan.blocks[superblock.head] = _compile_chain(
            program,
            superblock.head,
            [block.instructions for block in superblock.blocks],
            costs,
        )
    return plan


class CompiledProgramCache:
    """Process-wide compiled-program store with single-flight compilation.

    Keyed by (program digest, cost key): generated code bakes the cycle
    costs in as constants, so two cost models never share a plan.  The
    eviction discipline matches :class:`repro.cpu.core.DecodedInstructionCache`
    (bounded size, clear-on-full under the lock); on top of it, concurrent
    requests for the same key are single-flighted -- one thread compiles
    while the others wait on an event and then read the shared plan, so a
    campaign fanning N workers over one digest compiles once, not N times.
    Declined programs are cached as None so the interval analysis is not
    re-consulted per run.
    """

    def __init__(self, max_programs: int = 64) -> None:
        self.max_programs = max_programs
        self._plans: Dict[Tuple[str, CostKey], Optional[CompiledProgram]] = {}
        self._inflight: Dict[Tuple[str, CostKey], threading.Event] = {}
        self._lock = threading.Lock()
        #: Number of plan builds performed (tests assert single-flight).
        self.compiles = 0

    @staticmethod
    def cost_key(config) -> CostKey:
        return (
            config.taken_branch_penalty,
            config.load_latency,
            config.mul_latency,
            config.div_latency,
            config.data_region_size,
        )

    def plan_for(self, program: Program, config) -> Optional[CompiledProgram]:
        """The compiled plan for ``program`` under ``config`` (or None)."""
        key = (program.digest, self.cost_key(config))
        plans = self._plans
        if key in plans:
            return plans[key]
        with self._lock:
            if key in plans:
                return plans[key]
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                builder = True
            else:
                builder = False
        if not builder:
            event.wait()
            # A concurrent clear-on-full can evict the fresh plan before we
            # read it; treat that as a (rare, harmless) decline for this run.
            return self._plans.get(key)
        try:
            plan = _build_plan(program, key[1])
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
            raise
        with self._lock:
            if len(plans) >= self.max_programs:
                plans.clear()
            plans[key] = plan
            self.compiles += 1
            self._inflight.pop(key, None)
        event.set()
        return plan

    @property
    def cached_programs(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()


#: The shared compiled-program cache (one per process, like DECODE_CACHE;
#: forked campaign workers each build their own copy-on-write instance).
COMPILE_CACHE = CompiledProgramCache()


def clear_compile_cache() -> None:
    """Drop all compiled plans (tests and benchmarks)."""
    COMPILE_CACHE.clear()
