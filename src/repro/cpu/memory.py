"""Byte-addressable memory with region permissions.

The LO-FAT threat model assumes code memory is read-execute (``rx``) and data
memory is read-write (``rw``): the adversary may corrupt arbitrary writable
memory but cannot modify program code at run time.  The memory model enforces
exactly that separation; the attack injectors in :mod:`repro.attacks` corrupt
memory through the same interface the program uses, so they are subject to the
same W^X restriction the paper assumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.exceptions import MemoryProtectionError, MisalignedAccessError


class Permissions(enum.Flag):
    """Access permissions of a memory region."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()

    @classmethod
    def rx(cls) -> "Permissions":
        return cls.READ | cls.EXECUTE

    @classmethod
    def rw(cls) -> "Permissions":
        return cls.READ | cls.WRITE


@dataclass
class MemoryRegion:
    """A contiguous address range with fixed permissions."""

    name: str
    base: int
    size: int
    permissions: Permissions

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` lies inside the region."""
        return self.base <= address < self.end


class Memory:
    """Byte-addressable memory with permission-checked accesses.

    Accesses must fall entirely within a single registered region.  Natural
    alignment is enforced for halfword and word accesses, matching the
    behaviour of the simple embedded cores the paper targets.

    Each region is backed by one contiguous :class:`bytearray` -- the hot
    load/store path is a bounds check plus a buffer slice, and the compiled
    execution engine (:mod:`repro.cpu.compile`) accesses region buffers
    directly through :meth:`region_buffer`.  Bytes written outside any
    region (possible only with ``enforce_protection=False`` or unchecked
    raw access) live in a sparse overflow dictionary.
    """

    def __init__(self, enforce_protection: bool = True) -> None:
        self._regions: List[MemoryRegion] = []
        #: Per-region fast-path descriptors, parallel to ``_regions``:
        #: (base, end, buffer, readable, writable, executable).
        self._fast: List[tuple] = []
        self._overflow: Dict[int, int] = {}
        self.enforce_protection = enforce_protection

    # ------------------------------------------------------------- regions
    def add_region(self, region: MemoryRegion) -> None:
        """Register a region.  Overlapping regions are rejected."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    "region %r overlaps existing region %r" % (region.name, existing.name)
                )
        self._regions.append(region)
        permissions = region.permissions
        self._fast.append((
            region.base,
            region.base + region.size,
            bytearray(region.size),
            Permissions.READ in permissions,
            Permissions.WRITE in permissions,
            Permissions.EXECUTE in permissions,
        ))

    def region_for(self, address: int) -> Optional[MemoryRegion]:
        """Return the region containing ``address`` or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def region_buffer(self, name: str) -> Optional[tuple]:
        """The ``(base, size, bytearray)`` backing the named region.

        The buffer is the live backing store, not a copy: the compiled
        execution engine reads and writes it directly (with its own bounds
        and alignment guards), aliasing every access made through
        :meth:`load`/:meth:`store`.
        """
        for index, region in enumerate(self._regions):
            if region.name == name:
                entry = self._fast[index]
                return (entry[0], region.size, entry[2])
        return None

    @property
    def regions(self) -> List[MemoryRegion]:
        """All registered regions (copy)."""
        return list(self._regions)

    def _check_alignment(self, address: int, size: int) -> None:
        if size > 1 and address % size != 0:
            raise MisalignedAccessError(address, size)

    # ---------------------------------------------------------- raw bytes
    def _peek(self, address: int) -> int:
        """One byte, no checks (region byte or overflow byte or zero)."""
        for base, end, buffer, _r, _w, _x in self._fast:
            if base <= address < end:
                return buffer[address - base]
        return self._overflow.get(address, 0)

    def _poke(self, address: int, value: int) -> None:
        """Write one byte, no checks."""
        for base, end, buffer, _r, _w, _x in self._fast:
            if base <= address < end:
                buffer[address - base] = value
                return
        self._overflow[address] = value

    def load_bytes(self, address: int, size: int, check: bool = True) -> bytes:
        """Read ``size`` raw bytes (optionally skipping permission checks)."""
        end_address = address + size
        for base, end, buffer, readable, _w, _x in self._fast:
            if base <= address and end_address <= end:
                if check and self.enforce_protection and not readable:
                    raise MemoryProtectionError(address, "read")
                offset = address - base
                return bytes(buffer[offset:offset + size])
        if check and self.enforce_protection:
            raise MemoryProtectionError(address, "read")
        peek = self._peek
        return bytes(peek(address + i) for i in range(size))

    def store_bytes(self, address: int, data: bytes, check: bool = True) -> None:
        """Write raw bytes (optionally skipping permission checks)."""
        end_address = address + len(data)
        for base, end, buffer, _r, writable, _x in self._fast:
            if base <= address and end_address <= end:
                if check and self.enforce_protection and not writable:
                    raise MemoryProtectionError(address, "write")
                offset = address - base
                buffer[offset:offset + len(data)] = data
                return
        if check and self.enforce_protection:
            raise MemoryProtectionError(address, "write")
        poke = self._poke
        for i, value in enumerate(data):
            poke(address + i, value)

    def load_image(self, address: int, data: bytes) -> None:
        """Load an image (code or initialised data) ignoring permissions.

        Image loading models the boot-time flashing of the device, which is
        outside the software adversary's capabilities.
        """
        self.store_bytes(address, data, check=False)

    # -------------------------------------------------------------- typed
    def fetch_word(self, address: int) -> int:
        """Fetch a 32-bit instruction word (requires EXECUTE permission)."""
        if address % 4:
            raise MisalignedAccessError(address, 4)
        for base, end, buffer, _r, _w, executable in self._fast:
            if base <= address and address + 4 <= end:
                if not executable and self.enforce_protection:
                    raise MemoryProtectionError(address, "execute")
                offset = address - base
                return int.from_bytes(buffer[offset:offset + 4], "little")
        if self.enforce_protection:
            raise MemoryProtectionError(address, "execute")
        peek = self._peek
        return int.from_bytes(
            bytes(peek(address + i) for i in range(4)), "little")

    def load(self, address: int, size: int, signed: bool = False) -> int:
        """Load a ``size``-byte value (1, 2 or 4 bytes)."""
        if size > 1 and address % size:
            raise MisalignedAccessError(address, size)
        for base, end, buffer, readable, _w, _x in self._fast:
            if base <= address and address + size <= end:
                if not readable and self.enforce_protection:
                    raise MemoryProtectionError(address, "read")
                offset = address - base
                return int.from_bytes(
                    buffer[offset:offset + size], "little", signed=signed)
        if self.enforce_protection:
            raise MemoryProtectionError(address, "read")
        peek = self._peek
        return int.from_bytes(
            bytes(peek(address + i) for i in range(size)),
            "little", signed=signed)

    def store(self, address: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value``."""
        if size > 1 and address % size:
            raise MisalignedAccessError(address, size)
        mask = (1 << (8 * size)) - 1
        data = (value & mask).to_bytes(size, "little")
        for base, end, buffer, _r, writable, _x in self._fast:
            if base <= address and address + size <= end:
                if not writable and self.enforce_protection:
                    raise MemoryProtectionError(address, "write")
                offset = address - base
                buffer[offset:offset + size] = data
                return
        if self.enforce_protection:
            raise MemoryProtectionError(address, "write")
        poke = self._poke
        for i, byte in enumerate(data):
            poke(address + i, byte)

    def load_word(self, address: int, signed: bool = False) -> int:
        """Convenience 32-bit load."""
        return self.load(address, 4, signed=signed)

    def store_word(self, address: int, value: int) -> None:
        """Convenience 32-bit store."""
        self.store(address, value, 4)

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (used by the print-string syscall)."""
        for base, end, buffer, _r, _w, _x in self._fast:
            if base <= address < end:
                offset = address - base
                stop = min(offset + limit, end - base)
                terminator = buffer.find(0, offset, stop)
                if terminator < 0:
                    terminator = stop
                return buffer[offset:terminator].decode("latin-1")
        chars = []
        for index in range(limit):
            byte = self._overflow.get(address + index, 0)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all populated (non-zero) bytes (tests / debugging)."""
        populated = dict(self._overflow)
        for base, _end, buffer, _r, _w, _x in self._fast:
            for offset, value in enumerate(buffer):
                if value:
                    populated[base + offset] = value
        return populated
