"""Byte-addressable memory with region permissions.

The LO-FAT threat model assumes code memory is read-execute (``rx``) and data
memory is read-write (``rw``): the adversary may corrupt arbitrary writable
memory but cannot modify program code at run time.  The memory model enforces
exactly that separation; the attack injectors in :mod:`repro.attacks` corrupt
memory through the same interface the program uses, so they are subject to the
same W^X restriction the paper assumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.exceptions import MemoryProtectionError, MisalignedAccessError


class Permissions(enum.Flag):
    """Access permissions of a memory region."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()

    @classmethod
    def rx(cls) -> "Permissions":
        return cls.READ | cls.EXECUTE

    @classmethod
    def rw(cls) -> "Permissions":
        return cls.READ | cls.WRITE


@dataclass
class MemoryRegion:
    """A contiguous address range with fixed permissions."""

    name: str
    base: int
    size: int
    permissions: Permissions

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` lies inside the region."""
        return self.base <= address < self.end


class Memory:
    """Sparse byte-addressable memory with permission-checked accesses.

    Accesses must fall entirely within a single registered region.  Natural
    alignment is enforced for halfword and word accesses, matching the
    behaviour of the simple embedded cores the paper targets.
    """

    def __init__(self, enforce_protection: bool = True) -> None:
        self._bytes: Dict[int, int] = {}
        self._regions: List[MemoryRegion] = []
        self.enforce_protection = enforce_protection

    # ------------------------------------------------------------- regions
    def add_region(self, region: MemoryRegion) -> None:
        """Register a region.  Overlapping regions are rejected."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    "region %r overlaps existing region %r" % (region.name, existing.name)
                )
        self._regions.append(region)

    def region_for(self, address: int) -> Optional[MemoryRegion]:
        """Return the region containing ``address`` or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    @property
    def regions(self) -> List[MemoryRegion]:
        """All registered regions (copy)."""
        return list(self._regions)

    def _check(self, address: int, size: int, needed: Permissions, access: str) -> None:
        if not self.enforce_protection:
            return
        region = self.region_for(address)
        if region is None or not region.contains(address + size - 1):
            raise MemoryProtectionError(address, access)
        if needed not in region.permissions:
            raise MemoryProtectionError(address, access)

    def _check_alignment(self, address: int, size: int) -> None:
        if size > 1 and address % size != 0:
            raise MisalignedAccessError(address, size)

    # ------------------------------------------------------------ raw bytes
    def load_bytes(self, address: int, size: int, check: bool = True) -> bytes:
        """Read ``size`` raw bytes (optionally skipping permission checks)."""
        if check:
            self._check(address, size, Permissions.READ, "read")
        return bytes(self._bytes.get(address + i, 0) for i in range(size))

    def store_bytes(self, address: int, data: bytes, check: bool = True) -> None:
        """Write raw bytes (optionally skipping permission checks)."""
        if check:
            self._check(address, len(data), Permissions.WRITE, "write")
        for i, value in enumerate(data):
            self._bytes[address + i] = value

    def load_image(self, address: int, data: bytes) -> None:
        """Load an image (code or initialised data) ignoring permissions.

        Image loading models the boot-time flashing of the device, which is
        outside the software adversary's capabilities.
        """
        self.store_bytes(address, data, check=False)

    # -------------------------------------------------------------- typed
    def fetch_word(self, address: int) -> int:
        """Fetch a 32-bit instruction word (requires EXECUTE permission)."""
        self._check_alignment(address, 4)
        self._check(address, 4, Permissions.EXECUTE, "execute")
        return int.from_bytes(self.load_bytes(address, 4, check=False), "little")

    def load(self, address: int, size: int, signed: bool = False) -> int:
        """Load a ``size``-byte value (1, 2 or 4 bytes)."""
        self._check_alignment(address, size)
        self._check(address, size, Permissions.READ, "read")
        raw = self.load_bytes(address, size, check=False)
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, address: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value``."""
        self._check_alignment(address, size)
        self._check(address, size, Permissions.WRITE, "write")
        mask = (1 << (8 * size)) - 1
        self.store_bytes(address, (value & mask).to_bytes(size, "little"), check=False)

    def load_word(self, address: int, signed: bool = False) -> int:
        """Convenience 32-bit load."""
        return self.load(address, 4, signed=signed)

    def store_word(self, address: int, value: int) -> None:
        """Convenience 32-bit store."""
        self.store(address, value, 4)

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (used by the print-string syscall)."""
        chars = []
        for offset in range(limit):
            byte = self._bytes.get(address + offset, 0)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all populated bytes (tests / debugging)."""
        return dict(self._bytes)
