"""Functional RV32IM interpreter with a Pulpino-style cycle-cost model.

The LO-FAT prototype attaches to Pulpino, a single 32-bit 4-stage in-order
RISC-V core.  For the reproduction we do not need register-transfer-level
fidelity -- LO-FAT only observes the *retired instruction stream* -- so the
core here executes instructions functionally and charges cycles according to
a simple in-order pipeline cost model:

* 1 cycle per retired instruction,
* +1 cycle for every taken control-flow transfer (fetch redirect in a short
  in-order pipeline),
* +1 cycle per load (load-use bubble, charged pessimistically),
* +4 cycles for multiplications and +32 for divisions/remainders (iterative
  multiplier/divider typical of small cores).

The absolute numbers are configurable; the experiments only rely on the fact
that the *same* cost model is used with and without attestation, so that the
LO-FAT-vs-C-FLAT overhead comparison is apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cpu.exceptions import IllegalInstructionError, OutOfFuelError
from repro.cpu.memory import Memory, MemoryRegion, Permissions
from repro.cpu.syscalls import SyscallHandler
from repro.cpu.trace import BranchKind, ExecutionTrace, TraceRecord, classify_branch
from repro.isa.assembler import Program
from repro.isa.encoding import EncodingError, decode
from repro.isa.instructions import Instruction
from repro.isa.registers import RegisterFile, to_signed, to_unsigned

#: Type of the per-retired-instruction monitor callbacks (e.g. LO-FAT).
Monitor = Callable[[TraceRecord], None]

#: Type of the pre-execution hooks used by the attack injectors.
PreInstructionHook = Callable[["Cpu", int, int], None]


@dataclass
class CpuConfig:
    """Cycle-cost and environment parameters of the core model."""

    #: Extra cycles charged when a control-flow transfer is taken.
    taken_branch_penalty: int = 1
    #: Extra cycles charged per memory load.
    load_latency: int = 1
    #: Extra cycles charged per multiplication.
    mul_latency: int = 4
    #: Extra cycles charged per division / remainder.
    div_latency: int = 32
    #: Size of the read-write data + stack region in bytes.
    data_region_size: int = 0x2_0000
    #: Maximum number of retired instructions before aborting.
    max_instructions: int = 2_000_000
    #: Clock frequency of the core in MHz (Pulpino/LO-FAT run at 80 MHz on
    #: the Zedboard prototype); used only to convert cycles to wall time in
    #: reports.
    clock_mhz: float = 80.0


@dataclass
class ExecutionResult:
    """Everything produced by one program run."""

    trace: ExecutionTrace
    exit_code: int
    output: str
    instructions: int
    cycles: int
    registers: List[int] = field(default_factory=list)

    @property
    def runtime_us(self) -> float:
        """Wall-clock run time implied by the cycle count (at the model clock)."""
        return self.cycles  # filled in properly by Cpu.run (per-config clock)


class Cpu:
    """The embedded core: fetch/decode/execute loop plus the cost model.

    Monitors attached via :meth:`attach_monitor` receive every retired
    instruction as a :class:`TraceRecord`; this is the interface the LO-FAT
    engine uses, mirroring the hardware's parallel observation of the pipeline
    (the monitors cannot slow the core down -- they are invoked after the
    instruction has retired and cannot alter architectural state).
    """

    def __init__(
        self,
        program: Program,
        inputs: Optional[List[int]] = None,
        config: Optional[CpuConfig] = None,
    ) -> None:
        self.program = program
        self.config = config or CpuConfig()
        self.registers = RegisterFile()
        self.memory = Memory()
        self.syscalls = SyscallHandler(inputs)
        self.trace = ExecutionTrace()
        self.pc = program.entry
        self.cycle = 0
        self.retired = 0
        self.halted = False
        self._monitors: List[Monitor] = []
        self._pre_hooks: List[PreInstructionHook] = []
        self._setup_memory()
        self._setup_registers()

    # ----------------------------------------------------------- plumbing
    def _setup_memory(self) -> None:
        program = self.program
        code_size = max(len(program.code), 4)
        # Round the code region up to a word boundary.
        code_size = (code_size + 3) & ~3
        self.memory.add_region(
            MemoryRegion("code", program.code_base, code_size, Permissions.rx())
        )
        data_size = self.config.data_region_size
        self.memory.add_region(
            MemoryRegion("data", program.data_base, data_size, Permissions.rw())
        )
        self.memory.load_image(program.code_base, program.code)
        if program.data:
            self.memory.load_image(program.data_base, program.data)

    def _setup_registers(self) -> None:
        stack_top = self.program.data_base + self.config.data_region_size
        self.registers["sp"] = stack_top
        self.registers["gp"] = self.program.data_base

    def attach_monitor(self, monitor: Monitor) -> None:
        """Attach a retired-instruction observer (e.g. the LO-FAT engine)."""
        self._monitors.append(monitor)

    def add_pre_instruction_hook(self, hook: PreInstructionHook) -> None:
        """Attach a hook invoked before each instruction executes.

        Hooks receive ``(cpu, pc, retired_count)`` and may modify data memory;
        the attack injectors use this to model memory-corruption exploits
        triggered at a particular execution point.
        """
        self._pre_hooks.append(hook)

    # ----------------------------------------------------------- execution
    def run(self) -> ExecutionResult:
        """Run the program to completion and return the execution result."""
        while not self.halted:
            self.step()
        return ExecutionResult(
            trace=self.trace,
            exit_code=self.syscalls.exit_code or 0,
            output=self.syscalls.output_text,
            instructions=self.retired,
            cycles=self.cycle,
            registers=self.registers.snapshot(),
        )

    def step(self) -> Optional[TraceRecord]:
        """Fetch, decode and execute a single instruction."""
        if self.halted:
            return None
        if self.retired >= self.config.max_instructions:
            raise OutOfFuelError(self.config.max_instructions)

        for hook in self._pre_hooks:
            hook(self, self.pc, self.retired)

        pc = self.pc
        word = self.memory.fetch_word(pc)
        try:
            instruction = decode(word, address=pc)
        except EncodingError:
            raise IllegalInstructionError(pc, word) from None

        next_pc, taken, extra_cycles = self._execute(instruction, pc)
        kind = classify_branch(instruction)

        self.cycle += 1 + extra_cycles
        if kind.is_control_flow and taken:
            self.cycle += self.config.taken_branch_penalty

        record = TraceRecord(
            index=self.retired,
            cycle=self.cycle,
            pc=pc,
            word=word,
            instruction=instruction,
            next_pc=next_pc,
            kind=kind,
            taken=taken if kind.is_control_flow else False,
        )
        self.trace.append(record)
        self.retired += 1
        self.pc = next_pc

        for monitor in self._monitors:
            monitor(record)
        return record

    # ------------------------------------------------------------ semantics
    def _execute(self, instr: Instruction, pc: int) -> tuple:
        """Execute ``instr``; return (next_pc, taken, extra_cycles)."""
        regs = self.registers
        mem = self.memory
        mnem = instr.mnemonic
        next_pc = pc + 4
        taken = False
        extra = 0

        if mnem == "lui":
            regs.write(instr.rd, instr.imm << 12)
        elif mnem == "auipc":
            regs.write(instr.rd, pc + (instr.imm << 12))
        elif mnem == "jal":
            regs.write(instr.rd, pc + 4)
            next_pc = to_unsigned(pc + instr.imm)
            taken = True
        elif mnem == "jalr":
            target = to_unsigned(regs.read(instr.rs1) + instr.imm) & ~1
            regs.write(instr.rd, pc + 4)
            next_pc = target
            taken = True
        elif instr.is_conditional_branch:
            taken = self._branch_condition(instr)
            if taken:
                next_pc = to_unsigned(pc + instr.imm)
        elif instr.spec.is_load:
            address = to_unsigned(regs.read(instr.rs1) + instr.imm)
            if mnem == "lb":
                regs.write(instr.rd, mem.load(address, 1, signed=True))
            elif mnem == "lbu":
                regs.write(instr.rd, mem.load(address, 1, signed=False))
            elif mnem == "lh":
                regs.write(instr.rd, mem.load(address, 2, signed=True))
            elif mnem == "lhu":
                regs.write(instr.rd, mem.load(address, 2, signed=False))
            else:  # lw
                regs.write(instr.rd, mem.load(address, 4, signed=False))
            extra += self.config.load_latency
        elif instr.spec.is_store:
            address = to_unsigned(regs.read(instr.rs1) + instr.imm)
            value = regs.read(instr.rs2)
            size = {"sb": 1, "sh": 2, "sw": 4}[mnem]
            mem.store(address, value, size)
        elif mnem == "ecall":
            result = self.syscalls.handle(regs, mem)
            if result.exited:
                self.halted = True
        elif mnem == "ebreak":
            self.halted = True
        elif mnem == "fence":
            pass
        else:
            extra += self._execute_alu(instr)
        return next_pc, taken, extra

    def _branch_condition(self, instr: Instruction) -> bool:
        regs = self.registers
        lhs_s = regs.read_signed(instr.rs1)
        rhs_s = regs.read_signed(instr.rs2)
        lhs_u = regs.read(instr.rs1)
        rhs_u = regs.read(instr.rs2)
        mnem = instr.mnemonic
        if mnem == "beq":
            return lhs_u == rhs_u
        if mnem == "bne":
            return lhs_u != rhs_u
        if mnem == "blt":
            return lhs_s < rhs_s
        if mnem == "bge":
            return lhs_s >= rhs_s
        if mnem == "bltu":
            return lhs_u < rhs_u
        if mnem == "bgeu":
            return lhs_u >= rhs_u
        raise IllegalInstructionError(instr.address or 0, 0)  # pragma: no cover

    def _execute_alu(self, instr: Instruction) -> int:
        """Execute ALU / M-extension instructions; return extra cycles."""
        regs = self.registers
        mnem = instr.mnemonic
        rs1_u = regs.read(instr.rs1)
        rs1_s = regs.read_signed(instr.rs1)
        extra = 0

        if mnem in ("addi", "slti", "sltiu", "xori", "ori", "andi",
                    "slli", "srli", "srai"):
            imm = instr.imm
            if mnem == "addi":
                value = rs1_u + imm
            elif mnem == "slti":
                value = 1 if rs1_s < imm else 0
            elif mnem == "sltiu":
                value = 1 if rs1_u < to_unsigned(imm) else 0
            elif mnem == "xori":
                value = rs1_u ^ to_unsigned(imm)
            elif mnem == "ori":
                value = rs1_u | to_unsigned(imm)
            elif mnem == "andi":
                value = rs1_u & to_unsigned(imm)
            elif mnem == "slli":
                value = rs1_u << (imm & 0x1F)
            elif mnem == "srli":
                value = rs1_u >> (imm & 0x1F)
            else:  # srai
                value = rs1_s >> (imm & 0x1F)
            regs.write(instr.rd, value)
            return extra

        rs2_u = regs.read(instr.rs2)
        rs2_s = regs.read_signed(instr.rs2)
        shamt = rs2_u & 0x1F

        if mnem == "add":
            value = rs1_u + rs2_u
        elif mnem == "sub":
            value = rs1_u - rs2_u
        elif mnem == "sll":
            value = rs1_u << shamt
        elif mnem == "slt":
            value = 1 if rs1_s < rs2_s else 0
        elif mnem == "sltu":
            value = 1 if rs1_u < rs2_u else 0
        elif mnem == "xor":
            value = rs1_u ^ rs2_u
        elif mnem == "srl":
            value = rs1_u >> shamt
        elif mnem == "sra":
            value = rs1_s >> shamt
        elif mnem == "or":
            value = rs1_u | rs2_u
        elif mnem == "and":
            value = rs1_u & rs2_u
        elif mnem == "mul":
            value = rs1_s * rs2_s
            extra = self.config.mul_latency
        elif mnem == "mulh":
            value = (rs1_s * rs2_s) >> 32
            extra = self.config.mul_latency
        elif mnem == "mulhu":
            value = (rs1_u * rs2_u) >> 32
            extra = self.config.mul_latency
        elif mnem == "mulhsu":
            value = (rs1_s * rs2_u) >> 32
            extra = self.config.mul_latency
        elif mnem == "div":
            extra = self.config.div_latency
            if rs2_s == 0:
                value = -1
            elif rs1_s == -(1 << 31) and rs2_s == -1:
                value = rs1_s
            else:
                value = int(rs1_s / rs2_s)  # truncating division
        elif mnem == "divu":
            extra = self.config.div_latency
            value = 0xFFFFFFFF if rs2_u == 0 else rs1_u // rs2_u
        elif mnem == "rem":
            extra = self.config.div_latency
            if rs2_s == 0:
                value = rs1_s
            elif rs1_s == -(1 << 31) and rs2_s == -1:
                value = 0
            else:
                value = rs1_s - int(rs1_s / rs2_s) * rs2_s
        elif mnem == "remu":
            extra = self.config.div_latency
            value = rs1_u if rs2_u == 0 else rs1_u % rs2_u
        else:  # pragma: no cover - every supported mnemonic is handled above
            raise IllegalInstructionError(instr.address or 0, 0)

        regs.write(instr.rd, value)
        return extra


def run_program(
    program: Program,
    inputs: Optional[List[int]] = None,
    config: Optional[CpuConfig] = None,
    monitors: Optional[List[Monitor]] = None,
    pre_hooks: Optional[List[PreInstructionHook]] = None,
) -> ExecutionResult:
    """Convenience wrapper: build a :class:`Cpu`, attach monitors, run."""
    cpu = Cpu(program, inputs=inputs, config=config)
    for monitor in monitors or []:
        cpu.attach_monitor(monitor)
    for hook in pre_hooks or []:
        cpu.add_pre_instruction_hook(hook)
    return cpu.run()
