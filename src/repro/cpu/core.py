"""Functional RV32IM interpreter with a Pulpino-style cycle-cost model.

The LO-FAT prototype attaches to Pulpino, a single 32-bit 4-stage in-order
RISC-V core.  For the reproduction we do not need register-transfer-level
fidelity -- LO-FAT only observes the *retired instruction stream* -- so the
core here executes instructions functionally and charges cycles according to
a simple in-order pipeline cost model:

* 1 cycle per retired instruction,
* +1 cycle for every taken control-flow transfer (fetch redirect in a short
  in-order pipeline),
* +1 cycle per load (load-use bubble, charged pessimistically),
* +4 cycles for multiplications and +32 for divisions/remainders (iterative
  multiplier/divider typical of small cores).

The absolute numbers are configurable; the experiments only rely on the fact
that the *same* cost model is used with and without attestation, so that the
LO-FAT-vs-C-FLAT overhead comparison is apples to apples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.exceptions import IllegalInstructionError, OutOfFuelError
from repro.cpu.memory import Memory, MemoryRegion, Permissions
from repro.cpu.syscalls import SyscallHandler
from repro.cpu.trace import (
    BranchKind,
    ExecutionTrace,
    StreamingTrace,
    TraceRecord,
    classify_branch,
)
from repro.isa.assembler import Program
from repro.isa.encoding import EncodingError, decode
from repro.isa.instructions import Instruction
from repro.isa.registers import RegisterFile, to_signed, to_unsigned

#: Type of the per-retired-instruction monitor callbacks (e.g. LO-FAT).
Monitor = Callable[[TraceRecord], None]

#: Type of the pre-execution hooks used by the attack injectors.
PreInstructionHook = Callable[["Cpu", int, int], None]


@dataclass
class CpuConfig:
    """Cycle-cost and environment parameters of the core model."""

    #: Extra cycles charged when a control-flow transfer is taken.
    taken_branch_penalty: int = 1
    #: Extra cycles charged per memory load.
    load_latency: int = 1
    #: Extra cycles charged per multiplication.
    mul_latency: int = 4
    #: Extra cycles charged per division / remainder.
    div_latency: int = 32
    #: Size of the read-write data + stack region in bytes.
    data_region_size: int = 0x2_0000
    #: Maximum number of retired instructions before aborting.
    max_instructions: int = 2_000_000
    #: Reuse decoded instructions across runs of the same program image (the
    #: code region is read-execute, so the pc -> word mapping is immutable).
    decoded_instruction_cache: bool = True
    #: Keep the full per-instruction record list on :attr:`Cpu.trace`.  The
    #: attestation hot paths (verifier replay, campaign workers) disable this
    #: and stream records straight to the monitors, keeping only summary
    #: counters in memory.
    collect_trace: bool = True
    #: Run the fused fetch/decode/dispatch inner loop (:meth:`Cpu.run_fast`)
    #: instead of the per-instruction :meth:`Cpu.step` loop.  The fast path is
    #: architecturally identical -- same registers, cycles, outputs, trace
    #: records and attestation measurements -- and only engages when every
    #: attached monitor supports batched observation; set this to False to
    #: force the legacy loop (the e12 benchmark measures the difference).
    fast_path: bool = True
    #: Number of control-flow records buffered before a batch is flushed to
    #: the attached monitors on the fast path.
    monitor_batch_size: int = 256
    #: Execution engine: ``"legacy"`` (per-instruction :meth:`Cpu.step`
    #: loop), ``"fast"`` (fused interpreter, :meth:`Cpu.run_fast`) or
    #: ``"compiled"`` (superblock trace compilation,
    #: :meth:`Cpu.run_compiled`).  ``None`` resolves from :attr:`fast_path`
    #: for backward compatibility.  The compiled engine transparently falls
    #: back to ``run_fast`` when the program or run shape is ineligible
    #: (unresolved indirect jumps, collected traces, pre-hooks).
    engine: Optional[str] = None
    #: Clock frequency of the core in MHz (Pulpino/LO-FAT run at 80 MHz on
    #: the Zedboard prototype); used only to convert cycles to wall time in
    #: reports.
    clock_mhz: float = 80.0

    def resolved_engine(self) -> str:
        """The effective engine name; validates :attr:`engine`."""
        engine = self.engine
        if engine is None:
            return "fast" if self.fast_path else "legacy"
        if engine not in ("legacy", "fast", "compiled"):
            raise ValueError(
                "unknown execution engine %r (expected legacy, fast or"
                " compiled)" % (engine,)
            )
        return engine


@dataclass
class ExecutionResult:
    """Everything produced by one program run."""

    trace: ExecutionTrace
    exit_code: int
    output: str
    instructions: int
    cycles: int
    registers: List[int] = field(default_factory=list)

    @property
    def runtime_us(self) -> float:
        """Wall-clock run time implied by the cycle count (at the model clock)."""
        return self.cycles  # filled in properly by Cpu.run (per-config clock)


class Cpu:
    """The embedded core: fetch/decode/execute loop plus the cost model.

    Monitors attached via :meth:`attach_monitor` receive every retired
    instruction as a :class:`TraceRecord`; this is the interface the LO-FAT
    engine uses, mirroring the hardware's parallel observation of the pipeline
    (the monitors cannot slow the core down -- they are invoked after the
    instruction has retired and cannot alter architectural state).
    """

    def __init__(
        self,
        program: Program,
        inputs: Optional[List[int]] = None,
        config: Optional[CpuConfig] = None,
    ) -> None:
        self.program = program
        self.config = config or CpuConfig()
        self.registers = RegisterFile()
        self.memory = Memory()
        self.syscalls = SyscallHandler(inputs)
        self.trace = ExecutionTrace() if self.config.collect_trace else StreamingTrace()
        self._decode_cache = (
            DECODE_CACHE.table_for(program)
            if self.config.decoded_instruction_cache
            else None
        )
        # The fast-path dispatch table (pc -> (executor, instruction, word,
        # kind, is_control_flow)) is shared across runs of the same program
        # image exactly like the decode cache; without the shared cache each
        # Cpu keeps a private table.
        self._fast_table: Dict[int, tuple] = (
            DECODE_CACHE.fast_table_for(program)
            if self.config.decoded_instruction_cache
            else {}
        )
        self.pc = program.entry
        self.cycle = 0
        self.retired = 0
        self.halted = False
        #: The engine that actually ran (set by :meth:`run`): "legacy",
        #: "fast" or "compiled".  A compiled run that delegates its tail to
        #: ``run_fast`` still reports "compiled".
        self.engine_used: Optional[str] = None
        self._monitors: List[Monitor] = []
        #: Batched observers resolved from the attached monitors (None for a
        #: monitor that only supports per-record delivery).
        self._batch_monitors: List[Optional[Callable]] = []
        #: Per-block observers (``observe_block(records, chunk, pairs)``)
        #: used by the compiled engine to absorb a block's precomputed
        #: hash chunk in one sponge update.
        self._block_monitors: List[Optional[Callable]] = []
        #: End-of-run hooks (``finish_run(instructions, cycle)``) used by the
        #: fast path to sync final counters to batch monitors.
        self._finish_monitors: List[Callable] = []
        #: Straight-line sync hooks (``sync_straight_line(next_pc, cycle)``)
        #: used when a pre-hook redirect ends batched observation mid-run.
        self._linear_sync_monitors: List[Callable] = []
        self._pre_hooks: List[PreInstructionHook] = []
        self._setup_memory()
        self._setup_registers()

    # ----------------------------------------------------------- plumbing
    def _setup_memory(self) -> None:
        program = self.program
        code_size = max(len(program.code), 4)
        # Round the code region up to a word boundary.
        code_size = (code_size + 3) & ~3
        self.memory.add_region(
            MemoryRegion("code", program.code_base, code_size, Permissions.rx())
        )
        data_size = self.config.data_region_size
        self.memory.add_region(
            MemoryRegion("data", program.data_base, data_size, Permissions.rw())
        )
        self.memory.load_image(program.code_base, program.code)
        if program.data:
            self.memory.load_image(program.data_base, program.data)

    def _setup_registers(self) -> None:
        stack_top = self.program.data_base + self.config.data_region_size
        self.registers["sp"] = stack_top
        self.registers["gp"] = self.program.data_base

    def attach_monitor(self, monitor: Monitor) -> None:
        """Attach a retired-instruction observer (e.g. the LO-FAT engine).

        Monitors whose owner exposes ``observe_batch`` (every first-class
        :class:`repro.schemes.base.MeasurementSession` and the LO-FAT engine)
        can consume batches of control-flow records on the fast path; plain
        callables force the legacy per-record loop so they keep seeing every
        retired instruction.
        """
        self._monitors.append(monitor)
        # A monitor is usually a bound ``observe`` method: resolve the batch
        # entry point on the owning object, falling back to the callable
        # itself (the LO-FAT engine is directly callable).
        owner = getattr(monitor, "__self__", monitor)
        self._batch_monitors.append(getattr(owner, "observe_batch", None))
        self._block_monitors.append(getattr(owner, "observe_block", None))
        finish = getattr(owner, "finish_run", None)
        if finish is not None:
            self._finish_monitors.append(finish)
        sync = getattr(owner, "sync_straight_line", None)
        if sync is not None:
            self._linear_sync_monitors.append(sync)

    def add_pre_instruction_hook(self, hook: PreInstructionHook) -> None:
        """Attach a hook invoked before each instruction executes.

        Hooks receive ``(cpu, pc, retired_count)`` and may modify data memory;
        the attack injectors use this to model memory-corruption exploits
        triggered at a particular execution point.
        """
        self._pre_hooks.append(hook)

    # ----------------------------------------------------------- execution
    def run(self) -> ExecutionResult:
        """Run the program to completion and return the execution result.

        Dispatches by :meth:`CpuConfig.resolved_engine`: the compiled
        engine (:meth:`run_compiled`) when requested and eligible, else the
        fused fast path (:meth:`run_fast`) when every attached monitor
        supports batched observation, else the legacy per-instruction
        :meth:`step` loop.  All paths are architecturally identical.
        """
        engine = self.config.resolved_engine()
        if engine != "legacy" and all(self._batch_monitors):
            if (
                engine == "compiled"
                and not self._pre_hooks
                and not self.config.collect_trace
            ):
                # Lazy import: repro.cpu.compile imports this module.
                from repro.cpu.compile import COMPILE_CACHE

                plan = COMPILE_CACHE.plan_for(self.program, self.config)
                if plan is not None:
                    self.engine_used = "compiled"
                    return self.run_compiled(plan)
            self.engine_used = self.engine_used or "fast"
            return self.run_fast()
        self.engine_used = "legacy"
        while not self.halted:
            self.step()
        return self._result()

    def run_fast(self) -> ExecutionResult:
        """Fused fetch/decode/dispatch inner loop.

        The hot-path variant of :meth:`run`: attribute lookups are hoisted
        out of the loop, fetch+decode+classify happen once per program
        counter through the shared per-program dispatch table, and
        :class:`TraceRecord` objects are only materialized for control-flow
        instructions (when monitors are attached) or when the configuration
        asks for a full trace.  Control-flow records are delivered to the
        monitors in batches via their ``observe_batch`` hook; because
        monitors observe retired instructions and can never influence
        architectural state, the deferred delivery is unobservable outside
        cycle-model statistics.
        """
        config = self.config
        table = self._fast_table
        table_get = table.get
        build_entry = self._build_fast_entry
        pre_hooks = self._pre_hooks
        batch_monitors = self._batch_monitors
        collect = config.collect_trace
        streaming = not collect
        append_record = self.trace.append if collect else None
        fuel = config.max_instructions
        taken_penalty = config.taken_branch_penalty
        flush_at = max(1, config.monitor_batch_size)
        make_record = TraceRecord

        pc = self.pc
        cycle = self.cycle
        retired = self.retired
        start_retired = retired
        cf_events = 0
        taken_cf_events = 0
        by_kind: Dict[str, int] = {}
        batch: List[TraceRecord] = []
        #: Set when a pre-hook redirects control flow: such a transfer has no
        #: trace record, so batched observers could not reconstruct the
        #: straight-line runs around it -- the rest of the execution then
        #: finishes on the legacy per-record loop (identical semantics).
        hook_redirected = False
        redirect_from = 0
        try:
            while not self.halted:
                if retired >= fuel:
                    raise OutOfFuelError(fuel)
                if pre_hooks:
                    self.pc = pc
                    self.cycle = cycle
                    self.retired = retired
                    for hook in pre_hooks:
                        # self.pc, not the local: a hook that redirects
                        # control flow is visible to the hooks after it,
                        # exactly as on the legacy loop.
                        hook(self, self.pc, retired)
                    if self.pc != pc:
                        redirect_from = pc
                        pc = self.pc
                        hook_redirected = True
                        break

                entry = table_get(pc)
                if entry is None:
                    entry = build_entry(pc)
                executor, instruction, word, kind, is_control_flow = entry

                next_pc, taken, extra_cycles = executor(self, instruction, pc)
                cycle += 1 + extra_cycles
                if is_control_flow:
                    if taken:
                        cycle += taken_penalty
                    if streaming:
                        # Summary counters for the streaming trace; with a
                        # collected trace they would be recomputed from the
                        # records, so skip the bookkeeping entirely.
                        cf_events += 1
                        if taken:
                            taken_cf_events += 1
                        kind_name = kind.value
                        by_kind[kind_name] = by_kind.get(kind_name, 0) + 1
                    if batch_monitors or collect:
                        record = make_record(
                            retired, cycle, pc, word, instruction,
                            next_pc, kind, taken,
                        )
                        if collect:
                            append_record(record)
                        if batch_monitors:
                            batch.append(record)
                            if len(batch) >= flush_at:
                                # Re-bind before delivering: if a monitor
                                # raises mid-flush, the finally block must
                                # not re-deliver these records.
                                flush = batch
                                batch = []
                                for deliver in batch_monitors:
                                    deliver(flush)
                elif collect:
                    append_record(make_record(
                        retired, cycle, pc, word, instruction,
                        next_pc, kind, False,
                    ))
                retired += 1
                pc = next_pc
        finally:
            self.pc = pc
            self.cycle = cycle
            self.retired = retired
            if batch:
                flush = batch
                batch = []
                for deliver in batch_monitors:
                    deliver(flush)
            # Batched delivery only carries control-flow records: sync the
            # final retirement count and cycle so monitor statistics cover
            # the straight-line tail of the run as well.
            for finish in self._finish_monitors:
                finish(retired, cycle)
            if not collect:
                self.trace.absorb_counts(
                    instructions=retired - start_retired,
                    cycles=cycle,
                    control_flow_events=cf_events,
                    taken_control_flow_events=taken_cf_events,
                    by_kind=by_kind,
                )
        if hook_redirected:
            # The straight-line instructions retired since the last
            # control-flow record produced no records; hand their pc range
            # to the monitors (loop-exit checks) before observation resumes
            # per record.
            for sync in self._linear_sync_monitors:
                sync(redirect_from, cycle)
            # The hooks for this retirement already ran (and redirected):
            # execute the redirect target without re-firing them, then
            # finish the run per record -- exactly the legacy behaviour.
            self.step(_skip_hooks=True)
            while not self.halted:
                self.step()
        return self._result()

    def run_compiled(self, plan) -> ExecutionResult:
        """Inter-block trampoline over compiled superblock step functions.

        The third engine (see :mod:`repro.cpu.compile`): each iteration
        looks up the compiled block headed at ``pc`` and executes the whole
        block with a single call -- no per-instruction dispatch.  Cycle and
        retirement deltas come back as compile-time constants; control-flow
        trace records are materialized per edge from the block's static
        templates so downstream traces and measurements stay byte-identical
        to the other engines.  Monitors exposing ``observe_block`` absorb
        each block's chain-internal jumps from one precomputed chunk; the
        block terminator (and everything for batch-only monitors) flows
        through the same ``observe_batch`` batching as :meth:`run_fast`.

        Runs that the trampoline cannot finish -- a transfer to an address
        outside the compiled plan, or a block whose worst-case retirement
        would cross the fuel limit -- delegate the remainder of the run to
        :meth:`run_fast` with identical semantics.
        """
        config = self.config
        blocks_get = plan.blocks.get
        compile_block_at = plan.compile_block_at
        batch_monitors = self._batch_monitors
        block_monitors = self._block_monitors
        use_blocks = bool(block_monitors) and all(block_monitors)
        fuel = config.max_instructions
        flush_at = max(1, config.monitor_batch_size)
        make_record = TraceRecord

        pc = self.pc
        cycle = self.cycle
        retired = self.retired
        start_retired = retired
        cf_events = 0
        taken_cf_events = 0
        by_kind: Dict[str, int] = {}
        batch: List[TraceRecord] = []
        x = self.registers._regs
        rf = self.registers
        load = self.memory.load
        store = self.memory.store
        direct_jump_kind = BranchKind.DIRECT_JUMP.value
        buf = mv2 = mv4 = None
        if plan.uses_data_buffer:
            region = self.memory.region_buffer("data")
            if (region is None or region[0] != plan.data_base
                    or region[1] != plan.data_size):
                # Defensive: the generated guards bake the data-region
                # bounds in; without a matching live buffer the plan
                # cannot run (unreachable for CPUs built the normal way).
                self.engine_used = "fast"
                return self.run_fast()
            buf = region[2]
            view = memoryview(buf)
            mv2 = view.cast("H")
            mv4 = view.cast("I")
        #: Set when the remainder of the run must finish on ``run_fast``
        #: (stray pc outside the plan, or fuel check too close to the limit
        #: for a whole-block step).
        delegated = False
        try:
            while not self.halted:
                entry = blocks_get(pc)
                if entry is None:
                    entry = compile_block_at(pc)
                    if entry is None:
                        delegated = True
                        break
                (fn, size, templates, n_internal, term_cf, term_template,
                 cf_total, static_chunk, static_pairs,
                 kind_items) = entry.packed
                if retired + size > fuel:
                    # A whole-block step could cross the fuel limit;
                    # run_fast raises OutOfFuelError at the exact
                    # instruction, identically to the legacy loop.
                    delegated = True
                    break
                next_pc, rdelta, cdelta, taken, cf_seen = fn(
                    self, x, rf, load, store, buf, mv2, mv4)
                base_retired = retired
                base_cycle = cycle
                cycle += cdelta
                retired += rdelta
                # Streaming summary counters (the compiled engine never
                # runs with a collected trace), then record delivery.
                if cf_seen:
                    if cf_seen == cf_total:
                        cf_events += cf_total
                        taken_cf_events += n_internal + (
                            1 if term_cf and taken else 0)
                        for kind_name, count in kind_items:
                            by_kind[kind_name] = by_kind.get(kind_name, 0) + count
                        if not batch_monitors:
                            pc = next_pc
                            continue
                        if n_internal:
                            records = [
                                make_record(
                                    base_retired + roff, base_cycle + coff,
                                    tpc, word, instruction, tnext, kind, True,
                                )
                                for roff, coff, tpc, word, instruction,
                                tnext, kind in templates
                            ]
                            if term_cf:
                                tpc, word, instruction, kind = term_template
                                records.append(make_record(
                                    retired - 1, cycle, tpc, word,
                                    instruction, next_pc, kind, taken,
                                ))
                            if use_blocks:
                                # Per-block absorb: flush any pending batch
                                # first so the monitors see records in
                                # stream order, then hand over the
                                # precomputed chunk.
                                if batch:
                                    flush = batch
                                    batch = []
                                    for deliver in batch_monitors:
                                        deliver(flush)
                                for observe_block in block_monitors:
                                    observe_block(
                                        records, static_chunk, static_pairs)
                            else:
                                batch.extend(records)
                                if len(batch) >= flush_at:
                                    flush = batch
                                    batch = []
                                    for deliver in batch_monitors:
                                        deliver(flush)
                        elif term_cf:
                            tpc, word, instruction, kind = term_template
                            batch.append(make_record(
                                retired - 1, cycle, tpc, word, instruction,
                                next_pc, kind, taken,
                            ))
                            if len(batch) >= flush_at:
                                flush = batch
                                batch = []
                                for deliver in batch_monitors:
                                    deliver(flush)
                    else:
                        # Early ecall/ebreak halt: only the first cf_seen
                        # internal jumps fired, all taken direct jumps.
                        cf_events += cf_seen
                        taken_cf_events += cf_seen
                        by_kind[direct_jump_kind] = by_kind.get(
                            direct_jump_kind, 0) + cf_seen
                        if batch_monitors:
                            batch.extend(
                                make_record(
                                    base_retired + roff, base_cycle + coff,
                                    tpc, word, instruction, tnext, kind, True,
                                )
                                for roff, coff, tpc, word, instruction,
                                tnext, kind in templates[:cf_seen]
                            )
                            if len(batch) >= flush_at:
                                flush = batch
                                batch = []
                                for deliver in batch_monitors:
                                    deliver(flush)
                pc = next_pc
        finally:
            self.pc = pc
            self.cycle = cycle
            self.retired = retired
            if not delegated:
                if batch:
                    flush = batch
                    batch = []
                    for deliver in batch_monitors:
                        deliver(flush)
                for finish in self._finish_monitors:
                    finish(retired, cycle)
                self.trace.absorb_counts(
                    instructions=retired - start_retired,
                    cycles=cycle,
                    control_flow_events=cf_events,
                    taken_control_flow_events=taken_cf_events,
                    by_kind=by_kind,
                )
        if delegated:
            # Flush what the compiled portion produced, account for it, and
            # finish the run on the fused interpreter (which calls the
            # finish monitors and absorbs its own portion of the counters).
            if batch:
                flush = batch
                batch = []
                for deliver in batch_monitors:
                    deliver(flush)
            self.trace.absorb_counts(
                instructions=retired - start_retired,
                cycles=cycle,
                control_flow_events=cf_events,
                taken_control_flow_events=taken_cf_events,
                by_kind=by_kind,
            )
            return self.run_fast()
        return self._result()

    def _result(self) -> ExecutionResult:
        return ExecutionResult(
            trace=self.trace,
            exit_code=self.syscalls.exit_code or 0,
            output=self.syscalls.output_text,
            instructions=self.retired,
            cycles=self.cycle,
            registers=self.registers.snapshot(),
        )

    def _build_fast_entry(self, pc: int) -> tuple:
        """Fetch, decode and classify the instruction at ``pc`` once.

        Code memory is read-execute, so the pc -> word mapping is immutable
        within one program image and the resulting dispatch entry can be
        reused for every subsequent visit (and, through the shared cache,
        every subsequent run of the same program).
        """
        word = self.memory.fetch_word(pc)
        instruction = self._decode(pc, word)
        executor = _EXECUTORS.get(instruction.mnemonic)
        if executor is None:  # pragma: no cover - decoder only emits known ops
            raise IllegalInstructionError(pc, word)
        kind = classify_branch(instruction)
        entry = (executor, instruction, word, kind, kind.is_control_flow)
        self._fast_table[pc] = entry
        # Keep the legacy decode cache coherent so mixed step()/run() use of
        # the same program image never decodes twice.
        if self._decode_cache is not None:
            self._decode_cache[pc] = (word, instruction)
        return entry

    def step(self, _skip_hooks: bool = False) -> Optional[TraceRecord]:
        """Fetch, decode and execute a single instruction."""
        if self.halted:
            return None
        if self.retired >= self.config.max_instructions:
            raise OutOfFuelError(self.config.max_instructions)

        if not _skip_hooks:
            for hook in self._pre_hooks:
                hook(self, self.pc, self.retired)

        pc = self.pc
        word = self.memory.fetch_word(pc)
        cache = self._decode_cache
        if cache is not None:
            entry = cache.get(pc)
            if entry is not None and entry[0] == word:
                instruction = entry[1]
            else:
                instruction = self._decode(pc, word)
                cache[pc] = (word, instruction)
        else:
            instruction = self._decode(pc, word)

        next_pc, taken, extra_cycles = self._execute(instruction, pc)
        kind = classify_branch(instruction)

        self.cycle += 1 + extra_cycles
        if kind.is_control_flow and taken:
            self.cycle += self.config.taken_branch_penalty

        record = TraceRecord(
            index=self.retired,
            cycle=self.cycle,
            pc=pc,
            word=word,
            instruction=instruction,
            next_pc=next_pc,
            kind=kind,
            taken=taken if kind.is_control_flow else False,
        )
        self.trace.append(record)
        self.retired += 1
        self.pc = next_pc

        for monitor in self._monitors:
            monitor(record)
        return record

    # ------------------------------------------------------------ semantics
    def _decode(self, pc: int, word: int) -> Instruction:
        """Decode ``word`` fetched from ``pc`` (uncached path)."""
        try:
            return decode(word, address=pc)
        except EncodingError:
            raise IllegalInstructionError(pc, word) from None

    def _execute(self, instr: Instruction, pc: int) -> tuple:
        """Execute ``instr``; return (next_pc, taken, extra_cycles)."""
        executor = _EXECUTORS.get(instr.mnemonic)
        if executor is None:  # pragma: no cover - decoder only emits known ops
            raise IllegalInstructionError(instr.address or 0, 0)
        return executor(self, instr, pc)


# ---------------------------------------------------------------------------
# Instruction dispatch table
# ---------------------------------------------------------------------------
# One executor per mnemonic, resolved with a single dictionary lookup per
# retired instruction.  Every executor returns (next_pc, taken, extra_cycles)
# and must preserve exact architectural semantics: the regression suite
# asserts byte-identical traces and measurements across all seed workloads.


def _exec_lui(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    cpu.registers.write(instr.rd, instr.imm << 12)
    return pc + 4, False, 0


def _exec_auipc(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    cpu.registers.write(instr.rd, pc + (instr.imm << 12))
    return pc + 4, False, 0


def _exec_jal(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    cpu.registers.write(instr.rd, pc + 4)
    return to_unsigned(pc + instr.imm), True, 0


def _exec_jalr(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    regs = cpu.registers
    target = to_unsigned(regs.read(instr.rs1) + instr.imm) & ~1
    regs.write(instr.rd, pc + 4)
    return target, True, 0


def _exec_ecall(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    result = cpu.syscalls.handle(cpu.registers, cpu.memory)
    if result.exited:
        cpu.halted = True
    return pc + 4, False, 0


def _exec_ebreak(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    cpu.halted = True
    return pc + 4, False, 0


def _exec_fence(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
    return pc + 4, False, 0


def _branch(condition):
    """Conditional-branch executor from condition(registers, instr) -> bool."""
    def _exec(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
        if condition(cpu.registers, instr):
            return to_unsigned(pc + instr.imm), True, 0
        return pc + 4, False, 0
    return _exec


def _load(size: int, signed: bool):
    def _exec(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
        regs = cpu.registers
        address = to_unsigned(regs.read(instr.rs1) + instr.imm)
        regs.write(instr.rd, cpu.memory.load(address, size, signed=signed))
        return pc + 4, False, cpu.config.load_latency
    return _exec


def _store(size: int):
    def _exec(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
        regs = cpu.registers
        address = to_unsigned(regs.read(instr.rs1) + instr.imm)
        cpu.memory.store(address, regs.read(instr.rs2), size)
        return pc + 4, False, 0
    return _exec


def _alu(value_fn, latency_attr: Optional[str] = None):
    """ALU executor from value_fn(registers, instr) -> value.

    ``latency_attr`` names the :class:`CpuConfig` field charged as extra
    cycles (multiplications and divisions on the iterative functional units).
    """
    if latency_attr is None:
        def _exec(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
            regs = cpu.registers
            regs.write(instr.rd, value_fn(regs, instr))
            return pc + 4, False, 0
    else:
        def _exec(cpu: "Cpu", instr: Instruction, pc: int) -> tuple:
            regs = cpu.registers
            regs.write(instr.rd, value_fn(regs, instr))
            return pc + 4, False, getattr(cpu.config, latency_attr)
    return _exec


def _div_value(rs1_s: int, rs2_s: int) -> int:
    """RV32M ``div``: signed division truncating toward zero.

    Division by zero returns -1 (all ones) and the signed-overflow case
    ``INT_MIN / -1`` returns ``INT_MIN``, per the RISC-V M specification.
    Computed in exact integer arithmetic (``//`` on magnitudes) rather than
    via float division, which cannot represent every 32-bit quotient.
    """
    if rs2_s == 0:
        return -1
    if rs1_s == -(1 << 31) and rs2_s == -1:
        return rs1_s
    quotient = abs(rs1_s) // abs(rs2_s)
    return -quotient if (rs1_s < 0) != (rs2_s < 0) else quotient


def _rem_value(rs1_s: int, rs2_s: int) -> int:
    """RV32M ``rem``: remainder of truncating division (sign of dividend).

    Remainder by zero returns the dividend and ``INT_MIN rem -1`` returns 0,
    per the RISC-V M specification.
    """
    if rs2_s == 0:
        return rs1_s
    if rs1_s == -(1 << 31) and rs2_s == -1:
        return 0
    return rs1_s - _div_value(rs1_s, rs2_s) * rs2_s


_EXECUTORS: Dict[str, Callable] = {
    "lui": _exec_lui,
    "auipc": _exec_auipc,
    "jal": _exec_jal,
    "jalr": _exec_jalr,
    "ecall": _exec_ecall,
    "ebreak": _exec_ebreak,
    "fence": _exec_fence,
    # Conditional branches.
    "beq": _branch(lambda r, i: r.read(i.rs1) == r.read(i.rs2)),
    "bne": _branch(lambda r, i: r.read(i.rs1) != r.read(i.rs2)),
    "blt": _branch(lambda r, i: r.read_signed(i.rs1) < r.read_signed(i.rs2)),
    "bge": _branch(lambda r, i: r.read_signed(i.rs1) >= r.read_signed(i.rs2)),
    "bltu": _branch(lambda r, i: r.read(i.rs1) < r.read(i.rs2)),
    "bgeu": _branch(lambda r, i: r.read(i.rs1) >= r.read(i.rs2)),
    # Loads and stores.
    "lb": _load(1, True),
    "lbu": _load(1, False),
    "lh": _load(2, True),
    "lhu": _load(2, False),
    "lw": _load(4, False),
    "sb": _store(1),
    "sh": _store(2),
    "sw": _store(4),
    # ALU with immediate operand.
    "addi": _alu(lambda r, i: r.read(i.rs1) + i.imm),
    "slti": _alu(lambda r, i: 1 if r.read_signed(i.rs1) < i.imm else 0),
    "sltiu": _alu(lambda r, i: 1 if r.read(i.rs1) < to_unsigned(i.imm) else 0),
    "xori": _alu(lambda r, i: r.read(i.rs1) ^ to_unsigned(i.imm)),
    "ori": _alu(lambda r, i: r.read(i.rs1) | to_unsigned(i.imm)),
    "andi": _alu(lambda r, i: r.read(i.rs1) & to_unsigned(i.imm)),
    "slli": _alu(lambda r, i: r.read(i.rs1) << (i.imm & 0x1F)),
    "srli": _alu(lambda r, i: r.read(i.rs1) >> (i.imm & 0x1F)),
    "srai": _alu(lambda r, i: r.read_signed(i.rs1) >> (i.imm & 0x1F)),
    # Register-register ALU.
    "add": _alu(lambda r, i: r.read(i.rs1) + r.read(i.rs2)),
    "sub": _alu(lambda r, i: r.read(i.rs1) - r.read(i.rs2)),
    "sll": _alu(lambda r, i: r.read(i.rs1) << (r.read(i.rs2) & 0x1F)),
    "slt": _alu(lambda r, i: 1 if r.read_signed(i.rs1) < r.read_signed(i.rs2) else 0),
    "sltu": _alu(lambda r, i: 1 if r.read(i.rs1) < r.read(i.rs2) else 0),
    "xor": _alu(lambda r, i: r.read(i.rs1) ^ r.read(i.rs2)),
    "srl": _alu(lambda r, i: r.read(i.rs1) >> (r.read(i.rs2) & 0x1F)),
    "sra": _alu(lambda r, i: r.read_signed(i.rs1) >> (r.read(i.rs2) & 0x1F)),
    "or": _alu(lambda r, i: r.read(i.rs1) | r.read(i.rs2)),
    "and": _alu(lambda r, i: r.read(i.rs1) & r.read(i.rs2)),
    # M extension (iterative multiplier/divider latencies).
    "mul": _alu(lambda r, i: r.read_signed(i.rs1) * r.read_signed(i.rs2),
                "mul_latency"),
    "mulh": _alu(lambda r, i: (r.read_signed(i.rs1) * r.read_signed(i.rs2)) >> 32,
                 "mul_latency"),
    "mulhu": _alu(lambda r, i: (r.read(i.rs1) * r.read(i.rs2)) >> 32,
                  "mul_latency"),
    "mulhsu": _alu(lambda r, i: (r.read_signed(i.rs1) * r.read(i.rs2)) >> 32,
                   "mul_latency"),
    "div": _alu(lambda r, i: _div_value(r.read_signed(i.rs1), r.read_signed(i.rs2)),
                "div_latency"),
    "divu": _alu(lambda r, i: (0xFFFFFFFF if r.read(i.rs2) == 0
                               else r.read(i.rs1) // r.read(i.rs2)),
                 "div_latency"),
    "rem": _alu(lambda r, i: _rem_value(r.read_signed(i.rs1), r.read_signed(i.rs2)),
                "div_latency"),
    "remu": _alu(lambda r, i: (r.read(i.rs1) if r.read(i.rs2) == 0
                               else r.read(i.rs1) % r.read(i.rs2)),
                 "div_latency"),
}


# ---------------------------------------------------------------------------
# Decoded-instruction cache
# ---------------------------------------------------------------------------


class DecodedInstructionCache:
    """Process-wide decoded-instruction store shared by all Cpu instances.

    Keyed by program digest then PC; entries also remember the raw word so a
    mismatch falls back to a fresh decode.  Code memory is mapped
    read-execute, so within one program image the pc -> word mapping is
    immutable and sharing decoded :class:`Instruction` objects across runs is
    safe (executors never mutate them).  Repeat verifications of the same
    program -- the campaign service's common case -- skip the decoder
    entirely after the first run.
    """

    def __init__(self, max_programs: int = 64) -> None:
        self.max_programs = max_programs
        self._tables: Dict[str, Dict[int, Tuple[int, Instruction]]] = {}
        #: Fast-path dispatch tables, keyed like :attr:`_tables`: pc ->
        #: (executor, instruction, word, kind, is_control_flow).
        self._fast_tables: Dict[str, Dict[int, tuple]] = {}
        # Guards the evict-then-insert sequences below.  Table *contents*
        # stay lock-free (per-pc inserts are idempotent and dict ops are
        # atomic under the GIL); the lock only keeps one thread's eviction
        # from dropping a table another thread just registered -- the
        # attestation server computes cold references on executor threads,
        # so this process-wide cache is reachable concurrently.
        self._lock = threading.Lock()

    def table_for(self, program: Program) -> Dict[int, Tuple[int, Instruction]]:
        """The (lazily filled) pc -> (word, instruction) table for ``program``."""
        digest = program.digest
        table = self._tables.get(digest)
        if table is None:
            with self._lock:
                table = self._tables.get(digest)
                if table is None:
                    if len(self._tables) >= self.max_programs:
                        self._tables.clear()
                        self._fast_tables.clear()
                    table = {}
                    self._tables[digest] = table
        return table

    def fast_table_for(self, program: Program) -> Dict[int, tuple]:
        """The (lazily filled) fast-path dispatch table for ``program``."""
        digest = program.digest
        table = self._fast_tables.get(digest)
        if table is None:
            with self._lock:
                table = self._fast_tables.get(digest)
                if table is None:
                    if len(self._fast_tables) >= self.max_programs:
                        self._tables.clear()
                        self._fast_tables.clear()
                    table = {}
                    self._fast_tables[digest] = table
        return table

    @property
    def cached_programs(self) -> int:
        return len(self._tables)

    @property
    def cached_instructions(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def clear(self) -> None:
        self._tables.clear()
        self._fast_tables.clear()


#: The shared decode cache (one per process; workers each build their own).
DECODE_CACHE = DecodedInstructionCache()


def run_program(
    program: Program,
    inputs: Optional[List[int]] = None,
    config: Optional[CpuConfig] = None,
    monitors: Optional[List[Monitor]] = None,
    pre_hooks: Optional[List[PreInstructionHook]] = None,
) -> ExecutionResult:
    """Convenience wrapper: build a :class:`Cpu`, attach monitors, run."""
    cpu = Cpu(program, inputs=inputs, config=config)
    for monitor in monitors or []:
        cpu.attach_monitor(monitor)
    for hook in pre_hooks or []:
        cpu.add_pre_instruction_hook(hook)
    return cpu.run()
