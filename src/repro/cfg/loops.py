"""Natural-loop detection.

The verifier's offline analysis identifies program loops so it can interpret
the loop metadata ``L`` produced by LO-FAT (path encodings and iteration
counts per loop).  A natural loop is induced by a back edge ``u -> v`` where
``v`` dominates ``u``; its body is every block that can reach ``u`` without
passing through ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.builder import ControlFlowGraph
from repro.cfg.dominators import compute_dominators


@dataclass
class NaturalLoop:
    """A natural loop of the CFG.

    Attributes:
        header: block start address of the loop header (entry node).
        back_edges: the (latch, header) edges that close the loop.
        body: block start addresses of every block in the loop (incl. header).
        exits: blocks outside the loop that are successors of loop blocks.
        depth: 1 for outermost loops, increasing with nesting.
        parent: header address of the enclosing loop, if any.
    """

    header: int
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    body: Set[int] = field(default_factory=set)
    exits: Set[int] = field(default_factory=set)
    depth: int = 1
    parent: Optional[int] = None

    def contains(self, block_start: int) -> bool:
        """True if the block belongs to the loop body."""
        return block_start in self.body

    @property
    def size(self) -> int:
        """Number of blocks in the loop body."""
        return len(self.body)


def _intraprocedural_edges(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Successor map restricted to intraprocedural control flow.

    Natural loops are an intraprocedural concept: call, return and indirect
    edges are dropped, and every call site gets a pseudo fall-through edge to
    its continuation block (the standard compiler treatment of calls).
    """
    from repro.cfg.builder import EdgeKind

    successors: Dict[int, Set[int]] = {block.start: set() for block in cfg.blocks}
    for edge in cfg.edges:
        if edge.kind in (EdgeKind.FALLTHROUGH, EdgeKind.BRANCH_TAKEN, EdgeKind.JUMP):
            successors[edge.src].add(edge.dst)
        elif edge.kind is EdgeKind.CALL:
            caller = cfg.block_starting_at(edge.src)
            continuation = cfg.block_containing(caller.end) if caller else None
            if continuation is not None:
                successors[edge.src].add(continuation.start)
    return successors


def _intraprocedural_dominators(
    cfg: ControlFlowGraph, successors: Dict[int, Set[int]]
) -> Dict[int, Set[int]]:
    """Dominators over the intraprocedural graph with a virtual multi-root.

    Every function entry (and the program entry) acts as a root so that loops
    inside functions that are only ever called (never jumped to) are analysed
    with their own entry as the dominator-tree root.
    """
    roots = {cfg.program.entry} | cfg.function_entries()
    roots = {root for root in roots if cfg.block_starting_at(root) is not None}

    reachable: Set[int] = set()
    worklist = list(roots)
    while worklist:
        node = worklist.pop()
        if node in reachable:
            continue
        reachable.add(node)
        worklist.extend(successors.get(node, ()))

    predecessors: Dict[int, Set[int]] = {node: set() for node in reachable}
    for src in reachable:
        for dst in successors.get(src, ()):
            if dst in reachable:
                predecessors[dst].add(src)

    dominators: Dict[int, Set[int]] = {node: set(reachable) for node in reachable}
    for root in roots:
        dominators[root] = {root}

    changed = True
    order = sorted(reachable)
    while changed:
        changed = False
        for node in order:
            if node in roots:
                continue
            preds = predecessors[node]
            if not preds:
                new_set = {node}
            else:
                new_set = set(reachable)
                for pred in preds:
                    new_set &= dominators[pred]
                new_set.add(node)
            if new_set != dominators[node]:
                dominators[node] = new_set
                changed = True
    return dominators


def find_natural_loops(cfg: ControlFlowGraph) -> List[NaturalLoop]:
    """Find all natural loops of ``cfg``, with nesting depth information."""
    successors = _intraprocedural_edges(cfg)
    dominators = _intraprocedural_dominators(cfg, successors)
    loops_by_header: Dict[int, NaturalLoop] = {}

    for src, dsts in successors.items():
        for dst in dsts:
            if src not in dominators or dst not in dominators:
                continue  # unreachable
            if dst not in dominators[src]:
                continue  # not a back edge
            loop = loops_by_header.setdefault(dst, NaturalLoop(header=dst))
            loop.back_edges.append((src, dst))
            loop.body |= _natural_loop_body_intraprocedural(successors, src, dst)

    loops = list(loops_by_header.values())

    # Exits: intraprocedural successors of body blocks outside the body.
    for loop in loops:
        for block in loop.body:
            for dst in successors.get(block, ()):
                if dst not in loop.body:
                    loop.exits.add(dst)

    # Nesting: loop A is nested in loop B if A's header is in B's body and
    # A != B.  Depth is the number of enclosing loops plus one.
    for loop in loops:
        enclosing = [
            other for other in loops
            if other is not loop and loop.header in other.body
        ]
        loop.depth = len(enclosing) + 1
        if enclosing:
            # The innermost enclosing loop is the one with the largest depth,
            # equivalently the smallest body among enclosing loops.
            parent = min(enclosing, key=lambda candidate: len(candidate.body))
            loop.parent = parent.header

    loops.sort(key=lambda loop: loop.header)
    return loops


def _natural_loop_body_intraprocedural(
    successors: Dict[int, Set[int]], latch: int, header: int
) -> Set[int]:
    """Blocks of the natural loop defined by back edge ``latch -> header``."""
    predecessors: Dict[int, Set[int]] = {}
    for src, dsts in successors.items():
        for dst in dsts:
            predecessors.setdefault(dst, set()).add(src)

    body = {header, latch}
    worklist = [latch]
    while worklist:
        node = worklist.pop()
        if node == header:
            continue
        for pred in predecessors.get(node, ()):
            if pred not in body:
                body.add(pred)
                worklist.append(pred)
    return body


def max_nesting_depth(loops: List[NaturalLoop]) -> int:
    """The deepest nesting level among ``loops`` (0 when there are none)."""
    return max((loop.depth for loop in loops), default=0)


def loop_for_block(loops: List[NaturalLoop], block_start: int) -> Optional[NaturalLoop]:
    """The innermost loop containing ``block_start``, if any."""
    candidates = [loop for loop in loops if loop.contains(block_start)]
    if not candidates:
        return None
    return max(candidates, key=lambda loop: loop.depth)
