"""Static control-flow analysis of assembled programs.

The verifier in the LO-FAT protocol performs "a one-time offline
pre-processing step to generate the CFG of S (including expected loop
execution information) by means of static or dynamic analysis" (paper §3).
This package is that pre-processing step:

* :mod:`repro.cfg.basic_blocks` -- basic-block partitioning of a program.
* :mod:`repro.cfg.builder` -- control-flow graph construction.
* :mod:`repro.cfg.dominators` -- dominator-tree computation.
* :mod:`repro.cfg.loops` -- natural-loop detection and nesting analysis.
* :mod:`repro.cfg.paths` -- edge/path validity queries used during
  attestation verification.
* :mod:`repro.cfg.superblocks` -- superblock chain formation for the
  trace-compiling execution engine.
"""

from repro.cfg.basic_blocks import BasicBlock, split_basic_blocks
from repro.cfg.builder import CfgEdge, ControlFlowGraph, EdgeKind, build_cfg
from repro.cfg.dominators import compute_dominators, dominator_tree
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.paths import EdgeValidity, PathChecker
from repro.cfg.superblocks import Superblock, form_superblocks

__all__ = [
    "BasicBlock",
    "split_basic_blocks",
    "Superblock",
    "form_superblocks",
    "CfgEdge",
    "ControlFlowGraph",
    "EdgeKind",
    "build_cfg",
    "compute_dominators",
    "dominator_tree",
    "NaturalLoop",
    "find_natural_loops",
    "EdgeValidity",
    "PathChecker",
]
