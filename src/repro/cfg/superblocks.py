"""Superblock chain formation for the trace-compiling execution engine.

A *superblock* is a chain of basic blocks that executes as one straight
line at run time: each non-final member hands control to the next either
by falling through (a non-control-flow terminator) or by a *forward,
non-linking* ``jal x0`` -- an unconditional direct jump whose transfer is
fully determined at compile time.  The block compiler
(:mod:`repro.cpu.compile`) turns each chain into a single generated step
function, so the per-instruction dispatch cost of the interpreter is paid
once per chain instead of once per instruction.

Chains deliberately stop at every transfer whose destination or outcome
is dynamic (conditional branches, calls, returns, indirect jumps) and at
every *backward* ``jal x0``: backward direct jumps are loop back edges
under LO-FAT's run-time heuristic and must stay visible to the branch
filter as chain terminators, never as chain-internal jumps.  Every block
leader heads its own chain, so chains may overlap (tail duplication);
entering a chain mid-way simply enters the chain headed there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cfg.basic_blocks import BasicBlock
from repro.isa.instructions import Instruction

#: Upper bound on chain length; keeps generated step functions small and
#: bounds the work lost when a chain exits early (``ecall`` that halts).
MAX_SUPERBLOCK_BLOCKS = 8


@dataclass(frozen=True)
class Superblock:
    """One compile-time chain of basic blocks.

    Attributes:
        head: address of the first instruction of the first member.
        blocks: the member basic blocks, in execution order.
    """

    head: int
    blocks: Tuple[BasicBlock, ...]

    @property
    def size(self) -> int:
        """Total number of instructions across all members."""
        return sum(block.size for block in self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        """All member instructions in execution order."""
        for block in self.blocks:
            for instruction in block.instructions:
                yield instruction

    def __repr__(self) -> str:
        return "Superblock(%#x, %d blocks, %d instrs)" % (
            self.head, len(self.blocks), self.size,
        )


def _chain_successor(
    block: BasicBlock, by_start: Dict[int, BasicBlock]
) -> Optional[BasicBlock]:
    """The unique compile-time successor ``block`` may chain into, if any."""
    terminator = block.terminator
    if not terminator.is_control_flow:
        # Fall-through into the next leader (the follower is a leader only
        # because something else targets it; execution itself is linear).
        return by_start.get(block.end)
    if (
        terminator.is_direct_jump
        and terminator.rd == 0
        and terminator.imm > 0
    ):
        # Forward jal x0: target static, non-linking, and -- because it is
        # strictly forward -- never a loop back edge.
        return by_start.get(terminator.address + terminator.imm)
    return None


def form_superblocks(
    blocks: Sequence[BasicBlock],
    max_blocks: int = MAX_SUPERBLOCK_BLOCKS,
) -> List[Superblock]:
    """Form one superblock chain per block leader.

    Every basic block heads exactly one chain; a chain extends through
    fall-through and forward ``jal x0`` successors until it meets a dynamic
    terminator, revisits a member (a straight-line cycle cannot occur in a
    well-formed program, but a jal chain could), or reaches ``max_blocks``.
    """
    by_start: Dict[int, BasicBlock] = {block.start: block for block in blocks}
    superblocks: List[Superblock] = []
    for block in blocks:
        chain: List[BasicBlock] = [block]
        seen = {block.start}
        current = block
        while len(chain) < max_blocks:
            successor = _chain_successor(current, by_start)
            if successor is None or successor.start in seen:
                break
            chain.append(successor)
            seen.add(successor.start)
            current = successor
        superblocks.append(Superblock(head=block.start, blocks=tuple(chain)))
    return superblocks
