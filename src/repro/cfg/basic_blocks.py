"""Basic-block partitioning.

A basic block is a maximal straight-line instruction sequence with a single
entry (its first instruction) and a single exit (its last instruction).  Block
leaders are: the program entry point, every target of a direct control-flow
transfer, every instruction that follows a control-flow instruction, and every
function symbol (so that indirectly-called functions start a block even when
no direct reference exists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction


@dataclass
class BasicBlock:
    """A single basic block.

    Attributes:
        index: dense block id in address order.
        start: address of the first instruction.
        end: address one past the last instruction.
        instructions: the decoded instructions of the block, in order.
        label: symbol name attached to the start address, if any.
    """

    index: int
    start: int
    end: int
    instructions: List[Instruction] = field(default_factory=list)
    label: Optional[str] = None

    @property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    @property
    def terminator_address(self) -> int:
        """Address of the last instruction of the block."""
        return self.end - 4

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    def contains(self, address: int) -> bool:
        """True if ``address`` is the address of an instruction in the block."""
        return self.start <= address < self.end

    def __repr__(self) -> str:
        name = self.label or ("bb_%d" % self.index)
        return "BasicBlock(%s, %#x..%#x, %d instrs)" % (
            name, self.start, self.end, self.size,
        )


def split_basic_blocks(program: Program) -> List[BasicBlock]:
    """Partition ``program`` into basic blocks in address order."""
    if not program.instructions:
        return []

    addresses = [instr.address for instr in program.instructions]
    address_set = set(addresses)
    leaders = {program.entry, program.code_base}

    for instr in program.instructions:
        if not instr.is_control_flow:
            continue
        # The instruction following any control-flow instruction is a leader.
        follower = instr.address + 4
        if follower in address_set:
            leaders.add(follower)
        # Direct targets are leaders.
        if instr.is_conditional_branch or instr.is_direct_jump:
            target = instr.address + instr.imm
            if target in address_set:
                leaders.add(target)

    # Every code symbol starts a block; this covers indirect call targets.
    for name, value in program.symbols.items():
        if value in address_set:
            leaders.add(value)

    symbol_by_address: Dict[int, str] = {}
    for name, value in sorted(program.symbols.items()):
        symbol_by_address.setdefault(value, name)

    sorted_leaders = sorted(leader for leader in leaders if leader in address_set)
    blocks: List[BasicBlock] = []
    leader_set = set(sorted_leaders)

    current: Optional[BasicBlock] = None
    for instr in program.instructions:
        address = instr.address
        if address in leader_set or current is None:
            current = BasicBlock(
                index=len(blocks),
                start=address,
                end=address,
                label=symbol_by_address.get(address),
            )
            blocks.append(current)
        current.instructions.append(instr)
        current.end = address + 4
        if instr.is_control_flow:
            current = None

    return blocks
