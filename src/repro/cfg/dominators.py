"""Dominator analysis.

Dominators are needed to identify natural loops: an edge ``u -> v`` is a back
edge (and therefore forms a loop with header ``v``) exactly when ``v``
dominates ``u``.  We use the classic iterative data-flow formulation, which is
simple and fast enough for the small embedded programs the paper targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.builder import ControlFlowGraph


def compute_dominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Return, for every reachable block start, the set of its dominators.

    The entry block is dominated only by itself.  Unreachable blocks are not
    included in the result.
    """
    entry = cfg.entry_block.start
    # Restrict the analysis to blocks reachable from the entry.
    reachable: Set[int] = set()
    worklist = [entry]
    while worklist:
        node = worklist.pop()
        if node in reachable:
            continue
        reachable.add(node)
        for edge in cfg.successors(node):
            if edge.dst not in reachable:
                worklist.append(edge.dst)

    dominators: Dict[int, Set[int]] = {node: set(reachable) for node in reachable}
    dominators[entry] = {entry}

    changed = True
    order = sorted(reachable)
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            preds = [
                edge.src for edge in cfg.predecessors(node) if edge.src in reachable
            ]
            if not preds:
                new_set = {node}
            else:
                new_set = set(reachable)
                for pred in preds:
                    new_set &= dominators[pred]
                new_set.add(node)
            if new_set != dominators[node]:
                dominators[node] = new_set
                changed = True
    return dominators


def immediate_dominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Return the immediate dominator of every reachable block.

    The entry block maps to ``None``.
    """
    dominators = compute_dominators(cfg)
    entry = cfg.entry_block.start
    idoms: Dict[int, Optional[int]] = {entry: None}
    for node, dom_set in dominators.items():
        if node == entry:
            continue
        strict = dom_set - {node}
        # The immediate dominator is the strict dominator that is dominated by
        # every other strict dominator.
        idom = None
        for candidate in strict:
            if all(candidate in dominators[other] for other in strict):
                idom = candidate
                break
        idoms[node] = idom
    return idoms


def dominator_tree(cfg: ControlFlowGraph) -> Dict[int, List[int]]:
    """Return the dominator tree as a parent -> children adjacency map."""
    idoms = immediate_dominators(cfg)
    tree: Dict[int, List[int]] = {}
    for node, idom in idoms.items():
        if idom is not None:
            tree.setdefault(idom, []).append(node)
    for children in tree.values():
        children.sort()
    return tree


def dominates(dominators: Dict[int, Set[int]], a: int, b: int) -> bool:
    """True if block ``a`` dominates block ``b`` (given a dominator map)."""
    return a in dominators.get(b, set())
