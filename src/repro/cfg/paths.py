"""Edge and path validity queries used by the attestation verifier.

After receiving the attestation report, the verifier "checks whether the
reported path P resembles a valid path in CFG under input i" (paper §3).
Concretely the verifier needs two capabilities:

* decide whether a single run-time transfer ``(Src, Dest)`` is consistent
  with the statically-computed CFG (a *valid edge*), and
* decide whether a whole sequence of transfers is a connected path through
  the CFG starting from the program entry.

:class:`PathChecker` provides both.  The checker works at instruction-address
granularity (the granularity of LO-FAT's ``(Src, Dest)`` pairs) and maps the
addresses back onto basic blocks internally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.cfg.builder import ControlFlowGraph, EdgeKind
from repro.cpu.trace import BranchKind, classify_branch


class EdgeValidity(enum.Enum):
    """Verdict for a single reported (Src, Dest) transfer."""

    VALID = "valid"
    VALID_INDIRECT = "valid_indirect"
    INVALID_SOURCE = "invalid_source"
    INVALID_TARGET = "invalid_target"
    NOT_AN_EDGE = "not_an_edge"

    @property
    def ok(self) -> bool:
        return self in (EdgeValidity.VALID, EdgeValidity.VALID_INDIRECT)


@dataclass
class PathCheckResult:
    """Outcome of checking a full transfer sequence against the CFG."""

    valid: bool
    checked_edges: int
    first_violation: Optional[Tuple[int, int]] = None
    violation_index: Optional[int] = None
    verdicts: Optional[List[EdgeValidity]] = None

    def __bool__(self) -> bool:
        return self.valid


class PathChecker:
    """Validates reported control-flow transfers against a CFG."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._instruction_addresses: Set[int] = {
            instr.address for instr in cfg.program.instructions
        }
        self._function_entries = cfg.function_entries()
        # Return sites: the instruction following any call.
        self._return_sites: Set[int] = set()
        for block in cfg.blocks:
            terminator = block.terminator
            kind = classify_branch(terminator)
            if kind.is_linking:
                follower = block.end
                if follower in self._instruction_addresses:
                    self._return_sites.add(follower)

    # ----------------------------------------------------------- single edge
    def classify_edge(self, src: int, dst: int) -> EdgeValidity:
        """Check one run-time transfer ``src -> dst`` against the CFG."""
        if src not in self._instruction_addresses:
            return EdgeValidity.INVALID_SOURCE
        if dst not in self._instruction_addresses:
            return EdgeValidity.INVALID_TARGET

        src_block = self.cfg.block_containing(src)
        terminator = src_block.terminator
        if terminator.address != src:
            # A transfer can only originate from a block terminator.
            return EdgeValidity.NOT_AN_EDGE

        kind = classify_branch(terminator)
        if kind is BranchKind.NOT_CONTROL_FLOW:
            return EdgeValidity.NOT_AN_EDGE

        if kind is BranchKind.CONDITIONAL:
            taken_target = terminator.address + terminator.imm
            fallthrough = terminator.address + 4
            if dst in (taken_target, fallthrough):
                return EdgeValidity.VALID
            return EdgeValidity.NOT_AN_EDGE

        if kind in (BranchKind.DIRECT_JUMP, BranchKind.DIRECT_CALL):
            if dst == terminator.address + terminator.imm:
                return EdgeValidity.VALID
            return EdgeValidity.NOT_AN_EDGE

        if kind is BranchKind.RETURN:
            # A return must land on the instruction after some call site.
            if dst in self._return_sites:
                return EdgeValidity.VALID_INDIRECT
            return EdgeValidity.NOT_AN_EDGE

        # Indirect jumps and calls: dst must be a known function entry (the
        # conservative CFI-style policy a static verifier can enforce).
        if dst in self._function_entries:
            return EdgeValidity.VALID_INDIRECT
        return EdgeValidity.NOT_AN_EDGE

    # ------------------------------------------------------------ full path
    def check_path(
        self,
        transfers: Sequence[Tuple[int, int]],
        record_verdicts: bool = False,
    ) -> PathCheckResult:
        """Check a whole sequence of (Src, Dest) transfers.

        Two properties are enforced:

        1. every transfer is a valid CFG edge (per :meth:`classify_edge`), and
        2. consecutive transfers are *connected*: after landing at ``Dest``,
           control must reach the next ``Src`` by falling through straight-line
           code only (no intervening control-flow instruction), which is what
           a complete, unfiltered branch trace guarantees.
        """
        verdicts: List[EdgeValidity] = []
        previous_dst: Optional[int] = None

        for index, (src, dst) in enumerate(transfers):
            verdict = self.classify_edge(src, dst)
            if record_verdicts:
                verdicts.append(verdict)
            if not verdict.ok:
                return PathCheckResult(
                    valid=False,
                    checked_edges=index + 1,
                    first_violation=(src, dst),
                    violation_index=index,
                    verdicts=verdicts if record_verdicts else None,
                )
            if previous_dst is not None and not self._straight_line(previous_dst, src):
                return PathCheckResult(
                    valid=False,
                    checked_edges=index + 1,
                    first_violation=(src, dst),
                    violation_index=index,
                    verdicts=verdicts if record_verdicts else None,
                )
            previous_dst = dst

        return PathCheckResult(
            valid=True,
            checked_edges=len(transfers),
            verdicts=verdicts if record_verdicts else None,
        )

    def _straight_line(self, start: int, end: int) -> bool:
        """True if control can flow from ``start`` to ``end`` without branching.

        ``start`` is the destination of the previous transfer and ``end`` the
        source of the next one, so every instruction in between must be a
        non-control-flow instruction and the addresses must increase by 4.
        """
        if end < start:
            return False
        if (end - start) % 4 != 0:
            return False
        address = start
        while address < end:
            block = self.cfg.block_containing(address)
            if block is None:
                return False
            instr = block.instructions[(address - block.start) // 4]
            if instr.is_control_flow:
                return False
            address += 4
        return True

    # ------------------------------------------------------- loop utilities
    def enumerate_loop_paths(
        self, header: int, body: Set[int], limit: int = 4096
    ) -> List[Tuple[int, ...]]:
        """Enumerate simple block paths header -> ... -> header within a loop.

        Used by the verifier to pre-compute the set of legal loop paths whose
        encodings may appear in the metadata ``L``.  ``limit`` bounds the
        number of enumerated paths to guard against combinatorial explosion on
        synthetic worst-case CFGs.
        """
        paths: List[Tuple[int, ...]] = []
        stack: List[Tuple[int, Tuple[int, ...]]] = [(header, (header,))]
        while stack and len(paths) < limit:
            node, path = stack.pop()
            for edge in self.cfg.successors(node):
                dst = edge.dst
                if dst == header:
                    paths.append(path + (header,))
                    continue
                if dst not in body or dst in path:
                    continue
                stack.append((dst, path + (dst,)))
        return paths
