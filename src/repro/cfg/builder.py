"""Control-flow graph construction.

The CFG is the verifier's reference model of legal program behaviour.  Nodes
are basic blocks; edges carry a kind (taken branch, fall-through, call,
return, indirect) so the verifier can reason about which run-time transfers
are statically expected and which require dynamic information (indirect
branches, returns).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.basic_blocks import BasicBlock, split_basic_blocks
from repro.cpu.trace import BranchKind, classify_branch
from repro.isa.assembler import Program


class EdgeKind(enum.Enum):
    """Why an edge exists in the CFG."""

    FALLTHROUGH = "fallthrough"
    BRANCH_TAKEN = "branch_taken"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    INDIRECT = "indirect"


@dataclass(frozen=True)
class CfgEdge:
    """A directed edge between two basic blocks (by block start address)."""

    src: int
    dst: int
    kind: EdgeKind

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.src, self.dst)


class ControlFlowGraph:
    """Basic blocks plus directed edges, with convenience queries."""

    def __init__(self, program: Program, blocks: List[BasicBlock]) -> None:
        self.program = program
        self.blocks = blocks
        self.block_by_start: Dict[int, BasicBlock] = {b.start: b for b in blocks}
        self.edges: List[CfgEdge] = []
        self._successors: Dict[int, List[CfgEdge]] = {}
        self._predecessors: Dict[int, List[CfgEdge]] = {}
        self._address_to_block: Dict[int, BasicBlock] = {}
        for block in blocks:
            for instr in block.instructions:
                self._address_to_block[instr.address] = block

    # ------------------------------------------------------------ mutation
    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        """Add an edge between block start addresses (idempotent)."""
        edge = CfgEdge(src, dst, kind)
        if edge in self._successors.get(src, []):
            return
        self.edges.append(edge)
        self._successors.setdefault(src, []).append(edge)
        self._predecessors.setdefault(dst, []).append(edge)

    # ------------------------------------------------------------- queries
    def block_containing(self, address: int) -> Optional[BasicBlock]:
        """The block whose instruction range covers ``address``."""
        return self._address_to_block.get(address)

    def block_starting_at(self, address: int) -> Optional[BasicBlock]:
        """The block that starts exactly at ``address``."""
        return self.block_by_start.get(address)

    def successors(self, block_start: int) -> List[CfgEdge]:
        """Outgoing edges of the block starting at ``block_start``."""
        return list(self._successors.get(block_start, []))

    def predecessors(self, block_start: int) -> List[CfgEdge]:
        """Incoming edges of the block starting at ``block_start``."""
        return list(self._predecessors.get(block_start, []))

    def successor_starts(self, block_start: int) -> Set[int]:
        """Start addresses of all statically-known successors."""
        return {edge.dst for edge in self._successors.get(block_start, [])}

    @property
    def entry_block(self) -> BasicBlock:
        """The block containing the program entry point."""
        block = self.block_containing(self.program.entry)
        if block is None:
            raise ValueError("entry point has no basic block")
        return block

    @property
    def node_starts(self) -> List[int]:
        """Start addresses of all blocks, in address order."""
        return [block.start for block in self.blocks]

    def function_entries(self) -> Set[int]:
        """Addresses that may be entered as functions.

        Includes the program entry, the target of every direct call edge and
        every target of the (conservative) indirect edges -- i.e. the set the
        builder used as candidate indirect-call targets.
        """
        entries = {self.program.entry}
        for edge in self.edges:
            if edge.kind in (EdgeKind.CALL, EdgeKind.INDIRECT):
                entries.add(edge.dst)
        return entries

    def edge_set(self) -> Set[Tuple[int, int]]:
        """All (src block start, dst block start) pairs."""
        return {edge.pair for edge in self.edges}

    def to_dot(self) -> str:
        """Render the CFG in Graphviz dot format (for reports / debugging)."""
        lines = ["digraph cfg {", "  node [shape=box, fontname=monospace];"]
        for block in self.blocks:
            label = block.label or ("bb_%d" % block.index)
            lines.append(
                '  "%#x" [label="%s\\n%#x..%#x"];' % (block.start, label, block.start, block.end)
            )
        for edge in self.edges:
            lines.append('  "%#x" -> "%#x" [label="%s"];' % (edge.src, edge.dst, edge.kind.value))
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> dict:
        """Basic statistics used in reports."""
        kind_counts: Dict[str, int] = {}
        for edge in self.edges:
            kind_counts[edge.kind.value] = kind_counts.get(edge.kind.value, 0) + 1
        return {
            "blocks": len(self.blocks),
            "edges": len(self.edges),
            "edges_by_kind": kind_counts,
            "functions": len(self.function_entries()),
        }


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the control-flow graph of ``program``.

    Direct branches and jumps produce precise edges.  Indirect jumps
    (``jalr``) produce:

    * a RETURN edge to every block following a call of the enclosing function
      when the instruction is a canonical return, and
    * INDIRECT edges to every function entry otherwise (the conservative
      over-approximation a static analyser without pointer analysis uses).
    """
    blocks = split_basic_blocks(program)
    cfg = ControlFlowGraph(program, blocks)
    address_set = {instr.address for instr in program.instructions}

    # First pass: direct edges and call-site bookkeeping.
    call_sites: List[Tuple[BasicBlock, int]] = []  # (caller block, target address)
    for block in blocks:
        terminator = block.terminator
        kind = classify_branch(terminator)
        follower = block.end

        if kind is BranchKind.NOT_CONTROL_FLOW:
            if follower in address_set:
                target_block = cfg.block_containing(follower)
                if target_block is not None:
                    cfg.add_edge(block.start, target_block.start, EdgeKind.FALLTHROUGH)
            continue

        if kind is BranchKind.CONDITIONAL:
            target = terminator.address + terminator.imm
            if target in address_set:
                cfg.add_edge(block.start, cfg.block_containing(target).start,
                             EdgeKind.BRANCH_TAKEN)
            if follower in address_set:
                cfg.add_edge(block.start, cfg.block_containing(follower).start,
                             EdgeKind.FALLTHROUGH)
            continue

        if kind in (BranchKind.DIRECT_JUMP, BranchKind.DIRECT_CALL):
            target = terminator.address + terminator.imm
            if target in address_set:
                edge_kind = EdgeKind.CALL if kind is BranchKind.DIRECT_CALL else EdgeKind.JUMP
                cfg.add_edge(block.start, cfg.block_containing(target).start, edge_kind)
                if kind is BranchKind.DIRECT_CALL:
                    call_sites.append((block, target))
            continue

        # Indirect transfers handled in the second pass.

    # Call continuation map: function entry -> set of return-site block starts.
    continuations: Dict[int, Set[int]] = {}
    for caller_block, target in call_sites:
        return_site = cfg.block_containing(caller_block.end)
        if return_site is not None:
            continuations.setdefault(target, set()).add(return_site.start)

    function_entries = {program.entry}
    for _, target in call_sites:
        block = cfg.block_containing(target)
        if block is not None:
            function_entries.add(block.start)
    # Symbols that look like functions (referenced by address in data, or
    # simply labelled) are also candidate indirect-call targets.
    for name, value in program.symbols.items():
        if value in address_set and not name.startswith("."):
            block = cfg.block_starting_at(value)
            if block is not None and block.label == name:
                function_entries.add(value)

    # Second pass: indirect transfers.
    for block in blocks:
        terminator = block.terminator
        kind = classify_branch(terminator)
        if kind is BranchKind.RETURN:
            # Return edges: to every continuation of every function that could
            # contain this block.  Without interprocedural range analysis we
            # conservatively add edges to all call continuations.
            for sites in continuations.values():
                for site in sites:
                    cfg.add_edge(block.start, site, EdgeKind.RETURN)
        elif kind in (BranchKind.INDIRECT_JUMP, BranchKind.INDIRECT_CALL):
            for entry in sorted(function_entries):
                cfg.add_edge(block.start, entry, EdgeKind.INDIRECT)
            if kind is BranchKind.INDIRECT_CALL:
                return_site = cfg.block_containing(block.end)
                if return_site is not None:
                    for entry in sorted(function_entries):
                        continuations.setdefault(entry, set()).add(return_site.start)

    return cfg
