"""Error hierarchy of the workload compiler.

Every compiler error derives from :class:`LangError` (a ``ValueError``, so
CLI surfaces and campaign loaders can treat malformed programs like any other
malformed user input).  The subclasses mark the pipeline stage that rejected
the program, and every error carries the 1-based source line when known.
"""

from __future__ import annotations

from typing import Optional


class LangError(ValueError):
    """Base class for all workload-language compilation errors."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class LexError(LangError):
    """Raised for characters or literals the tokenizer cannot consume."""


class ParseError(LangError):
    """Raised when the token stream does not match the grammar."""


class SemanticError(LangError):
    """Raised for well-formed programs that violate the language rules
    (undeclared names, arity mismatches, assignment to arrays, ...)."""


class CodegenError(LangError):
    """Raised when code generation cannot honour its contract (expression
    depth beyond the temporary-register file, metadata mismatch, ...)."""
