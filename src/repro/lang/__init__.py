"""The workload compiler: a tiny structured language targeting the ISA.

The hand-assembled workload corpus caps scenario diversity; this package
removes the cap.  It compiles a small C-like language (functions, ``if`` /
``else``, ``while``, local arrays, integer expressions, calls) to RV32
assembly for :mod:`repro.isa`, and -- because the code generator only ever
emits structured control flow -- produces the program's basic-block leaders
and natural-loop nesting as a compilation by-product, checked against the
verifier's own :mod:`repro.cfg` analysis.

On top of the compiler, :mod:`repro.lang.families` generates parameterized
workload *families* (loop nesting depth, branch density, call-graph shape,
array sizes) with paired Python reference models, seeded through the same
``derive_rng`` plumbing as the adversary tooling; :mod:`repro.lang.ports`
re-implements hand-assembled workloads in the language and pins their
behaviour against the originals.  See docs/LANG.md.
"""

from repro.lang.codegen import (
    BUILTINS,
    CodeGenerator,
    CompiledProgram,
    LoopInfo,
    compile_source,
)
from repro.lang.errors import (
    CodegenError,
    LangError,
    LexError,
    ParseError,
    SemanticError,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse

__all__ = [
    "BUILTINS",
    "CodeGenerator",
    "CodegenError",
    "CompiledProgram",
    "LangError",
    "LexError",
    "LoopInfo",
    "ParseError",
    "SemanticError",
    "Token",
    "compile_source",
    "parse",
    "tokenize",
]
