"""Tokenizer for the workload language.

The language is deliberately small: identifiers, integer literals (decimal,
hex, binary), a fixed keyword set, and single/double-character operators.
Comments run from ``//`` or ``#`` to the end of the line.  The lexer is a
single forward scan producing :class:`Token` objects with 1-based line
numbers for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.lang.errors import LexError

#: Reserved words of the language.
KEYWORDS = frozenset({
    "fn", "var", "array", "if", "else", "while", "return",
    "break", "continue",
})

#: Two-character operators, matched before the single-character ones.
TWO_CHAR_OPS = (
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
)

#: Single-character operators and punctuation.
ONE_CHAR_OPS = "+-*/%&|^~!<>=()[]{},;"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: "name", "int", "keyword", "op" or "eof".
        text: the token's source text ("" for eof).
        value: the integer value for "int" tokens, 0 otherwise.
        line: 1-based source line the token starts on.
    """

    kind: str
    text: str
    value: int
    line: int

    def __repr__(self) -> str:  # compact, for parser error messages
        if self.kind == "eof":
            return "end of input"
        return "%r" % self.text


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; always ends with one "eof" token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    length = len(source)

    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if _is_name_start(ch):
            start = i
            while i < length and _is_name_char(source[i]):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, 0, line))
            continue
        if ch.isdigit():
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            try:
                value = int(text, 0)
            except ValueError:
                raise LexError("invalid integer literal %r" % text, line)
            if value > 0xFFFFFFFF:
                raise LexError(
                    "integer literal %r does not fit in 32 bits" % text, line)
            tokens.append(Token("int", text, value, line))
            continue
        two = source[i:i + 2]
        if two in TWO_CHAR_OPS:
            tokens.append(Token("op", two, 0, line))
            i += 2
            continue
        if ch in ONE_CHAR_OPS:
            tokens.append(Token("op", ch, 0, line))
            i += 1
            continue
        raise LexError("unexpected character %r" % ch, line)

    tokens.append(Token("eof", "", 0, line))
    return tokens
