"""Typed abstract syntax tree of the workload language.

The tree is deliberately flat and explicit: one dataclass per construct, all
carrying the 1-based source line for diagnostics.  Expression nodes gain a
``type`` annotation ("int" or "array") during the semantic pass that code
generation runs before emitting anything; statements have no type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# --------------------------------------------------------------- expressions
@dataclass
class Expr:
    """Base class for expressions; ``type`` is filled by the semantic pass."""

    line: int
    type: str = field(default="int", init=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class Name(Expr):
    """A variable, parameter or array reference."""

    name: str = ""


@dataclass
class Unary(Expr):
    """Unary ``-``, ``!`` or ``~``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """A binary operator application (including ``&&``/``||``)."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A function call; ``read``/``print``/``printc`` are builtin callees."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[index]``: word-indexed load from an array or pointer value."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


# ---------------------------------------------------------------- statements
@dataclass
class Stmt:
    line: int


@dataclass
class VarDecl(Stmt):
    """``var name = expr;`` -- declares and initialises a scalar local."""

    name: str = ""
    value: Optional[Expr] = None


@dataclass
class ArrayDecl(Stmt):
    """``array name[N];`` -- declares a zero-initialised local word array."""

    name: str = ""
    size: int = 0


@dataclass
class Assign(Stmt):
    """``name = expr;`` -- assignment to a scalar local or parameter."""

    name: str = ""
    value: Optional[Expr] = None


@dataclass
class IndexAssign(Stmt):
    """``base[index] = expr;`` -- word store through an array or pointer."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: Optional[List[Stmt]] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    """``return;`` or ``return expr;`` (a bare return yields 0)."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (usually a call)."""

    value: Optional[Expr] = None


# ------------------------------------------------------------------- program
@dataclass
class Function:
    name: str
    params: List[str]
    body: List[Stmt]
    line: int


@dataclass
class ProgramAst:
    """A parsed program: an ordered list of function definitions."""

    functions: List[Function]
