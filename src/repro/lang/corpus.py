"""Golden corpus of compiled workload-language programs (drift guard).

Mirrors the adversary regression corpus pattern
(:mod:`repro.adversary.fuzz`): a deterministic set of programs is checked
into ``tests/data/lang_corpus/`` -- language source, generated assembly and
a manifest of digests, CFG metadata, inputs and expected outputs -- and a
tier-1 test recompiles every entry and fails on any divergence.  The corpus
therefore pins three things at once:

* **codegen stability** -- an innocent-looking compiler change that alters
  generated code shows up as an assembly/digest diff, reviewed like any
  other golden-file change (regenerate with
  ``python -m repro.lang.corpus tests/data/lang_corpus``);
* **the metadata contract** -- every recompiled entry re-verifies predicted
  block leaders and loop nesting against :mod:`repro.cfg` analysis;
* **semantics** -- every entry still produces its recorded output.

Membership spans the compiler's surface: the three workload ports, one
member of each family axis, and two hand-written showcase programs
(recursion and gcd) that no family generates.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List

from repro.lang.codegen import CompiledProgram, compile_source
from repro.lang.families import get_family, member_inputs
from repro.lang.ports import PORTS

#: Seed pinning the corpus members' input vectors (the project default).
CORPUS_SEED = 20170618

GCD_SOURCE = """\
// showcase: Euclid's algorithm plus a data-driven loop around it
fn gcd(a, b) {
    while (b != 0) {
        var t = b;
        b = a % b;
        a = t;
    }
    return a;
}
fn main() {
    var n = read();
    var acc = 0;
    var i = 1;
    while (i <= n) {
        acc = acc + gcd(12 * i, 18);
        i = i + 1;
    }
    print(acc);
    printc(10);
    return 0;
}
"""

FIB_SOURCE = """\
// showcase: naive recursion (call depth the families never produce)
fn fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main() {
    print(fib(read()));
    printc(10);
    return 0;
}
"""


@dataclass(frozen=True)
class CorpusEntry:
    """One golden program: source, pinned binary identity and behaviour."""

    name: str
    source: str
    assembly: str
    digest: str
    block_leaders: List[int]
    loops: List[dict]
    inputs: List[int]
    expected_output: str

    @staticmethod
    def from_compiled(compiled: CompiledProgram, inputs: List[int],
                      expected_output: str) -> "CorpusEntry":
        return CorpusEntry(
            name=compiled.name,
            source=compiled.source,
            assembly=compiled.assembly,
            digest=compiled.program.digest,
            block_leaders=list(compiled.block_leaders),
            loops=[{"label": loop.header_label, "header": loop.header,
                    "depth": loop.depth, "function": loop.function}
                   for loop in compiled.loops],
            inputs=list(inputs),
            expected_output=expected_output,
        )


def _gcd_reference(inputs: List[int]) -> str:
    import math
    return "%d\n" % sum(math.gcd(12 * i, 18) for i in range(1, inputs[0] + 1))


def _fib_reference(inputs: List[int]) -> str:
    a, b = 0, 1
    for _ in range(inputs[0]):
        a, b = b, a + b
    return "%d\n" % a


def build_corpus() -> List[CorpusEntry]:
    """The deterministic golden corpus (pure function of the sources)."""
    entries: List[CorpusEntry] = []

    from repro.workloads import get_workload

    for port_name in sorted(PORTS):
        compiled = compile_source(PORTS[port_name][1], name=port_name,
                                  verify=True)
        original = get_workload(PORTS[port_name][0])
        entries.append(CorpusEntry.from_compiled(
            compiled, original.inputs, original.expected_output))

    for family_name, params in (
        ("nest", {"depth": 2, "iters": 3}),
        ("nest", {"depth": 4, "iters": 2}),
        ("branchy", {"branches": 4, "filler": 3}),
        ("calls", {"shape": "chain", "depth": 3}),
        ("calls", {"shape": "tree", "depth": 3}),
        ("arrays", {"size": 16, "window": 4}),
    ):
        family = get_family(family_name)
        compiled = compile_source(family.source(params),
                                  name=family.member_name(params),
                                  verify=True)
        inputs = member_inputs(family, params, CORPUS_SEED)
        entries.append(CorpusEntry.from_compiled(
            compiled, inputs, family.reference(params, inputs)))

    for name, source, inputs, reference in (
        ("showcase_gcd", GCD_SOURCE, [9], _gcd_reference),
        ("showcase_fib", FIB_SOURCE, [15], _fib_reference),
    ):
        compiled = compile_source(source, name=name, verify=True)
        entries.append(CorpusEntry.from_compiled(
            compiled, inputs, reference(inputs)))

    return entries


def write_corpus(directory: str) -> List[str]:
    """Write the golden corpus to ``directory`` (sources + manifest)."""
    os.makedirs(directory, exist_ok=True)
    manifest: Dict[str, dict] = {}
    written: List[str] = []
    for entry in build_corpus():
        source_file = entry.name + ".lang"
        assembly_file = entry.name + ".s"
        with open(os.path.join(directory, source_file), "w") as handle:
            handle.write(entry.source)
        with open(os.path.join(directory, assembly_file), "w") as handle:
            handle.write(entry.assembly)
        manifest[entry.name] = {
            "source": source_file,
            "assembly": assembly_file,
            "digest": entry.digest,
            "block_leaders": entry.block_leaders,
            "loops": entry.loops,
            "inputs": entry.inputs,
            "expected_output": entry.expected_output,
        }
        written += [source_file, assembly_file]
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return written


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Load a corpus previously written by :func:`write_corpus`."""
    with open(os.path.join(directory, "manifest.json")) as handle:
        manifest = json.load(handle)
    entries: List[CorpusEntry] = []
    for name in sorted(manifest):
        meta = manifest[name]
        with open(os.path.join(directory, meta["source"])) as handle:
            source = handle.read()
        with open(os.path.join(directory, meta["assembly"])) as handle:
            assembly = handle.read()
        entries.append(CorpusEntry(
            name=name,
            source=source,
            assembly=assembly,
            digest=meta["digest"],
            block_leaders=list(meta["block_leaders"]),
            loops=list(meta["loops"]),
            inputs=list(meta["inputs"]),
            expected_output=meta["expected_output"],
        ))
    return entries


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "tests/data/lang_corpus"
    files = write_corpus(target)
    print("wrote %d files + manifest.json to %s" % (len(files), target))
