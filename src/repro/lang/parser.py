"""Recursive-descent parser for the workload language.

Grammar (EBNF; see docs/LANG.md for the full reference):

    program    := function*
    function   := "fn" NAME "(" [ NAME { "," NAME } ] ")" block
    block      := "{" statement* "}"
    statement  := "var" NAME "=" expr ";"
                | "array" NAME "[" INT "]" ";"
                | "if" "(" expr ")" block [ "else" (block | if-statement) ]
                | "while" "(" expr ")" block
                | "return" [ expr ] ";"
                | "break" ";"
                | "continue" ";"
                | expr [ "=" expr ] ";"        (assignment when expr is an lvalue)

Expressions use conventional C precedence, lowest first:
``||`` < ``&&`` < ``|`` < ``^`` < ``&`` < ``== !=`` < ``< <= > >=``
< ``<< >>`` < ``+ -`` < ``* / %`` < unary ``- ! ~`` < postfix call/index.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.astnodes import (
    ArrayDecl, Assign, Binary, Break, Call, Continue, Expr, ExprStmt,
    Function, If, Index, IndexAssign, IntLiteral, Name, ProgramAst, Return,
    Stmt, Unary, VarDecl, While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

#: Binary operator precedence levels, lowest binding first.
_PRECEDENCE = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_UNARY_OPS = ("-", "!", "~")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------- plumbing
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(
                "expected %r, got %r" % (expected, self.current),
                self.current.line,
            )
        return self.advance()

    # -------------------------------------------------------------- program
    def parse_program(self) -> ProgramAst:
        functions: List[Function] = []
        while not self.check("eof"):
            functions.append(self.parse_function())
        if not functions:
            raise ParseError("program defines no functions", 1)
        return ProgramAst(functions=functions)

    def parse_function(self) -> Function:
        start = self.expect("keyword", "fn")
        name = self.expect("name").text
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("name").text)
            while self.accept("op", ","):
                params.append(self.expect("name").text)
        self.expect("op", ")")
        body = self.parse_block()
        return Function(name=name, params=params, body=body, line=start.line)

    def parse_block(self) -> List[Stmt]:
        self.expect("op", "{")
        statements: List[Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ParseError("unterminated block", self.current.line)
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return statements

    # ------------------------------------------------------------ statements
    def parse_statement(self) -> Stmt:
        token = self.current
        if token.kind == "keyword":
            if token.text == "var":
                return self.parse_var_decl()
            if token.text == "array":
                return self.parse_array_decl()
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return Return(line=token.line, value=value)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return Continue(line=token.line)
            raise ParseError("unexpected keyword %r" % token.text, token.line)
        return self.parse_expr_or_assign()

    def parse_var_decl(self) -> VarDecl:
        token = self.expect("keyword", "var")
        name = self.expect("name").text
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("op", ";")
        return VarDecl(line=token.line, name=name, value=value)

    def parse_array_decl(self) -> ArrayDecl:
        token = self.expect("keyword", "array")
        name = self.expect("name").text
        self.expect("op", "[")
        size = self.expect("int")
        self.expect("op", "]")
        self.expect("op", ";")
        return ArrayDecl(line=token.line, name=name, size=size.value)

    def parse_if(self) -> If:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: Optional[List[Stmt]] = None
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):  # else-if chains without braces
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return If(line=token.line, cond=cond, then_body=then_body,
                  else_body=else_body)

    def parse_while(self) -> While:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_block()
        return While(line=token.line, cond=cond, body=body)

    def parse_expr_or_assign(self) -> Stmt:
        expr = self.parse_expr()
        if self.accept("op", "="):
            value = self.parse_expr()
            self.expect("op", ";")
            if isinstance(expr, Name):
                return Assign(line=expr.line, name=expr.name, value=value)
            if isinstance(expr, Index):
                return IndexAssign(line=expr.line, base=expr.base,
                                   index=expr.index, value=value)
            raise ParseError(
                "assignment target must be a variable or an index expression",
                expr.line,
            )
        self.expect("op", ";")
        return ExprStmt(line=expr.line, value=expr)

    # ----------------------------------------------------------- expressions
    def parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        operators = _PRECEDENCE[level]
        while self.current.kind == "op" and self.current.text in operators:
            op = self.advance()
            right = self._parse_binary(level + 1)
            left = Binary(line=op.line, op=op.text, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        token = self.current
        if token.kind == "op" and token.text in _UNARY_OPS:
            self.advance()
            operand = self._parse_unary()
            return Unary(line=token.line, op=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.check("op", "("):
                if not isinstance(expr, Name):
                    raise ParseError("only named functions can be called",
                                     self.current.line)
                self.advance()
                args: List[Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                expr = Call(line=expr.line, callee=expr.name, args=args)
            elif self.check("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = Index(line=expr.line, base=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return IntLiteral(line=token.line, value=token.value)
        if token.kind == "name":
            self.advance()
            return Name(line=token.line, name=token.text)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression, got %r" % token, token.line)


def parse(source: str) -> ProgramAst:
    """Tokenize and parse ``source`` into a :class:`ProgramAst`."""
    return Parser(tokenize(source)).parse_program()
