"""Hand-assembled workloads re-implemented in the workload language.

Three of the original assembly workloads -- bubble sort, word-wise CRC-32
and binary search -- ported to :mod:`repro.lang` and registered alongside
the originals under ``lang_``-prefixed names.  The ports compute the same
function over the same input convention, so their *outputs* must match the
originals' reference models exactly, and their protocol verdicts must agree
under every attestation scheme (pinned by ``tests/test_lang_ports.py``).

The measurements themselves necessarily differ -- different instruction
sequences hash to different values -- which is precisely what makes the
ports useful: they double the program population exercising each scheme's
loop and branch handling without duplicating any binary.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.codegen import CompiledProgram, compile_source
from repro.workloads.common import Workload, register_workload
from repro.workloads.search import TABLE

BUBBLE_SORT_SOURCE = """\
// bubble sort: read n values, sort ascending, print space separated
fn main() {
    var n = read();
    array a[64];
    var i = 0;
    while (i < n) {
        a[i] = read();
        i = i + 1;
    }
    i = 0;
    while (i < n - 1) {
        var j = 0;
        while (j < n - i - 1) {
            if (a[j] > a[j + 1]) {
                var t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
            j = j + 1;
        }
        i = i + 1;
    }
    i = 0;
    while (i < n) {
        print(a[i]);
        printc(32);
        i = i + 1;
    }
    return 0;
}
"""

CRC32_SOURCE = """\
// word-wise reflected CRC-32 (poly 0xEDB88320) over n input words
fn main() {
    var n = read();
    var crc = -1;
    var w = 0;
    while (w < n) {
        crc = crc ^ read();
        var bits = 32;
        while (bits > 0) {
            var low = crc & 1;
            crc = crc >> 1;      // logical shift, like the original's srli
            if (low) {
                crc = crc ^ 0xEDB88320;
            }
            bits = bits - 1;
        }
        w = w + 1;
    }
    print(~crc);
    return 0;
}
"""

_TABLE_FILL = "\n".join(
    "    t[%d] = %d;" % (index, value) for index, value in enumerate(TABLE)
)

BINARY_SEARCH_SOURCE = """\
// binary search: the original's 16-entry prime table, filled locally
fn main() {{
    var n = read();
    array t[{size}];
{fill}
    var q = 0;
    while (q < n) {{
        var key = read();
        var lo = 0;
        var hi = {last};
        var result = -1;
        while (lo <= hi) {{
            var mid = (lo + hi) >> 1;
            if (t[mid] == key) {{
                result = mid;
                break;
            }}
            if (t[mid] < key) {{
                lo = mid + 1;
            }} else {{
                hi = mid - 1;
            }}
        }}
        print(result);
        printc(32);
        q = q + 1;
    }}
    return 0;
}}
""".format(size=len(TABLE), fill=_TABLE_FILL, last=len(TABLE) - 1)

#: Port name -> (original workload name, language source).
PORTS: Dict[str, tuple] = {
    "lang_bubble_sort": ("bubble_sort", BUBBLE_SORT_SOURCE),
    "lang_crc32": ("crc32", CRC32_SOURCE),
    "lang_binary_search": ("binary_search", BINARY_SEARCH_SOURCE),
}


def compile_port(name: str, verify: bool = False) -> CompiledProgram:
    """Compile one port by its ``lang_`` name."""
    _, source = PORTS[name]
    return compile_source(source, name=name, verify=verify)


def _port_workload(name: str) -> Workload:
    from repro.workloads.common import get_workload

    original_name, _ = PORTS[name]
    original = get_workload(original_name)
    compiled = compile_port(name)
    return Workload(
        name=name,
        description="%s (workload-language port)" % original.description,
        source=compiled.assembly,
        inputs=list(original.inputs),
        expected_output=original.expected_output,
        tags=["lang", "port"] + [t for t in original.tags
                                 if t != "paper-workload"],
    )


@register_workload
def lang_bubble_sort() -> Workload:
    """Bubble sort, compiled from the workload language."""
    return _port_workload("lang_bubble_sort")


@register_workload
def lang_crc32() -> Workload:
    """Word-wise CRC-32, compiled from the workload language."""
    return _port_workload("lang_crc32")


@register_workload
def lang_binary_search() -> Workload:
    """Binary search, compiled from the workload language."""
    return _port_workload("lang_binary_search")
