"""Code generation: typed AST -> RV32 assembly + CFG/loop metadata.

The generator targets the repository's own assembler (:mod:`repro.isa`) and
upholds one central contract: **the basic-block leaders and natural loops of
the emitted binary are known at emission time**, without running the
verifier-side analysis.  Every label it emits becomes a block leader, every
control-flow instruction makes its follower a leader, and the only backward
transfers it ever emits are the ``while`` back-jumps (and ``continue``), so
the natural-loop headers and nesting depths equal the lexical ``while``
structure.  :meth:`CompiledProgram.verify_against_analysis` checks the
contract against :mod:`repro.cfg` on the assembled binary; the golden-corpus
tests pin it for every shipped program.

Calling convention (a conventional RV32 frame, compatible with the CPU
model's ``sp`` initialisation):

* arguments in ``a0``..``a7``; result in ``a0``;
* prologue pushes ``ra``/``s0`` and establishes ``s0`` as the frame pointer;
  parameters and locals live at negative ``s0`` offsets, arrays as in-frame
  word buffers;
* expressions evaluate on the temporary stack ``t0``..``t6`` (depth > 7
  raises :class:`CodegenError`); live temporaries are spilled to the stack
  around calls; ``s1`` is the addressing scratch register.

Builtins map to the CPU's syscall ABI: ``read()`` (a7=5), ``print(v)``
(a7=1), ``printc(v)`` (a7=11); program exit is ``main``'s return value
(a7=93).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.assembler import Program, assemble
from repro.lang.astnodes import (
    ArrayDecl, Assign, Binary, Break, Call, Continue, Expr, ExprStmt,
    Function, If, Index, IndexAssign, IntLiteral, Name, ProgramAst, Return,
    Stmt, Unary, VarDecl, While,
)
from repro.lang.errors import CodegenError, SemanticError
from repro.lang.parser import parse

#: Expression evaluation registers, in stack order.
TEMPS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6")

#: Scratch register for wide-offset frame addressing (never live across
#: statements; deliberately outside the temporary pool).
SCRATCH = "s1"

#: Builtin callees and their arities.
BUILTINS = {"read": 0, "print": 1, "printc": 1}

#: Maximum parameters per function (bounded by the ``a0``..``a7`` registers).
MAX_PARAMS = 8

#: Maximum elements per local array declaration.
MAX_ARRAY_ELEMS = 4096

_BINARY_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "srl",
}


@dataclass
class LoopInfo:
    """One compiled ``while`` loop, as the verifier's analysis will see it.

    Attributes:
        header_label: assembly label of the loop header block.
        header: resolved header address in the assembled binary.
        depth: natural-loop nesting depth (1 = outermost), equal to the
            lexical ``while`` nesting by construction.
        function: name of the containing function.
    """

    header_label: str
    header: int
    depth: int
    function: str


@dataclass
class CompiledProgram:
    """The result of compiling one workload-language program.

    Carries the assembled :class:`Program` image plus the CFG facts the code
    generator knows by construction: the block-leader addresses, the natural
    loops with nesting depths, and the function entry points.
    """

    name: str
    source: str
    assembly: str
    program: Program
    functions: Dict[str, int]
    loops: List[LoopInfo]
    block_leaders: List[int]

    def loops_by_header(self) -> Dict[int, int]:
        """Mapping of loop header address -> nesting depth."""
        return {loop.header: loop.depth for loop in self.loops}

    def verify_against_analysis(self) -> Dict[str, int]:
        """Check the emitted metadata against the verifier's own analysis.

        Splits the assembled binary into basic blocks and natural loops with
        :mod:`repro.cfg` and requires exact agreement with what compilation
        predicted.  Returns summary statistics; raises :class:`CodegenError`
        on any mismatch (a compiler bug by definition).
        """
        from repro.cfg.basic_blocks import split_basic_blocks
        from repro.cfg.builder import build_cfg
        from repro.cfg.loops import find_natural_loops

        analysed_leaders = [b.start for b in split_basic_blocks(self.program)]
        if analysed_leaders != self.block_leaders:
            predicted, got = set(self.block_leaders), set(analysed_leaders)
            raise CodegenError(
                "%s: block leaders diverge from repro.cfg analysis "
                "(missing %s, extra %s)" % (
                    self.name,
                    sorted(hex(a) for a in got - predicted),
                    sorted(hex(a) for a in predicted - got),
                )
            )
        cfg = build_cfg(self.program)
        analysed_loops = {
            loop.header: loop.depth for loop in find_natural_loops(cfg)
        }
        predicted_loops = self.loops_by_header()
        if analysed_loops != predicted_loops:
            raise CodegenError(
                "%s: natural loops diverge from repro.cfg analysis "
                "(predicted %s, analysed %s)" % (
                    self.name,
                    sorted((hex(h), d) for h, d in predicted_loops.items()),
                    sorted((hex(h), d) for h, d in analysed_loops.items()),
                )
            )
        for name, address in self.functions.items():
            if self.program.symbols.get(name) != address:
                raise CodegenError(
                    "%s: function %r not at predicted address %#x"
                    % (self.name, name, address)
                )
        return {
            "blocks": len(self.block_leaders),
            "loops": len(self.loops),
            "max_loop_depth": max(
                (loop.depth for loop in self.loops), default=0),
            "functions": len(self.functions),
            "instructions": len(self.program.instructions),
        }


class _Emitter:
    """Assembly text accumulator that tracks word offsets and labels.

    The emitter mirrors the assembler's layout rules (``li`` expands to one
    word in the 12-bit immediate range, two otherwise) so that every label's
    final address, and every control-flow follower, is known without a
    second pass.
    """

    def __init__(self) -> None:
        self.lines: List[str] = [".text"]
        self.words = 0
        self.labels: Dict[str, int] = {}  # label -> word offset
        self.cf_offsets: List[int] = []   # word offsets of CF instructions

    def label(self, name: str) -> None:
        if name in self.labels:
            raise CodegenError("internal: label %r emitted twice" % name)
        self.labels[name] = self.words
        self.lines.append("%s:" % name)

    def insn(self, text: str) -> None:
        """Emit one single-word, non-control-flow instruction."""
        self.lines.append("    %s" % text)
        self.words += 1

    def cf(self, text: str) -> None:
        """Emit one single-word control-flow instruction."""
        self.lines.append("    %s" % text)
        self.cf_offsets.append(self.words)
        self.words += 1

    def li(self, reg: str, value: int) -> None:
        """Emit ``li`` tracking its 1- or 2-word expansion."""
        self.lines.append("    li   %s, %d" % (reg, value))
        self.words += 1 if -2048 <= value <= 2047 else 2

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def predicted_leaders(self) -> List[int]:
        """Block-leader byte addresses implied by what was emitted."""
        leaders: Set[int] = {0}
        leaders.update(4 * offset for offset in self.labels.values())
        for offset in self.cf_offsets:
            follower = offset + 1
            if follower < self.words:
                leaders.add(4 * follower)
        return sorted(leaders)


@dataclass
class _Local:
    """A frame slot: a scalar (one word) or an array (``size`` words)."""

    kind: str          # "scalar" | "array"
    offset: int        # positive; address = s0 - offset (array: lowest word)
    size: int = 1      # elements, for arrays
    line: int = 0


class _FunctionCodegen:
    """Per-function emission state: frame layout, labels, loop stack."""

    def __init__(self, generator: "CodeGenerator", function: Function) -> None:
        self.generator = generator
        self.emitter = generator.emitter
        self.function = function
        self.locals: Dict[str, _Local] = {}
        self.visible: Set[str] = set()
        self.frame_bytes = 16  # ra/s0 save area
        self.label_counter = 0
        # Stack of (head_label, end_label, continue_count_list) per while.
        self.loop_stack: List[Tuple[str, str, List[int]]] = []
        self.ret_label = "%s__ret" % function.name

    # ------------------------------------------------------------ frame layout
    def layout(self) -> None:
        if len(self.function.params) > MAX_PARAMS:
            raise SemanticError(
                "function %r takes %d parameters (max %d)"
                % (self.function.name, len(self.function.params), MAX_PARAMS),
                self.function.line,
            )
        for param in self.function.params:
            self._declare(param, "scalar", 1, self.function.line)
        self._collect_declarations(self.function.body)

    def _collect_declarations(self, statements: List[Stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, VarDecl):
                self._declare(stmt.name, "scalar", 1, stmt.line)
            elif isinstance(stmt, ArrayDecl):
                if not 1 <= stmt.size <= MAX_ARRAY_ELEMS:
                    raise SemanticError(
                        "array %r size %d out of range 1..%d"
                        % (stmt.name, stmt.size, MAX_ARRAY_ELEMS),
                        stmt.line,
                    )
                self._declare(stmt.name, "array", stmt.size, stmt.line)
            elif isinstance(stmt, If):
                self._collect_declarations(stmt.then_body)
                if stmt.else_body is not None:
                    self._collect_declarations(stmt.else_body)
            elif isinstance(stmt, While):
                self._collect_declarations(stmt.body)

    def _declare(self, name: str, kind: str, size: int, line: int) -> None:
        self.generator.check_name(name, line)
        if name in self.locals:
            raise SemanticError(
                "%r redeclared in function %r" % (name, self.function.name),
                line,
            )
        if name in self.generator.functions or name in BUILTINS:
            raise SemanticError(
                "%r shadows a function name" % name, line)
        self.frame_bytes += 4 * size
        self.locals[name] = _Local(kind=kind, offset=self.frame_bytes,
                                   size=size, line=line)

    # ---------------------------------------------------------------- helpers
    def new_label(self, suffix: str) -> str:
        label = "%s__%s%d" % (self.function.name, suffix, self.label_counter)
        self.label_counter += 1
        return label

    def _slot(self, name: str, line: int) -> _Local:
        if name not in self.locals or name not in self.visible:
            raise SemanticError(
                "%r used before declaration in function %r"
                % (name, self.function.name), line)
        return self.locals[name]

    def load_scalar(self, reg: str, offset: int) -> None:
        """Load the scalar at ``s0 - offset`` into ``reg``."""
        if offset <= 2048:
            self.emitter.insn("lw   %s, %d(s0)" % (reg, -offset))
        else:
            self.emitter.li(reg, -offset)
            self.emitter.insn("add  %s, %s, s0" % (reg, reg))
            self.emitter.insn("lw   %s, 0(%s)" % (reg, reg))

    def store_scalar(self, reg: str, offset: int) -> None:
        """Store ``reg`` to the scalar at ``s0 - offset`` (scratches s1)."""
        if offset <= 2048:
            self.emitter.insn("sw   %s, %d(s0)" % (reg, -offset))
        else:
            self.emitter.li(SCRATCH, -offset)
            self.emitter.insn("add  %s, %s, s0" % (SCRATCH, SCRATCH))
            self.emitter.insn("sw   %s, 0(%s)" % (reg, SCRATCH))

    def frame_address(self, reg: str, offset: int) -> None:
        """Materialise ``s0 - offset`` into ``reg``."""
        if offset <= 2048:
            self.emitter.insn("addi %s, s0, %d" % (reg, -offset))
        else:
            self.emitter.li(reg, -offset)
            self.emitter.insn("add  %s, %s, s0" % (reg, reg))

    # ---------------------------------------------------------------- emission
    def emit(self) -> None:
        emitter = self.emitter
        emitter.label(self.function.name)
        emitter.insn("addi sp, sp, -16")
        emitter.insn("sw   ra, 12(sp)")
        emitter.insn("sw   s0, 8(sp)")
        emitter.insn("addi s0, sp, 16")
        local_bytes = self.frame_bytes - 16
        if local_bytes > 0:
            if local_bytes <= 2048:
                emitter.insn("addi sp, sp, %d" % -local_bytes)
            else:
                emitter.li(SCRATCH, local_bytes)
                emitter.insn("sub  sp, sp, %s" % SCRATCH)
        for index, param in enumerate(self.function.params):
            self.visible.add(param)
            self.store_scalar("a%d" % index, self.locals[param].offset)

        reachable = self.emit_block(self.function.body)
        if reachable:
            emitter.insn("li   a0, 0")
        emitter.label(self.ret_label)
        emitter.insn("mv   sp, s0")
        emitter.insn("lw   ra, -4(sp)")
        emitter.insn("lw   s0, -8(sp)")
        emitter.cf("ret")

    def emit_block(self, statements: List[Stmt]) -> bool:
        """Emit a statement list; returns whether its end is reachable.

        Statements after an unconditional transfer (``return``, ``break``,
        ``continue``) are dead and are not emitted -- keeping the emitted
        binary free of unreachable blocks is part of the metadata contract.
        """
        for stmt in statements:
            if not self.emit_statement(stmt):
                return False
        return True

    def emit_statement(self, stmt: Stmt) -> bool:
        """Emit one statement; returns whether control continues after it."""
        emitter = self.emitter
        if isinstance(stmt, VarDecl):
            self.eval_expr(stmt.value, 0)
            self.visible.add(stmt.name)
            self.store_scalar(TEMPS[0], self.locals[stmt.name].offset)
            return True
        if isinstance(stmt, ArrayDecl):
            self.visible.add(stmt.name)
            self._emit_array_clear(self.locals[stmt.name])
            return True
        if isinstance(stmt, Assign):
            slot = self._slot(stmt.name, stmt.line)
            if slot.kind != "scalar":
                raise SemanticError(
                    "cannot assign to array %r (assign to its elements)"
                    % stmt.name, stmt.line)
            self.eval_expr(stmt.value, 0)
            self.store_scalar(TEMPS[0], slot.offset)
            return True
        if isinstance(stmt, IndexAssign):
            self.eval_expr(stmt.value, 0)
            self.eval_address(stmt.base, stmt.index, 1, stmt.line)
            emitter.insn("sw   %s, 0(%s)" % (TEMPS[0], TEMPS[1]))
            return True
        if isinstance(stmt, If):
            return self.emit_if(stmt)
        if isinstance(stmt, While):
            return self.emit_while(stmt)
        if isinstance(stmt, Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value, 0)
                emitter.insn("mv   a0, %s" % TEMPS[0])
            else:
                emitter.insn("li   a0, 0")
            emitter.cf("j    %s" % self.ret_label)
            return False
        if isinstance(stmt, Break):
            if not self.loop_stack:
                raise SemanticError("break outside of a loop", stmt.line)
            emitter.cf("j    %s" % self.loop_stack[-1][1])
            return False
        if isinstance(stmt, Continue):
            if not self.loop_stack:
                raise SemanticError("continue outside of a loop", stmt.line)
            head, _end, continues = self.loop_stack[-1]
            continues[0] += 1
            emitter.cf("j    %s" % head)
            return False
        if isinstance(stmt, ExprStmt):
            self.eval_expr(stmt.value, 0)
            return True
        raise CodegenError("internal: unknown statement %r" % stmt)

    def _emit_array_clear(self, slot: _Local) -> None:
        """Zero-initialise an array with a compact store loop.

        The loop is emitted through the same label/cf bookkeeping as source
        loops, so it is (correctly) predicted -- and analysed -- as one more
        depth-aware natural loop.
        """
        emitter = self.emitter
        head = self.new_label("zero")
        end = self.new_label("endzero")
        self.frame_address(TEMPS[0], slot.offset)
        self.frame_address(TEMPS[1], slot.offset - 4 * slot.size)
        self._register_loop(head)
        emitter.label(head)
        emitter.cf("bge  %s, %s, %s" % (TEMPS[0], TEMPS[1], end))
        emitter.insn("sw   zero, 0(%s)" % TEMPS[0])
        emitter.insn("addi %s, %s, 4" % (TEMPS[0], TEMPS[0]))
        emitter.cf("j    %s" % head)
        emitter.label(end)

    def emit_if(self, stmt: If) -> bool:
        emitter = self.emitter
        self.eval_expr(stmt.cond, 0)
        end = self.new_label("endif")
        if stmt.else_body is None:
            emitter.cf("beqz %s, %s" % (TEMPS[0], end))
            then_reachable = self.emit_block(stmt.then_body)
            emitter.label(end)
            return True  # the branch-not-taken path always reaches end
        else_label = self.new_label("else")
        emitter.cf("beqz %s, %s" % (TEMPS[0], else_label))
        then_reachable = self.emit_block(stmt.then_body)
        if then_reachable:
            emitter.cf("j    %s" % end)
        emitter.label(else_label)
        else_reachable = self.emit_block(stmt.else_body)
        emitter.label(end)
        return then_reachable or else_reachable

    def emit_while(self, stmt: While) -> bool:
        emitter = self.emitter
        head = self.new_label("loop")
        end = self.new_label("endloop")
        continues = [0]
        emitter.label(head)
        self.eval_expr(stmt.cond, 0)
        emitter.cf("beqz %s, %s" % (TEMPS[0], end))
        self.loop_stack.append((head, end, continues))
        body_reachable = self.emit_block(stmt.body)
        self.loop_stack.pop()
        if body_reachable:
            emitter.cf("j    %s" % head)
        if body_reachable or continues[0] > 0:
            # At least one back edge exists: the analysis will see a natural
            # loop with this header, nested at the lexical depth.
            self._register_loop(head)
        emitter.label(end)
        return True  # the header's exit branch always reaches end

    def _register_loop(self, head_label: str) -> None:
        self.generator.predicted_loops.append(LoopInfo(
            header_label=head_label,
            header=0,  # resolved after assembly
            depth=len(self.loop_stack) + 1,
            function=self.function.name,
        ))

    # ------------------------------------------------------------ expressions
    def eval_expr(self, expr: Expr, depth: int) -> None:
        """Evaluate ``expr`` into ``TEMPS[depth]``.

        ``TEMPS[:depth]`` hold live intermediate values; anything above is
        free.  Exceeding the register file is a compile-time error, never a
        silent spill -- generated programs must stay depth-bounded.
        """
        if depth >= len(TEMPS):
            raise CodegenError(
                "expression too deep: needs more than %d temporaries "
                "(flatten it with intermediate variables)" % len(TEMPS),
                expr.line,
            )
        emitter = self.emitter
        dest = TEMPS[depth]

        if isinstance(expr, IntLiteral):
            value = expr.value
            if value >= 0x80000000:  # store as its signed two's complement
                value -= 0x100000000
            emitter.li(dest, value)
            return
        if isinstance(expr, Name):
            if expr.name in self.generator.functions or expr.name in BUILTINS:
                raise SemanticError(
                    "function %r used as a value" % expr.name, expr.line)
            slot = self._slot(expr.name, expr.line)
            if slot.kind == "array":
                expr.type = "array"
                self.frame_address(dest, slot.offset)
            else:
                self.load_scalar(dest, slot.offset)
            return
        if isinstance(expr, Unary):
            self.eval_expr(expr.operand, depth)
            if expr.op == "-":
                emitter.insn("neg  %s, %s" % (dest, dest))
            elif expr.op == "!":
                emitter.insn("seqz %s, %s" % (dest, dest))
            else:  # "~"
                emitter.insn("not  %s, %s" % (dest, dest))
            return
        if isinstance(expr, Binary):
            self.eval_binary(expr, depth)
            return
        if isinstance(expr, Index):
            self.eval_address(expr.base, expr.index, depth, expr.line)
            emitter.insn("lw   %s, 0(%s)" % (dest, dest))
            return
        if isinstance(expr, Call):
            self.eval_call(expr, depth)
            return
        raise CodegenError("internal: unknown expression %r" % expr)

    def eval_binary(self, expr: Binary, depth: int) -> None:
        emitter = self.emitter
        dest = TEMPS[depth]
        if expr.op in ("&&", "||"):
            # Short-circuit evaluation, normalised to 0/1.
            self.eval_expr(expr.left, depth)
            skip = self.new_label("sc")
            done = self.new_label("endsc")
            branch = "beqz" if expr.op == "&&" else "bnez"
            emitter.cf("%s %s, %s" % (branch, dest, skip))
            self.eval_expr(expr.right, depth)
            emitter.insn("snez %s, %s" % (dest, dest))
            emitter.cf("j    %s" % done)
            emitter.label(skip)
            emitter.li(dest, 0 if expr.op == "&&" else 1)
            emitter.label(done)
            return
        self.eval_expr(expr.left, depth)
        self.eval_expr(expr.right, depth + 1)
        rhs = TEMPS[depth + 1]
        if expr.op in _BINARY_OPS:
            emitter.insn("%-4s %s, %s, %s"
                         % (_BINARY_OPS[expr.op], dest, dest, rhs))
            return
        if expr.op == "<":
            emitter.insn("slt  %s, %s, %s" % (dest, dest, rhs))
        elif expr.op == ">":
            emitter.insn("slt  %s, %s, %s" % (dest, rhs, dest))
        elif expr.op == "<=":
            emitter.insn("slt  %s, %s, %s" % (dest, rhs, dest))
            emitter.insn("xori %s, %s, 1" % (dest, dest))
        elif expr.op == ">=":
            emitter.insn("slt  %s, %s, %s" % (dest, dest, rhs))
            emitter.insn("xori %s, %s, 1" % (dest, dest))
        elif expr.op == "==":
            emitter.insn("sub  %s, %s, %s" % (dest, dest, rhs))
            emitter.insn("seqz %s, %s" % (dest, dest))
        elif expr.op == "!=":
            emitter.insn("sub  %s, %s, %s" % (dest, dest, rhs))
            emitter.insn("snez %s, %s" % (dest, dest))
        else:
            raise CodegenError(
                "internal: unknown operator %r" % expr.op, expr.line)

    def eval_address(self, base: Expr, index: Expr, depth: int,
                     line: int) -> None:
        """Materialise the address ``base + 4*index`` into ``TEMPS[depth]``.

        A direct local-array base uses frame addressing; any other base
        expression is treated as a word pointer (which is how arrays are
        passed to functions).
        """
        if depth + 1 >= len(TEMPS):
            raise CodegenError(
                "expression too deep: needs more than %d temporaries "
                "(flatten it with intermediate variables)" % len(TEMPS),
                line,
            )
        emitter = self.emitter
        dest, offset_reg = TEMPS[depth], TEMPS[depth + 1]
        self.eval_expr(base, depth)
        self.eval_expr(index, depth + 1)
        emitter.insn("slli %s, %s, 2" % (offset_reg, offset_reg))
        emitter.insn("add  %s, %s, %s" % (dest, dest, offset_reg))

    def eval_call(self, expr: Call, depth: int) -> None:
        emitter = self.emitter
        dest = TEMPS[depth]
        if expr.callee in BUILTINS:
            arity = BUILTINS[expr.callee]
            if len(expr.args) != arity:
                raise SemanticError(
                    "%s() takes %d argument(s), got %d"
                    % (expr.callee, arity, len(expr.args)), expr.line)
            if expr.callee == "read":
                emitter.insn("li   a7, 5")
                emitter.insn("ecall")
                emitter.insn("mv   %s, a0" % dest)
            else:
                self.eval_expr(expr.args[0], depth)
                emitter.insn("mv   a0, %s" % dest)
                emitter.insn("li   a7, %d"
                             % (1 if expr.callee == "print" else 11))
                emitter.insn("ecall")
                emitter.insn("li   %s, 0" % dest)
            return
        arity = self.generator.functions.get(expr.callee)
        if arity is None:
            raise SemanticError(
                "call to undefined function %r" % expr.callee, expr.line)
        if len(expr.args) != arity:
            raise SemanticError(
                "%s() takes %d argument(s), got %d"
                % (expr.callee, arity, len(expr.args)), expr.line)
        if depth + len(expr.args) > len(TEMPS):
            raise CodegenError(
                "expression too deep: needs more than %d temporaries "
                "(flatten it with intermediate variables)" % len(TEMPS),
                expr.line,
            )
        for position, arg in enumerate(expr.args):
            self.eval_expr(arg, depth + position)
        # Spill the live temporaries below the arguments; the arguments
        # themselves move to a0.. and die with the call.
        if depth > 0:
            emitter.insn("addi sp, sp, %d" % (-4 * depth))
            for position in range(depth):
                emitter.insn("sw   %s, %d(sp)"
                             % (TEMPS[position], 4 * position))
        for position in range(len(expr.args)):
            emitter.insn("mv   a%d, %s" % (position, TEMPS[depth + position]))
        emitter.cf("call %s" % expr.callee)
        if depth > 0:
            for position in range(depth):
                emitter.insn("lw   %s, %d(sp)"
                             % (TEMPS[position], 4 * position))
            emitter.insn("addi sp, sp, %d" % (4 * depth))
        emitter.insn("mv   %s, a0" % dest)


class CodeGenerator:
    """Whole-program code generation over a parsed AST."""

    def __init__(self, ast: ProgramAst, name: str = "<lang>") -> None:
        self.ast = ast
        self.name = name
        self.emitter = _Emitter()
        self.functions: Dict[str, int] = {}  # name -> arity
        self.predicted_loops: List[LoopInfo] = []

    def _check_reachability(self) -> None:
        """Reject functions that are never called.

        The loop-metadata contract requires every emitted function to be a
        dominator-tree root (or reachable from one) in the verifier's
        analysis; a function no call path from ``main`` reaches would leave
        its loops predicted but never analysed.
        """
        callees: Dict[str, Set[str]] = {}
        for function in self.ast.functions:
            names: Set[str] = set()
            self._collect_callees(function.body, names)
            callees[function.name] = names
        reachable: Set[str] = set()
        worklist = ["main"]
        while worklist:
            name = worklist.pop()
            if name in reachable:
                continue
            reachable.add(name)
            worklist.extend(callees.get(name, ()))
        for function in self.ast.functions:
            if function.name not in reachable:
                raise SemanticError(
                    "function %r is never called (unreachable from main)"
                    % function.name, function.line)

    def _collect_callees(self, statements: List[Stmt], names: Set[str]) -> None:
        for stmt in statements:
            for child in (getattr(stmt, "value", None),
                          getattr(stmt, "cond", None),
                          getattr(stmt, "base", None),
                          getattr(stmt, "index", None)):
                if child is not None:
                    self._collect_expr_callees(child, names)
            if isinstance(stmt, If):
                self._collect_callees(stmt.then_body, names)
                if stmt.else_body is not None:
                    self._collect_callees(stmt.else_body, names)
            elif isinstance(stmt, While):
                self._collect_callees(stmt.body, names)

    def _collect_expr_callees(self, expr: Expr, names: Set[str]) -> None:
        if isinstance(expr, Call):
            names.add(expr.callee)
            for arg in expr.args:
                self._collect_expr_callees(arg, names)
        elif isinstance(expr, Unary):
            self._collect_expr_callees(expr.operand, names)
        elif isinstance(expr, Binary):
            self._collect_expr_callees(expr.left, names)
            self._collect_expr_callees(expr.right, names)
        elif isinstance(expr, Index):
            self._collect_expr_callees(expr.base, names)
            self._collect_expr_callees(expr.index, names)

    def check_name(self, name: str, line: int) -> None:
        """Reject identifiers that could collide with generated labels."""
        if "__" in name or name == "_start":
            raise SemanticError(
                "identifier %r is reserved (no '__', no '_start')" % name,
                line,
            )

    def generate(self) -> CompiledProgram:
        for function in self.ast.functions:
            self.check_name(function.name, function.line)
            if function.name in BUILTINS:
                raise SemanticError(
                    "cannot redefine builtin %r" % function.name,
                    function.line)
            if function.name in self.functions:
                raise SemanticError(
                    "function %r defined twice" % function.name,
                    function.line)
            if len(set(function.params)) != len(function.params):
                raise SemanticError(
                    "function %r has duplicate parameters" % function.name,
                    function.line)
            self.functions[function.name] = len(function.params)
        if self.functions.get("main") is None:
            raise SemanticError("program defines no 'main' function", 1)
        if self.functions["main"] != 0:
            raise SemanticError("'main' must take no parameters", 1)
        self._check_reachability()

        # Emit the entry stub, then every function in source order.
        emitter = self.emitter
        emitter.label("_start")
        emitter.cf("call main")
        emitter.insn("li   a7, 93")
        emitter.insn("ecall")

        for function in self.ast.functions:
            codegen = _FunctionCodegen(self, function)
            codegen.layout()
            codegen.emit()

        assembly = emitter.text()
        try:
            program = assemble(assembly)
        except ValueError as error:  # pragma: no cover - contract violation
            raise CodegenError(
                "%s: generated assembly rejected by the assembler: %s"
                % (self.name, error))

        # Cross-check the emitter's layout mirror against the assembler.
        if len(program.code) != 4 * emitter.words:
            raise CodegenError(
                "%s: emitter word tracking diverged from the assembler "
                "(%d words tracked, %d assembled)"
                % (self.name, emitter.words, len(program.code) // 4))
        for label, offset in emitter.labels.items():
            if program.symbols.get(label) != 4 * offset:
                raise CodegenError(
                    "%s: label %r tracked at %#x but assembled at %s"
                    % (self.name, label, 4 * offset,
                       hex(program.symbols[label])
                       if label in program.symbols else "nowhere"))

        loops = [
            LoopInfo(
                header_label=loop.header_label,
                header=4 * emitter.labels[loop.header_label],
                depth=loop.depth,
                function=loop.function,
            )
            for loop in self.predicted_loops
        ]
        loops.sort(key=lambda loop: loop.header)
        return CompiledProgram(
            name=self.name,
            source="",
            assembly=assembly,
            program=program,
            functions={
                fn: 4 * emitter.labels[fn] for fn in self.functions
            },
            loops=loops,
            block_leaders=emitter.predicted_leaders(),
        )


def compile_source(
    source: str, name: str = "<lang>", verify: bool = False,
) -> CompiledProgram:
    """Compile workload-language ``source`` into a :class:`CompiledProgram`.

    With ``verify=True`` the emitted CFG/loop metadata is cross-checked
    against the :mod:`repro.cfg` analysis of the assembled binary before
    returning (the golden-corpus and CLI default; family generation skips
    it for speed and relies on the corpus pin).
    """
    compiled = CodeGenerator(parse(source), name=name).generate()
    compiled.source = source
    if verify:
        compiled.verify_against_analysis()
    return compiled
