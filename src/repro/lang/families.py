"""Parameterized workload families, compiled from the workload language.

Each *family* is a generator of programs spanning one structural axis the
attestation schemes care about -- loop-nesting depth (``nest``), branch
density (``branchy``), call-graph shape (``calls``), array sizes
(``arrays``).  A family instance is fully described by a small parameter
dict, compiles deterministically to assembly through :mod:`repro.lang`, and
carries a pure-Python reference model so its expected output is known for
any input without trusting the simulator.

Every arithmetic step in a family program is masked to 31 bits
(``& 0x7FFFFFFF``), which keeps all values non-negative and makes the RV32
semantics (wrapping mul/add, logical ``>>``, signed ``%``) coincide exactly
with unbounded Python integers.

Inputs are drawn through the same ``derive_rng`` plumbing as the adversary
tooling: one seed (explicit > ``REPRO_SEED`` > 20170618) reproduces the
whole matrix.  Workload *names* depend only on the parameters -- never the
seed -- so campaign specs stay stable while inputs vary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.adversary.seeds import derive_rng, resolve_seed
from repro.lang.codegen import CompiledProgram, compile_source
from repro.lang.errors import LangError
from repro.workloads.common import WORKLOAD_REGISTRY, Workload

#: All family arithmetic stays below 2**31: non-negative and wrap-free.
MASK = 0x7FFFFFFF

#: LCG constants (glibc's ``rand``); any fixed mixing constants would do.
LCG_MUL = 1103515245
LCG_INC = 12345

#: Knuth's multiplicative-hash constant, used by call-family leaves.
HASH_MUL = 2654435761

Params = Dict[str, object]


def _lcg(x: int) -> int:
    return (x * LCG_MUL + LCG_INC) & MASK


@dataclass(frozen=True)
class Family:
    """One parameterized workload family.

    Attributes:
        name: family identifier (``nest``, ``branchy``, ...).
        description: one-line summary of the structural axis it spans.
        grid: the default parameter grid, one dict per family member.
        source: ``params -> lang source`` builder.
        reference: ``(params, inputs) -> expected output`` pure-Python model.
        sample_inputs: ``(params, rng) -> inputs`` drawing one input vector.
        tags: extra workload tags beyond the standard family tags.
    """

    name: str
    description: str
    grid: Sequence[Params]
    source: Callable[[Params], str]
    reference: Callable[[Params, Sequence[int]], str]
    sample_inputs: Callable[[Params, random.Random], List[int]]
    tags: Sequence[str] = ()

    def member_name(self, params: Params) -> str:
        """Registry name for one family member, e.g. ``fam_nest_d3_i2``."""
        suffix = "_".join(
            "%s%s" % (key[0] if isinstance(value, int) else "", value)
            for key, value in params.items()
        )
        return "fam_%s_%s" % (self.name, suffix)


# ------------------------------------------------------------------ families
def _nest_source(params: Params) -> str:
    depth = int(params["depth"])  # type: ignore[arg-type]
    iters = int(params["iters"])  # type: ignore[arg-type]
    lines = [
        "// nest family: %d nested while loops, inner bounds %d" % (depth, iters),
        "fn main() {",
        "    var n = read();",
        "    var acc = read();",
    ]
    pad = "    "
    for level in range(1, depth + 1):
        bound = "n" if level == 1 else str(iters)
        lines.append("%svar i%d = 0;" % (pad, level))
        lines.append("%swhile (i%d < %s) {" % (pad, level, bound))
        pad += "    "
    index_sum = " + ".join("i%d" % level for level in range(1, depth + 1))
    lines.append("%sacc = (acc * 31 + %s + 7) & 2147483647;" % (pad, index_sum))
    for level in range(depth, 0, -1):
        lines.append("%si%d = i%d + 1;" % (pad, level, level))
        pad = pad[:-4]
        lines.append("%s}" % pad)
    lines += [
        "    print(acc);",
        "    printc(10);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def _nest_reference(params: Params, inputs: Sequence[int]) -> str:
    depth = int(params["depth"])  # type: ignore[arg-type]
    iters = int(params["iters"])  # type: ignore[arg-type]
    n, acc = int(inputs[0]), int(inputs[1])

    def run(level: int, index_sum: int, acc: int) -> int:
        bound = n if level == 1 else iters
        for i in range(bound):
            if level == depth:
                acc = (acc * 31 + index_sum + i + 7) & MASK
            else:
                acc = run(level + 1, index_sum + i, acc)
        return acc

    return "%d\n" % run(1, 0, acc)


def _nest_inputs(params: Params, rng: random.Random) -> List[int]:
    return [rng.randint(3, 7), rng.randint(1, 1000000)]


def _branchy_source(params: Params) -> str:
    branches = int(params["branches"])  # type: ignore[arg-type]
    filler = int(params["filler"])  # type: ignore[arg-type]
    lines = [
        "// branchy family: %d data-dependent branches, %d filler ops"
        % (branches, filler),
        "fn main() {",
        "    var n = read();",
        "    var x = read();",
        "    var acc = 0;",
        "    var i = 0;",
        "    while (i < n) {",
        "        x = (x * %d + %d) & 2147483647;" % (LCG_MUL, LCG_INC),
    ]
    for j in range(branches):
        lines += [
            "        if ((x >> %d) & 1) {" % j,
            "            acc = (acc + (x >> %d)) & 2147483647;" % (j + 1),
            "        } else {",
            "            acc = (acc ^ %d) & 2147483647;" % (j * j + 1),
            "        }",
        ]
    for k in range(filler):
        lines.append(
            "        acc = (acc + %d) & 2147483647;" % ((HASH_MUL >> k) & MASK))
    lines += [
        "        i = i + 1;",
        "    }",
        "    print(acc);",
        "    printc(10);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def _branchy_reference(params: Params, inputs: Sequence[int]) -> str:
    branches = int(params["branches"])  # type: ignore[arg-type]
    filler = int(params["filler"])  # type: ignore[arg-type]
    n, x = int(inputs[0]), int(inputs[1])
    acc = 0
    for _ in range(n):
        x = _lcg(x)
        for j in range(branches):
            if (x >> j) & 1:
                acc = (acc + (x >> (j + 1))) & MASK
            else:
                acc = (acc ^ (j * j + 1)) & MASK
        for k in range(filler):
            acc = (acc + ((HASH_MUL >> k) & MASK)) & MASK
    return "%d\n" % acc


def _branchy_inputs(params: Params, rng: random.Random) -> List[int]:
    return [rng.randint(6, 12), rng.randint(1, MASK)]


def _calls_source(params: Params) -> str:
    shape = str(params["shape"])
    depth = int(params["depth"])  # type: ignore[arg-type]
    lines = ["// calls family: %s-shaped call graph of depth %d" % (shape, depth)]
    for k in range(1, depth):
        lines += [
            "fn f%d(x) {" % k,
            "    var r = (x + %d) & 2147483647;" % k,
            "    var i = 0;",
            "    while (i < 3) {",
            "        r = (r * 33 + i) & 2147483647;",
            "        i = i + 1;",
            "    }",
        ]
        if shape == "tree":
            lines.append(
                "    return (r + f%d((r ^ %d) & 2147483647)"
                " + f%d((r + %d) & 2147483647)) & 2147483647;"
                % (k + 1, k, k + 1, 11 * k))
        else:
            lines.append(
                "    return (r + f%d((r ^ %d) & 2147483647)) & 2147483647;"
                % (k + 1, k))
        lines.append("}")
    lines += [
        "fn f%d(x) {" % depth,
        "    return (x * %d + 97) & 2147483647;" % HASH_MUL,
        "}",
        "fn main() {",
        "    var q = read();",
        "    var x = read();",
        "    var acc = 0;",
        "    var i = 0;",
        "    while (i < q) {",
        "        acc = (acc + f1((x + i) & 2147483647)) & 2147483647;",
        "        i = i + 1;",
        "    }",
        "    print(acc);",
        "    printc(10);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def _calls_reference(params: Params, inputs: Sequence[int]) -> str:
    shape = str(params["shape"])
    depth = int(params["depth"])  # type: ignore[arg-type]
    q, x = int(inputs[0]), int(inputs[1])

    def fk(k: int, value: int) -> int:
        if k == depth:
            return (value * HASH_MUL + 97) & MASK
        r = (value + k) & MASK
        for i in range(3):
            r = (r * 33 + i) & MASK
        total = r + fk(k + 1, (r ^ k) & MASK)
        if shape == "tree":
            total += fk(k + 1, (r + 11 * k) & MASK)
        return total & MASK

    acc = 0
    for i in range(q):
        acc = (acc + fk(1, (x + i) & MASK)) & MASK
    return "%d\n" % acc


def _calls_inputs(params: Params, rng: random.Random) -> List[int]:
    return [rng.randint(2, 5), rng.randint(1, MASK)]


def _arrays_source(params: Params) -> str:
    size = int(params["size"])  # type: ignore[arg-type]
    window = int(params["window"])  # type: ignore[arg-type]
    return "\n".join([
        "// arrays family: %d-word array, sliding window of %d" % (size, window),
        "fn main() {",
        "    var x = read();",
        "    var q = read();",
        "    array a[%d];" % size,
        "    var i = 0;",
        "    while (i < %d) {" % size,
        "        x = (x * %d + %d) & 2147483647;" % (LCG_MUL, LCG_INC),
        "        a[i] = x % 1000;",
        "        i = i + 1;",
        "    }",
        "    var acc = 0;",
        "    var j = 0;",
        "    while (j < %d) {" % (size - window),
        "        var k = 0;",
        "        while (k < %d) {" % window,
        "            acc = (acc + a[j + k]) & 2147483647;",
        "            k = k + 1;",
        "        }",
        "        if (a[j] > a[j + 1]) {",
        "            acc = (acc + j) & 2147483647;",
        "        }",
        "        j = j + 1;",
        "    }",
        "    acc = (acc + a[q %% %d]) & 2147483647;" % size,
        "    print(acc);",
        "    printc(10);",
        "    return 0;",
        "}",
    ]) + "\n"


def _arrays_reference(params: Params, inputs: Sequence[int]) -> str:
    size = int(params["size"])  # type: ignore[arg-type]
    window = int(params["window"])  # type: ignore[arg-type]
    x, q = int(inputs[0]), int(inputs[1])
    a = []
    for _ in range(size):
        x = _lcg(x)
        a.append(x % 1000)
    acc = 0
    for j in range(size - window):
        for k in range(window):
            acc = (acc + a[j + k]) & MASK
        if a[j] > a[j + 1]:
            acc = (acc + j) & MASK
    acc = (acc + a[q % size]) & MASK
    return "%d\n" % acc


def _arrays_inputs(params: Params, rng: random.Random) -> List[int]:
    return [rng.randint(1, MASK), rng.randint(0, 1000000)]


#: All registered families, keyed by name.
FAMILY_REGISTRY: Dict[str, Family] = {}


def _register(family: Family) -> Family:
    FAMILY_REGISTRY[family.name] = family
    return family


_register(Family(
    name="nest",
    description="nested while loops, depth 1-4, varying inner trip counts",
    grid=tuple(
        [{"depth": 1, "iters": 2}]
        + [{"depth": d, "iters": m} for d in (2, 3, 4) for m in (2, 3, 4)]
    ),
    source=_nest_source,
    reference=_nest_reference,
    sample_inputs=_nest_inputs,
    tags=("loops", "nested"),
))

_register(Family(
    name="branchy",
    description="data-dependent branch chains of varying density",
    grid=tuple(
        {"branches": b, "filler": f} for b in (2, 4, 6) for f in (0, 3)
    ),
    source=_branchy_source,
    reference=_branchy_reference,
    sample_inputs=_branchy_inputs,
    tags=("branches", "loops"),
))

_register(Family(
    name="calls",
    description="chain- and tree-shaped call graphs of varying depth",
    grid=tuple(
        {"shape": s, "depth": d} for s in ("chain", "tree") for d in (2, 3, 4)
    ),
    source=_calls_source,
    reference=_calls_reference,
    sample_inputs=_calls_inputs,
    tags=("calls", "loops"),
))

_register(Family(
    name="arrays",
    description="array fills and sliding-window reductions",
    grid=tuple(
        {"size": s, "window": w} for s in (16, 64) for w in (2, 4, 8)
    ),
    source=_arrays_source,
    reference=_arrays_reference,
    sample_inputs=_arrays_inputs,
    tags=("arrays", "loops", "nested"),
))


# ---------------------------------------------------------------- generation
def family_names() -> List[str]:
    """Sorted names of all registered families."""
    return sorted(FAMILY_REGISTRY)


def get_family(name: str) -> Family:
    try:
        return FAMILY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown family %r (known: %s)" % (name, ", ".join(family_names()))
        ) from None


def compile_member(family: Family, params: Params,
                   verify: bool = True) -> CompiledProgram:
    """Compile one family member, verifying codegen metadata by default."""
    name = family.member_name(params)
    return compile_source(family.source(params), name=name, verify=verify)


def member_inputs(family: Family, params: Params, seed: int,
                  variant: int = 0) -> List[int]:
    """The deterministic input vector for one member and input-set index."""
    rng = derive_rng(seed, "family", family.name,
                     family.member_name(params), "inputs%d" % variant)
    return family.sample_inputs(params, rng)


def build_member(family: Family, params: Params, seed: Optional[int] = None,
                 verify: bool = True) -> Workload:
    """Compile one family member into a registrable :class:`Workload`."""
    effective = resolve_seed(seed)
    compiled = compile_member(family, params, verify=verify)
    inputs = member_inputs(family, params, effective)
    expected = family.reference(params, inputs)
    param_text = ", ".join(
        "%s=%s" % (key, value) for key, value in params.items())
    return Workload(
        name=compiled.name,
        description="%s family (%s): %s" % (
            family.name, param_text, family.description),
        source=compiled.assembly,
        inputs=inputs,
        expected_output=expected,
        tags=["lang", "family", "family:%s" % family.name] + list(family.tags),
    )


def generate_family(name: str, seed: Optional[int] = None,
                    grid: Optional[Iterable[Params]] = None,
                    verify: bool = True) -> List[Workload]:
    """Compile every member of one family over ``grid`` (default grid)."""
    family = get_family(name)
    members = list(grid) if grid is not None else list(family.grid)
    return [build_member(family, params, seed=seed, verify=verify)
            for params in members]


def family_matrix(names: Optional[Sequence[str]] = None,
                  seed: Optional[int] = None,
                  register: bool = True,
                  verify: bool = True) -> List[Workload]:
    """Compile the full family matrix and (by default) register the members.

    Registration installs one factory per member in ``WORKLOAD_REGISTRY`` so
    campaign specs can name family workloads exactly like hand-written ones.
    Re-registering with a different seed replaces the factories (names are
    seed-independent; inputs and expected outputs are not).
    """
    workloads: List[Workload] = []
    for name in names if names is not None else family_names():
        workloads.extend(generate_family(name, seed=seed, verify=verify))
    if register:
        register_family_workloads(workloads)
    return workloads


def register_family_workloads(workloads: Sequence[Workload]) -> None:
    """Install factories for already-built family workloads."""
    for workload in workloads:
        WORKLOAD_REGISTRY[workload.name] = (
            lambda w=workload: w  # late-binding guard: capture per iteration
        )
