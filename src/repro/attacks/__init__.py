"""Run-time attack models (paper §2, Figure 1).

The paper distinguishes three classes of run-time attacks, all of which leave
the program binary untouched:

* **Class 1 -- non-control-data attacks**: corrupt a data variable used in a
  security decision, steering execution onto a *legal but unintended* path
  (:mod:`repro.attacks.noncontrol_data`).
* **Class 2 -- loop-counter corruption**: change how often a loop executes
  (the syringe-pump overdose example, :mod:`repro.attacks.loop_counter`).
* **Class 3 -- code-pointer overwrites**: corrupt a return address or function
  pointer to divert control to code never reachable on a benign path
  (:mod:`repro.attacks.rop` and the function-pointer variant in
  :mod:`repro.attacks.code_pointer`).

Every attack is expressed as a :class:`repro.attacks.injector.MemoryCorruption`
installed on the CPU through the same read-write data interface the program
uses, matching the adversary model (full control of data memory, no control of
code memory or LO-FAT state).
"""

from repro.attacks.injector import (
    AttackScenario,
    ControlFlowRedirect,
    MemoryCorruption,
    ATTACK_REGISTRY,
    all_attacks,
    get_attack,
    register_scenario,
    unregister_attack,
)
from repro.attacks import loop_counter, noncontrol_data, rop, code_pointer  # noqa: F401

__all__ = [
    "AttackScenario",
    "ControlFlowRedirect",
    "MemoryCorruption",
    "ATTACK_REGISTRY",
    "all_attacks",
    "get_attack",
    "register_scenario",
    "unregister_attack",
]
