"""Generic memory-corruption injection machinery.

An attack is modelled as a write to data memory triggered at a precise point
of the execution (a program counter value, optionally after a number of
occurrences).  This mirrors how a memory-corruption exploit behaves: the
vulnerable code itself performs the out-of-bounds write while executing, so
the corruption happens *between* legitimate instructions and is subject to
the platform's memory protection (code memory cannot be written).

:class:`AttackScenario` couples a corruption with the workload it targets and
with the paper's attack-class taxonomy so the security experiment (E5) can
iterate over all scenarios uniformly.

Two corruption primitives exist: :class:`MemoryCorruption` (a triggered data
write -- the exploit's *payload*) and :class:`ControlFlowRedirect` (a
triggered program-counter rewrite -- the exploit's *effect*, modelling what a
successful code-pointer overwrite does without needing a pointer spilled at a
known address).  The adversarial scenario generator
(:mod:`repro.adversary.generator`) synthesizes scenarios from both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cpu.core import Cpu
from repro.isa.assembler import Program

#: Resolves the target address of the corruption given the live CPU state
#: (e.g. "the saved return address slot relative to the current stack pointer").
AddressResolver = Callable[[Cpu], int]
#: Resolves the value to write given the live CPU state.
ValueResolver = Callable[[Cpu], int]


@dataclass
class MemoryCorruption:
    """A single triggered write into data memory.

    Attributes:
        trigger_pc: program counter at which the corruption fires (just before
            the instruction at this address executes).
        address: where to write -- an absolute address or a resolver callable.
        value: what to write -- an absolute value or a resolver callable.
        size: access size in bytes.
        occurrence: fire on the N-th time the trigger PC is reached (1-based).
        repeat: if True, fire on every occurrence from ``occurrence`` onwards.
    """

    trigger_pc: int
    address: object
    value: object
    size: int = 4
    occurrence: int = 1
    repeat: bool = False
    #: Number of times the corruption actually fired (filled during the run).
    fired: int = 0
    _seen: int = 0

    def install(self, cpu: Cpu) -> None:
        """Attach the corruption to ``cpu`` as a pre-instruction hook."""
        cpu.add_pre_instruction_hook(self._hook)

    # The hook signature matches Cpu.add_pre_instruction_hook.
    def _hook(self, cpu: Cpu, pc: int, retired: int) -> None:
        if pc != self.trigger_pc:
            return
        self._seen += 1
        if self._seen < self.occurrence:
            return
        if not self.repeat and self._seen > self.occurrence:
            return
        address = self.address(cpu) if callable(self.address) else int(self.address)
        value = self.value(cpu) if callable(self.value) else int(self.value)
        cpu.memory.store(address, value, self.size)
        self.fired += 1


@dataclass
class ControlFlowRedirect:
    """A single triggered program-counter rewrite.

    Models the *effect* of a successful code-pointer corruption: just before
    the instruction at ``trigger_pc`` would execute, the program counter is
    rewritten to ``target`` instead.  The trigger instruction itself never
    retires, so the benign control-flow event it would have produced is
    replaced by whatever executes at the target -- exactly the shape of a
    ROP/JOP pivot or a skipped-node shortcut.

    Attributes:
        trigger_pc: program counter at which the redirect fires (just before
            the instruction at this address executes).
        target: where execution continues -- an absolute address or a
            resolver callable receiving the live CPU.
        occurrence: fire on the N-th time the trigger PC is reached (1-based).
        repeat: if True, fire on every occurrence from ``occurrence`` onwards.
    """

    trigger_pc: int
    target: object
    occurrence: int = 1
    repeat: bool = False
    #: Number of times the redirect actually fired (filled during the run).
    fired: int = 0
    _seen: int = 0

    def install(self, cpu: Cpu) -> None:
        """Attach the redirect to ``cpu`` as a pre-instruction hook."""
        cpu.add_pre_instruction_hook(self._hook)

    # The hook signature matches Cpu.add_pre_instruction_hook.
    def _hook(self, cpu: Cpu, pc: int, retired: int) -> None:
        if pc != self.trigger_pc:
            return
        self._seen += 1
        if self._seen < self.occurrence:
            return
        if not self.repeat and self._seen > self.occurrence:
            return
        target = self.target(cpu) if callable(self.target) else int(self.target)
        cpu.pc = target
        self.fired += 1


@dataclass
class AttackScenario:
    """A named attack against a specific workload.

    Attributes:
        name: unique scenario identifier.
        description: what the attack does and why it matters.
        attack_class: 1 (non-control data), 2 (loop counter) or 3 (code pointer),
            matching Figure 1 of the paper.
        workload_name: the workload the attack targets.
        build_corruptions: given the assembled program, produce the list of
            memory corruptions to install.
        challenge_inputs: the verifier-chosen inputs ``i`` used when
            demonstrating the attack (they select an execution in which the
            corruption makes a difference).
        malicious_inputs: extra adversary-supplied inputs appended after the
            verifier-chosen ones (the ``I`` of the protocol), when the attack
            is input-driven rather than corruption-driven.
        changes_output: whether a successful attack changes the program output
            (used by tests to confirm the attack actually had an effect).
        control_flow_visible: whether the attack perturbs the control-flow
            event stream the attestation schemes measure.  Runtime schemes
            (lofat, cflat) are expected to detect visible attacks and to
            *miss* invisible ones (pure data-only corruption); the campaign
            layer labels the latter ``expected_miss``.
        category: free-form generator family tag ("manual" for hand-written
            scenarios; the adversary generator uses "edge_bend",
            "skipped_node", "loop_overcount", "loop_undercount", "data_only").
    """

    name: str
    description: str
    attack_class: int
    workload_name: str
    build_corruptions: Callable[[Program], List[MemoryCorruption]]
    challenge_inputs: List[int] = field(default_factory=list)
    malicious_inputs: List[int] = field(default_factory=list)
    changes_output: bool = True
    control_flow_visible: bool = True
    category: str = "manual"

    def install_on(self, cpu: Cpu, program: Program) -> List[MemoryCorruption]:
        """Install all corruptions of the scenario on a CPU."""
        corruptions = self.build_corruptions(program)
        for corruption in corruptions:
            corruption.install(cpu)
        return corruptions

    def prover_hook(self, program: Program) -> Callable[[Cpu], None]:
        """A hook suitable for :meth:`repro.attestation.prover.Prover.install_attack`."""
        def hook(cpu: Cpu) -> None:
            self.install_on(cpu, program)
        return hook


#: Registered attack scenarios, keyed by name.
ATTACK_REGISTRY: Dict[str, Callable[[], AttackScenario]] = {}


def register_attack(factory: Callable[[], AttackScenario]) -> Callable[[], AttackScenario]:
    """Register an attack scenario factory (usable as a decorator)."""
    scenario = factory()
    ATTACK_REGISTRY[scenario.name] = factory
    return factory


def get_attack(name: str) -> AttackScenario:
    """Instantiate the attack scenario registered under ``name``."""
    try:
        return ATTACK_REGISTRY[name]()
    except KeyError:
        raise KeyError(
            "unknown attack %r (known: %s)" % (name, ", ".join(sorted(ATTACK_REGISTRY)))
        ) from None


def all_attacks() -> List[AttackScenario]:
    """Instantiate every registered attack scenario (sorted by name)."""
    return [ATTACK_REGISTRY[name]() for name in sorted(ATTACK_REGISTRY)]


def register_scenario(scenario: AttackScenario, replace: bool = False) -> str:
    """Register a concrete (e.g. generated) scenario instance by name.

    Unlike :func:`register_attack`, which registers a zero-argument factory,
    this stores an already-built scenario (the generator produces scenario
    objects whose parameters were chosen at generation time).  Returns the
    scenario name so callers can collect what they registered.
    """
    if not replace and scenario.name in ATTACK_REGISTRY:
        raise ValueError("attack %r is already registered" % scenario.name)
    ATTACK_REGISTRY[scenario.name] = lambda: scenario
    return scenario.name


def unregister_attack(name: str) -> None:
    """Remove a registered attack scenario (no-op if absent)."""
    ATTACK_REGISTRY.pop(name, None)
