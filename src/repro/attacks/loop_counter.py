"""Attack class 2: loop-counter corruption (the syringe-pump overdose).

The syringe-pump firmware keeps the requested quantity in data memory and
re-reads it as the dispense-loop bound on every iteration.  The attack
overwrites that variable after the loop has started, so the pump dispenses
more units than the verifier requested.  No CFG edge is violated -- only the
*number of iterations* changes -- which is why plain CFI misses it while the
iteration counts in LO-FAT's metadata ``L`` expose it.
"""

from __future__ import annotations

from typing import List

from repro.attacks.injector import AttackScenario, MemoryCorruption, register_attack
from repro.isa.assembler import Program

#: Quantity the attacker forces the pump to dispense.
ATTACKER_QUANTITY = 9
#: Inputs the verifier challenges with: dispense 5 units, then shut down.
CHALLENGE_INPUTS = [1, 5, 0]


def _build(program: Program) -> List[MemoryCorruption]:
    return [
        MemoryCorruption(
            # Fire at the top of the dispense loop, on its second iteration
            # (after the benign bound has already been used once).
            trigger_pc=program.symbol("dispense_loop"),
            address=program.symbol("quantity"),
            value=ATTACKER_QUANTITY,
            occurrence=2,
        )
    ]


@register_attack
def syringe_overdose() -> AttackScenario:
    """Corrupt the dispense-loop bound of the syringe pump."""
    return AttackScenario(
        name="syringe_overdose",
        description=(
            "Overwrite the in-memory dispense quantity while the motor loop is "
            "running, making the pump dispense %d units instead of the "
            "requested %d." % (ATTACKER_QUANTITY, CHALLENGE_INPUTS[1])
        ),
        attack_class=2,
        workload_name="syringe_pump",
        build_corruptions=_build,
        challenge_inputs=list(CHALLENGE_INPUTS),
        changes_output=True,
    )
