"""Attack class 3 (variant): function-pointer table overwrite.

The dispatcher workload calls handlers through a function-pointer table in
data memory.  The attack redirects the first table entry to
``privileged_maintenance``, a routine that exists in the binary (so the
indirect call still lands on a function entry and would satisfy a
coarse-grained CFI policy) but is never invoked by benign executions.  The
hashed (Src, Dest) stream changes, so golden-replay verification rejects the
report even though each individual edge looks "plausible" to a conservative
static policy -- illustrating why the paper attests the *whole path* rather
than checking edges in isolation.
"""

from __future__ import annotations

from typing import List

from repro.attacks.injector import AttackScenario, MemoryCorruption, register_attack
from repro.isa.assembler import Program

#: Inputs supplied by the verifier's challenge (dispatch handlers 1, 2, finish).
CHALLENGE_INPUTS = [1, 2, 0]


def _build(program: Program) -> List[MemoryCorruption]:
    return [
        MemoryCorruption(
            # Fire before the first command is dispatched.
            trigger_pc=program.symbol("main_loop"),
            address=program.symbol("handlers"),
            value=program.symbol("privileged_maintenance"),
        )
    ]


@register_attack
def function_pointer_hijack() -> AttackScenario:
    """Redirect a dispatch-table entry to a privileged routine."""
    return AttackScenario(
        name="function_pointer_hijack",
        description=(
            "Overwrite the first entry of the dispatcher's function-pointer "
            "table so command 1 invokes privileged_maintenance instead of "
            "handler_status."
        ),
        attack_class=3,
        workload_name="dispatcher",
        build_corruptions=_build,
        challenge_inputs=list(CHALLENGE_INPUTS),
        changes_output=True,
    )
