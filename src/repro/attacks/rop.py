"""Attack class 3: return-address overwrite (minimal ROP/code-reuse attack).

The victim function spills its return address to the stack next to a
caller-controlled buffer slot.  The attack overwrites the saved return
address with the address of ``secret_gadget`` -- code present in the binary
but unreachable on any benign path -- so the function "returns" into the
gadget.  The resulting return edge is not an edge of the CFG, so LO-FAT's
measurement diverges and (independently) the verifier's edge-validity check
flags the transfer.
"""

from __future__ import annotations

from typing import List

from repro.attacks.injector import AttackScenario, MemoryCorruption, register_attack
from repro.cpu.core import Cpu
from repro.isa.assembler import Program

#: Input supplied by the verifier's challenge.
CHALLENGE_INPUTS = [21]
#: Offset of the triggering instruction (``lw t0, 8(sp)``) inside ``process``.
TRIGGER_OFFSET = 12
#: Offset of the saved return address relative to the callee stack pointer.
SAVED_RA_OFFSET = 12


def _build(program: Program) -> List[MemoryCorruption]:
    gadget = program.symbol("secret_gadget")

    def saved_return_address_slot(cpu: Cpu) -> int:
        return cpu.registers["sp"] + SAVED_RA_OFFSET

    return [
        MemoryCorruption(
            trigger_pc=program.symbol("process") + TRIGGER_OFFSET,
            address=saved_return_address_slot,
            value=gadget,
        )
    ]


@register_attack
def return_address_overwrite() -> AttackScenario:
    """Overwrite a saved return address with the secret gadget's address."""
    return AttackScenario(
        name="return_address_overwrite",
        description=(
            "Stack smash: overwrite the return address saved by process() so "
            "that it returns into secret_gadget, which is unreachable on any "
            "benign path."
        ),
        attack_class=3,
        workload_name="vulnerable_process",
        build_corruptions=_build,
        challenge_inputs=list(CHALLENGE_INPUTS),
        changes_output=True,
    )
