"""Attack class 1: non-control-data corruption of a security decision.

The authentication workload stores the authorisation result in data memory
and branches on it.  The attack flips that flag between the store and the
load, so the *privileged* path executes even though the password was wrong.
Both paths are legal CFG paths, so control-flow integrity is never violated;
only control-flow *attestation* lets the verifier see that the path taken is
not the one implied by the input it supplied.
"""

from __future__ import annotations

from typing import List

from repro.attacks.injector import AttackScenario, MemoryCorruption, register_attack
from repro.isa.assembler import Program

#: The (wrong) password attempt the verifier's challenge supplies.
CHALLENGE_INPUTS = [1000]


def _build(program: Program) -> List[MemoryCorruption]:
    return [
        MemoryCorruption(
            # Fire right before the flag is re-loaded for the branch decision.
            trigger_pc=program.symbol("check_done"),
            address=program.symbol("auth_flag"),
            value=1,
        )
    ]


@register_attack
def auth_flag_flip() -> AttackScenario:
    """Flip the authorisation flag after a failed password check."""
    return AttackScenario(
        name="auth_flag_flip",
        description=(
            "Corrupt the auth_flag data variable between the password check "
            "and the privilege decision, steering execution onto the "
            "privileged (but CFG-legal) path."
        ),
        attack_class=1,
        workload_name="auth_check",
        build_corruptions=_build,
        challenge_inputs=list(CHALLENGE_INPUTS),
        changes_output=True,
    )
