#!/usr/bin/env python3
"""CI benchmark-regression gate over the machine-readable benchmark results.

The experiment benchmarks (``benchmarks/test_bench_e*.py``) emit, next to
each human-readable table, a ``benchmarks/results/BENCH_<experiment>.json``
with the experiment's tracked scalar metrics (speedups, rates -- by
convention *higher is better*).  This script compares those against the
checked-in baseline, ``benchmarks/baseline.json``, and fails when any
tracked metric regresses by more than the threshold (default 30%).

Usage, after running the benchmarks::

    python scripts/bench_gate.py              # gate: exit 1 on regression
    python scripts/bench_gate.py --refresh    # rewrite the baseline from
                                              # the current results

The baseline is intentionally loose (a 30% band around best-of-N
measurements) so it trips on real regressions -- an accidentally disabled
fast path, a quadratic slip in the verifier -- not on runner noise.
Metrics present in the results but absent from the baseline are reported
and pass (new experiments land before their baseline); metrics present in
the baseline but missing from the results fail, so a silently skipped
benchmark cannot hide a regression.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")

#: A metric fails when it drops below (1 - threshold) * baseline.
DEFAULT_THRESHOLD = 0.30


def load_results(results_dir: str) -> Dict[str, Dict[str, float]]:
    """Read every BENCH_*.json into {experiment: {metric: value}}."""
    results: Dict[str, Dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        with open(path) as handle:
            document = json.load(handle)
        experiment = document["experiment"]
        results[experiment] = {
            name: float(value)
            for name, value in document["metrics"].items()
        }
    return results


def load_baseline(baseline_path: str) -> Dict[str, Dict[str, float]]:
    with open(baseline_path) as handle:
        document = json.load(handle)
    return {
        experiment: {name: float(value) for name, value in metrics.items()}
        for experiment, metrics in document["experiments"].items()
    }


def write_baseline(baseline_path: str,
                   results: Dict[str, Dict[str, float]]) -> None:
    document = {
        "comment": "Benchmark-regression baseline; refresh with "
                   "`python scripts/bench_gate.py --refresh` after running "
                   "the benchmarks.",
        "experiments": {
            experiment: {name: round(value, 4)
                         for name, value in sorted(metrics.items())}
            for experiment, metrics in sorted(results.items())
        },
    }
    with open(baseline_path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate(results: Dict[str, Dict[str, float]],
         baseline: Dict[str, Dict[str, float]],
         threshold: float = DEFAULT_THRESHOLD) -> int:
    """Compare results to baseline; print a verdict line per metric.

    Returns the number of failures (regressions + missing metrics).
    """
    failures = 0
    for experiment in sorted(baseline):
        for name, reference in sorted(baseline[experiment].items()):
            measured = results.get(experiment, {}).get(name)
            label = "%s/%s" % (experiment, name)
            if measured is None:
                print("FAIL %-44s missing (baseline %.3f) -- benchmark "
                      "did not run?" % (label, reference))
                failures += 1
                continue
            floor = (1.0 - threshold) * reference
            ratio = measured / reference if reference else float("inf")
            if measured < floor:
                print("FAIL %-44s %.3f < %.3f (%.0f%% of baseline %.3f)"
                      % (label, measured, floor, 100 * ratio, reference))
                failures += 1
            else:
                print("ok   %-44s %.3f (%.0f%% of baseline %.3f)"
                      % (label, measured, 100 * ratio, reference))
    for experiment in sorted(results):
        for name in sorted(results[experiment]):
            if name not in baseline.get(experiment, {}):
                print("new  %s/%s %.3f (not in baseline; refresh to track)"
                      % (experiment, name, results[experiment][name]))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when a tracked benchmark metric regresses "
                    "beyond the threshold against benchmarks/baseline.json.")
    parser.add_argument(
        "--results-dir", default=RESULTS_DIR,
        help="directory holding BENCH_*.json (default: benchmarks/results)")
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help="baseline JSON path (default: benchmarks/baseline.json)")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional drop before failing (default: 0.30)")
    parser.add_argument(
        "--refresh", action="store_true",
        help="rewrite the baseline from the current results and exit")
    args = parser.parse_args(argv)

    results = load_results(args.results_dir)
    if not results:
        print("error: no BENCH_*.json under %s -- run the benchmarks first"
              % args.results_dir)
        return 2

    if args.refresh:
        write_baseline(args.baseline, results)
        count = sum(len(metrics) for metrics in results.values())
        print("baseline refreshed: %d metrics across %d experiments -> %s"
              % (count, len(results), os.path.relpath(args.baseline)))
        return 0

    if not os.path.exists(args.baseline):
        print("error: baseline %s missing -- create it with "
              "`python scripts/bench_gate.py --refresh`" % args.baseline)
        return 2

    baseline = load_baseline(args.baseline)
    failures = gate(results, baseline, args.threshold)
    if failures:
        print("\nbench gate: %d metric(s) regressed beyond %.0f%%; if the "
              "change is intentional, refresh the baseline with "
              "`python scripts/bench_gate.py --refresh`"
              % (failures, 100 * args.threshold))
        return 1
    print("\nbench gate: all tracked metrics within %.0f%% of baseline"
          % (100 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
